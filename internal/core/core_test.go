package core

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"mochi/internal/margo"
	"mochi/internal/mercury"
	"mochi/internal/modules"
	"mochi/internal/pufferscale"
	"mochi/internal/raft"
	"mochi/internal/ssg"
	"mochi/internal/yokan"
)

func init() { modules.RegisterBuiltins() }

func fastSSG() ssg.Config {
	return ssg.Config{
		ProtocolPeriod:   10 * time.Millisecond,
		PingTimeout:      3 * time.Millisecond,
		SuspicionPeriods: 3,
	}
}

// nodeProviderID derives a stable, unique provider ID from a node
// name so migrated providers never collide at their destination.
func nodeProviderID(node string) uint16 {
	var id uint16 = 1
	for _, c := range node {
		if c >= '0' && c <= '9' {
			id = id*10 + uint16(c-'0')
		}
	}
	return id + 1
}

// kvSpec builds a service spec where every node runs one yokan log
// provider plus a REMI receiver, rooted in per-node temp dirs.
func kvSpec(t *testing.T, recovery RecoveryPolicy) Spec {
	t.Helper()
	base := t.TempDir()
	ckpt := t.TempDir()
	return Spec{
		GroupName:     "kv-service",
		SSG:           fastSSG(),
		CheckpointDir: ckpt,
		Recovery:      recovery,
		NodeConfig: func(node string) []byte {
			dir := filepath.Join(base, node)
			return []byte(fmt.Sprintf(`{
			  "libraries": {"yokan": "libyokan.so"},
			  "remi_root": %q,
			  "providers": [
			    {"name": "db-%s", "type": "yokan", "provider_id": %d,
			     "config": {"type": "log", "path": %q, "no_sync": true}}
			  ]
			}`, filepath.Join(dir, "remi"), node, nodeProviderID(node), filepath.Join(dir, "db.log")))
		},
	}
}

func startService(t *testing.T, spec Spec, n int, clusterSize int) (*Service, *mercury.Fabric) {
	t.Helper()
	f := mercury.NewFabric()
	cluster := NewClusterSim("node", clusterSize)
	svc := NewService(f, cluster, spec)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Start(ctx, n); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Stop)
	return svc, f
}

// pollUntil retries cond at the given interval for a fixed number of
// iterations. Iteration counting (not wall deadlines) keeps the tests
// immune to the forward clock jumps this VM exhibits.
func pollUntil(iters int, interval time.Duration, cond func() bool) bool {
	for i := 0; i < iters; i++ {
		if cond() {
			return true
		}
		time.Sleep(interval)
	}
	return cond()
}

func sctx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestClusterSim(t *testing.T) {
	c := NewClusterSim("n", 2)
	a, err := c.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := c.Allocate()
	if _, err := c.Allocate(); !errors.Is(err, ErrNoNodesAvailable) {
		t.Fatalf("err = %v", err)
	}
	if c.Free() != 0 || len(c.Allocated()) != 2 {
		t.Fatal("bookkeeping wrong")
	}
	c.Release(a)
	c.Release(b)
	c.Release("ghost") // no-op
	if c.Free() != 2 {
		t.Fatalf("free = %d", c.Free())
	}
}

func TestServiceStartAndView(t *testing.T) {
	svc, _ := startService(t, kvSpec(t, RecoverNone), 3, 5)
	if got := len(svc.Nodes()); got != 3 {
		t.Fatalf("nodes = %d", got)
	}
	v, err := svc.View()
	if err != nil {
		t.Fatal(err)
	}
	if v.Size() != 3 {
		t.Fatalf("view size = %d", v.Size())
	}
	// Each node serves its yokan provider.
	cli := yokan.NewClient(svc.Admin())
	for _, node := range svc.Nodes() {
		p, _ := svc.Process(node)
		h := cli.Handle(p.Addr(), nodeProviderID(node))
		if err := h.Put(sctx(t), []byte("k"), []byte("v")); err != nil {
			t.Fatalf("put at %s: %v", node, err)
		}
	}
}

func TestServiceExpandJoinsGroup(t *testing.T) {
	svc, _ := startService(t, kvSpec(t, RecoverNone), 2, 5)
	ctx := sctx(t)
	proc, err := svc.Expand(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(svc.Nodes()) != 3 {
		t.Fatalf("nodes = %v", svc.Nodes())
	}
	// The join propagates to every member (View samples an arbitrary
	// member, so require all of them to converge).
	allConverged := func() bool {
		for _, node := range svc.Nodes() {
			p, ok := svc.Process(node)
			if !ok || p.Group.View().Size() != 3 {
				return false
			}
		}
		return true
	}
	if !pollUntil(1500, 10*time.Millisecond, allConverged) {
		v, _ := svc.View()
		t.Fatalf("views never converged (sampled size = %d)", v.Size())
	}
	// The new node's provider serves too.
	h := yokan.NewClient(svc.Admin()).Handle(proc.Addr(), nodeProviderID(proc.Node))
	if err := h.Put(ctx, []byte("on-new"), []byte("x")); err != nil {
		t.Fatal(err)
	}
}

func TestServiceShrinkMigratesData(t *testing.T) {
	svc, _ := startService(t, kvSpec(t, RecoverNone), 3, 5)
	ctx := sctx(t)
	nodes := svc.Nodes()
	victim := nodes[2]
	vp, _ := svc.Process(victim)
	victimID := nodeProviderID(victim)

	// Write data into the victim's provider.
	h := yokan.NewClient(svc.Admin()).Handle(vp.Addr(), victimID)
	for i := 0; i < 30; i++ {
		if err := h.Put(ctx, []byte(fmt.Sprintf("k%02d", i)), []byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.Shrink(ctx, victim); err != nil {
		t.Fatal(err)
	}
	if len(svc.Nodes()) != 2 {
		t.Fatalf("nodes = %v", svc.Nodes())
	}
	// The victim's provider now runs on a survivor with all the data,
	// under the same provider ID.
	found := false
	for _, node := range svc.Nodes() {
		p, _ := svc.Process(node)
		for _, name := range p.Server.Providers() {
			if name == "db-"+victim {
				found = true
				h2 := yokan.NewClient(svc.Admin()).Handle(p.Addr(), victimID)
				n, err := h2.Count(ctx)
				if err != nil || n != 30 {
					t.Fatalf("migrated data: count=%d err=%v", n, err)
				}
				v, err := h2.Get(ctx, []byte("k17"))
				if err != nil || string(v) != "payload" {
					t.Fatalf("migrated get = %q, %v", v, err)
				}
			}
		}
	}
	if !found {
		t.Fatalf("migrated provider not found on survivors")
	}
	// Shrinking down to one node works; shrinking the last is refused.
	if err := svc.Shrink(ctx, svc.Nodes()[0]); err != nil {
		t.Fatalf("second shrink: %v", err)
	}
	if err := svc.Shrink(ctx, svc.Nodes()[0]); !errors.Is(err, ErrLastNode) {
		t.Fatalf("err = %v", err)
	}
}

func TestServiceRebalanceMovesProviders(t *testing.T) {
	// Nodes with distinct provider IDs so migrations cannot collide.
	base := t.TempDir()
	idByNode := map[string]int{}
	spec := Spec{
		GroupName: "rb-service",
		SSG:       fastSSG(),
		NodeConfig: func(node string) []byte {
			dir := filepath.Join(base, node)
			id := idByNode[node]
			if id == 0 {
				id = len(idByNode) + 1
				idByNode[node] = id
			}
			return []byte(fmt.Sprintf(`{
			  "libraries": {"yokan": "libyokan.so"},
			  "remi_root": %q,
			  "providers": [
			    {"name": "db-%s", "type": "yokan", "provider_id": %d,
			     "config": {"type": "log", "path": %q, "no_sync": true}}
			  ]
			}`, filepath.Join(dir, "remi"), node, id, filepath.Join(dir, "db.log")))
		},
	}
	svc, _ := startService(t, spec, 3, 5)
	ctx := sctx(t)

	// Skew the data: all writes to node 0's provider.
	n0 := svc.Nodes()[0]
	p0, _ := svc.Process(n0)
	id0 := idByNode[n0]
	h := yokan.NewClient(svc.Admin()).Handle(p0.Addr(), uint16(id0))
	for i := 0; i < 100; i++ {
		if err := h.Put(ctx, []byte(fmt.Sprintf("key-%03d", i)), make([]byte, 500)); err != nil {
			t.Fatal(err)
		}
	}
	plan, err := svc.Rebalance(ctx, pufferscale.Objectives{WData: 1})
	if err != nil {
		t.Fatal(err)
	}
	// With one big resource and two empty nodes, the plan either
	// keeps it (already "balanced" as a single unit) or moves it; the
	// data must remain intact wherever it is.
	var total int
	for _, node := range svc.Nodes() {
		p, _ := svc.Process(node)
		for _, info := range p.Server.ResourceInventory() {
			if info.Name == "db-"+n0 {
				h2 := yokan.NewClient(svc.Admin()).Handle(p.Addr(), info.ProviderID)
				n, err := h2.Count(ctx)
				if err != nil {
					t.Fatal(err)
				}
				total = n
			}
		}
	}
	if total != 100 {
		t.Fatalf("data lost in rebalance: count = %d (plan moves: %d)", total, len(plan.Moves))
	}
}

func TestServiceFailureDetectionAndRecovery(t *testing.T) {
	svc, f := startService(t, kvSpec(t, RecoverRestartFromCheckpoint), 3, 6)
	ctx := sctx(t)

	// Put data on the node we will kill, then checkpoint everything.
	victim := svc.Nodes()[1]
	vp, _ := svc.Process(victim)
	h := yokan.NewClient(svc.Admin()).Handle(vp.Addr(), nodeProviderID(victim))
	for i := 0; i < 20; i++ {
		if err := h.Put(ctx, []byte(fmt.Sprintf("v%02d", i)), []byte("precious")); err != nil {
			t.Fatal(err)
		}
	}
	if err := svc.CheckpointAll(); err != nil {
		t.Fatal(err)
	}

	// Crash the node at the fabric level.
	f.Kill(vp.Addr())

	// SWIM detects it; the service provisions a replacement and
	// restores the checkpoint.
	pollUntil(1500, 20*time.Millisecond, func() bool {
		return len(svc.Failures()) > 0
	})
	svc.WaitRecoveries()
	failures := svc.Failures()
	if len(failures) == 0 {
		t.Fatal("failure never detected")
	}
	ev := failures[0]
	if ev.DeadNode != victim {
		t.Fatalf("dead node = %s, want %s", ev.DeadNode, victim)
	}
	if ev.RecoverErr != nil {
		t.Fatalf("recovery failed: %v", ev.RecoverErr)
	}
	if ev.ReplacedBy == "" {
		t.Fatal("no replacement provisioned")
	}
	// The replacement serves the restored data.
	rp, ok := svc.Process(ev.ReplacedBy)
	if !ok {
		t.Fatalf("replacement %s not tracked", ev.ReplacedBy)
	}
	h2 := yokan.NewClient(svc.Admin()).Handle(rp.Addr(), nodeProviderID(victim))
	v, err := h2.Get(ctx, []byte("v07"))
	if err != nil || string(v) != "precious" {
		t.Fatalf("restored get = %q, %v", v, err)
	}
	if len(svc.Nodes()) != 3 {
		t.Fatalf("nodes after recovery = %v", svc.Nodes())
	}
}

func TestServiceMonitoringAggregation(t *testing.T) {
	svc, _ := startService(t, kvSpec(t, RecoverNone), 2, 4)
	svc.EnableMonitoring()
	ctx := sctx(t)
	node0 := svc.Nodes()[0]
	p0, _ := svc.Process(node0)
	h := yokan.NewClient(svc.Admin()).Handle(p0.Addr(), nodeProviderID(node0))
	for i := 0; i < 5; i++ {
		if err := h.Put(ctx, []byte("k"), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	stats := svc.CollectStats()
	if len(stats) != 2 {
		t.Fatalf("stats from %d nodes", len(stats))
	}
	st, ok := stats[node0].FindByName(yokan.RPCPut)
	if !ok {
		t.Fatalf("no yokan_put stats on %s: %v", node0, stats[node0].Keys())
	}
	if providerLoad(stats[node0], nodeProviderID(node0)) < 5 {
		t.Fatalf("provider load = %f", providerLoad(stats[node0], nodeProviderID(node0)))
	}
	_ = st
}

func TestVirtualKVReplication(t *testing.T) {
	f := mercury.NewFabric()
	// Three backend nodes with plain yokan providers.
	var backends []struct {
		Addr       string
		ProviderID uint16
	}
	var insts []*margo.Instance
	for i := 0; i < 3; i++ {
		cls, _ := f.NewClass(fmt.Sprintf("vkv-%d", i))
		inst, err := margo.New(cls, nil)
		if err != nil {
			t.Fatal(err)
		}
		insts = append(insts, inst)
		if _, err := yokan.NewProvider(inst, 1, nil, yokan.Config{Type: "map"}); err != nil {
			t.Fatal(err)
		}
		backends = append(backends, struct {
			Addr       string
			ProviderID uint16
		}{inst.Addr(), 1})
	}
	// The "virtual" node hosts a provider whose database forwards.
	vcls, _ := f.NewClass("vkv-front")
	vinst, err := margo.New(vcls, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, i := range insts {
			i.Finalize()
		}
		vinst.Finalize()
	}()
	vdb, err := NewVirtualKV(vinst, backends, VirtualKVConfig{WriteQuorum: 2, OpTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := yokan.NewProviderWithDatabase(vinst, 7, nil, vdb, yokan.Config{Type: "virtual"}); err != nil {
		t.Fatal(err)
	}

	// A client talks to the virtual provider like any yokan provider
	// ("the client ... does not know that the provider it contacts
	// does not actually hold data itself").
	ccls, _ := f.NewClass("vkv-client")
	cinst, err := margo.New(ccls, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cinst.Finalize()
	ctx := sctx(t)
	h := yokan.NewClient(cinst).Handle(vinst.Addr(), 7)
	if err := h.Put(ctx, []byte("rk"), []byte("rv")); err != nil {
		t.Fatal(err)
	}
	// The value landed on all three replicas.
	for _, b := range backends {
		bh := yokan.NewClient(cinst).Handle(b.Addr, b.ProviderID)
		v, err := bh.Get(ctx, []byte("rk"))
		if err != nil || string(v) != "rv" {
			t.Fatalf("replica %s: %q %v", b.Addr, v, err)
		}
	}
	// Kill one replica: reads and quorum-2 writes still succeed.
	f.Kill(backends[0].Addr)
	if v, err := h.Get(ctx, []byte("rk")); err != nil || string(v) != "rv" {
		t.Fatalf("degraded read: %q %v", v, err)
	}
	if err := h.Put(ctx, []byte("rk2"), []byte("rv2")); err != nil {
		t.Fatalf("degraded write: %v", err)
	}
	// Kill a second: quorum 2 of 3 is no longer reachable.
	f.Kill(backends[1].Addr)
	if err := h.Put(ctx, []byte("rk3"), []byte("x")); err == nil {
		t.Fatal("write succeeded below quorum")
	}
	// Reads still work from the last replica.
	if v, err := h.Get(ctx, []byte("rk")); err != nil || string(v) != "rv" {
		t.Fatalf("single-replica read: %q %v", v, err)
	}
}

func TestVirtualKVEraseSemantics(t *testing.T) {
	f := mercury.NewFabric()
	var backends []struct {
		Addr       string
		ProviderID uint16
	}
	var insts []*margo.Instance
	for i := 0; i < 2; i++ {
		cls, _ := f.NewClass(fmt.Sprintf("ve-%d", i))
		inst, _ := margo.New(cls, nil)
		insts = append(insts, inst)
		if _, err := yokan.NewProvider(inst, 1, nil, yokan.Config{Type: "map"}); err != nil {
			t.Fatal(err)
		}
		backends = append(backends, struct {
			Addr       string
			ProviderID uint16
		}{inst.Addr(), 1})
	}
	defer func() {
		for _, i := range insts {
			i.Finalize()
		}
	}()
	vdb, err := NewVirtualKV(insts[0], backends, VirtualKVConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := vdb.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := vdb.Erase([]byte("k")); err != nil {
		t.Fatal(err)
	}
	if err := vdb.Erase([]byte("k")); err != yokan.ErrKeyNotFound {
		t.Fatalf("double erase: %v", err)
	}
	if n, _ := vdb.Count(); n != 0 {
		t.Fatalf("count = %d", n)
	}
}

func TestRaftKVLinearizable(t *testing.T) {
	f := mercury.NewFabric()
	var insts []*margo.Instance
	var addrs []string
	for i := 0; i < 3; i++ {
		cls, _ := f.NewClass(fmt.Sprintf("rkv-%d", i))
		inst, err := margo.New(cls, nil)
		if err != nil {
			t.Fatal(err)
		}
		insts = append(insts, inst)
		addrs = append(addrs, inst.Addr())
	}
	defer func() {
		for _, i := range insts {
			i.Finalize()
		}
	}()
	cfg := raft.Config{
		ElectionTimeoutMin: 50 * time.Millisecond,
		ElectionTimeoutMax: 100 * time.Millisecond,
		HeartbeatInterval:  15 * time.Millisecond,
	}
	var nodes []*raft.Node
	var dbs []yokan.Database
	for _, inst := range insts {
		db, _ := yokan.Open(yokan.Config{Type: "map"})
		dbs = append(dbs, db)
		n, err := NewRaftKVNode(inst, "rkv", addrs, raft.NewMemoryStore(), db, cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
	}()

	ccls, _ := f.NewClass("rkv-client")
	cinst, err := margo.New(ccls, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cinst.Finalize()
	client := NewRaftKVClient(cinst, "rkv", addrs)
	ctx := sctx(t)
	if err := client.Put(ctx, []byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, err := client.Get(ctx, []byte("a"))
	if err != nil || string(v) != "1" {
		t.Fatalf("get = %q, %v", v, err)
	}
	if _, err := client.Get(ctx, []byte("missing")); err != yokan.ErrKeyNotFound {
		t.Fatalf("missing get: %v", err)
	}
	if err := client.Erase(ctx, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := client.Erase(ctx, []byte("a")); err != yokan.ErrKeyNotFound {
		t.Fatalf("double erase: %v", err)
	}
	// All backing databases converge to the same contents.
	if err := client.Put(ctx, []byte("final"), []byte("state")); err != nil {
		t.Fatal(err)
	}
	converged := pollUntil(1000, 10*time.Millisecond, func() bool {
		for _, db := range dbs {
			if v, err := db.Get([]byte("final")); err != nil || string(v) != "state" {
				return false
			}
		}
		return true
	})
	if !converged {
		t.Fatal("replicas never converged")
	}
}

func TestRaftKVSurvivesLeaderCrash(t *testing.T) {
	f := mercury.NewFabric()
	var insts []*margo.Instance
	var addrs []string
	for i := 0; i < 3; i++ {
		cls, _ := f.NewClass(fmt.Sprintf("rkc-%d", i))
		inst, _ := margo.New(cls, nil)
		insts = append(insts, inst)
		addrs = append(addrs, inst.Addr())
	}
	defer func() {
		for _, i := range insts {
			i.Finalize()
		}
	}()
	cfg := raft.Config{
		ElectionTimeoutMin: 50 * time.Millisecond,
		ElectionTimeoutMax: 100 * time.Millisecond,
		HeartbeatInterval:  15 * time.Millisecond,
	}
	var nodes []*raft.Node
	for _, inst := range insts {
		db, _ := yokan.Open(yokan.Config{Type: "map"})
		n, err := NewRaftKVNode(inst, "rkc", addrs, raft.NewMemoryStore(), db, cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
	}()
	ccls, _ := f.NewClass("rkc-client")
	cinst, _ := margo.New(ccls, nil)
	defer cinst.Finalize()
	client := NewRaftKVClient(cinst, "rkc", addrs)
	ctx := sctx(t)
	if err := client.Put(ctx, []byte("pre"), []byte("crash")); err != nil {
		t.Fatal(err)
	}
	// Kill the leader.
	var leader *raft.Node
	pollUntil(1500, 10*time.Millisecond, func() bool {
		for _, n := range nodes {
			if n.IsLeader() {
				leader = n
			}
		}
		return leader != nil
	})
	if leader == nil {
		t.Fatal("no leader")
	}
	f.Kill(leader.ID())
	leader.Stop()
	// The client transparently finds the new leader.
	if err := client.Put(ctx, []byte("post"), []byte("crash")); err != nil {
		t.Fatal(err)
	}
	v, err := client.Get(ctx, []byte("pre"))
	if err != nil || string(v) != "crash" {
		t.Fatalf("pre-crash data: %q %v", v, err)
	}
}
