package core

import (
	"context"
	"fmt"

	"mochi/internal/codec"
	"mochi/internal/margo"
	"mochi/internal/raft"
	"mochi/internal/yokan"
)

// RaftKV is the paper's composable-consensus example (§7,
// Observation 11): "multiple Yokan providers could use a Mochi-RAFT
// instance as a dependency to ensure that the content of their
// key-value databases is consistent." Each member runs a local yokan
// database as the Raft state machine; clients submit commands through
// the Raft log, so all replicas apply the same operations in the same
// order. Yokan itself is unaware of the replication — the composable
// design the paper argues for.

// kvCommand ops.
const (
	kvOpPut uint8 = iota
	kvOpErase
	kvOpGet // reads via the log are linearizable
)

type kvCommand struct {
	Op    uint8
	Key   []byte
	Value []byte
}

func (c *kvCommand) MarshalMochi(e *codec.Encoder) {
	e.Uint8(c.Op)
	e.BytesField(c.Key)
	e.BytesField(c.Value)
}

func (c *kvCommand) UnmarshalMochi(d *codec.Decoder) {
	c.Op = d.Uint8()
	c.Key = append([]byte(nil), d.BytesField()...)
	c.Value = append([]byte(nil), d.BytesField()...)
}

type kvResult struct {
	Status uint8 // 0 ok, 1 not found, 2 error
	Err    string
	Value  []byte
}

func (r *kvResult) MarshalMochi(e *codec.Encoder) {
	e.Uint8(r.Status)
	e.String(r.Err)
	e.BytesField(r.Value)
}

func (r *kvResult) UnmarshalMochi(d *codec.Decoder) {
	r.Status = d.Uint8()
	r.Err = d.String()
	r.Value = append([]byte(nil), d.BytesField()...)
}

// kvFSM adapts a yokan.Database to raft.FSM.
type kvFSM struct {
	db yokan.Database
}

// Apply implements raft.FSM.
func (f *kvFSM) Apply(_ uint64, cmd []byte) []byte {
	var c kvCommand
	if err := codec.Unmarshal(cmd, &c); err != nil {
		return codec.Marshal(&kvResult{Status: 2, Err: err.Error()})
	}
	var res kvResult
	switch c.Op {
	case kvOpPut:
		if err := f.db.Put(c.Key, c.Value); err != nil {
			res.Status, res.Err = 2, err.Error()
		}
	case kvOpErase:
		switch err := f.db.Erase(c.Key); err {
		case nil:
		case yokan.ErrKeyNotFound:
			res.Status = 1
		default:
			res.Status, res.Err = 2, err.Error()
		}
	case kvOpGet:
		v, err := f.db.Get(c.Key)
		switch err {
		case nil:
			res.Value = v
		case yokan.ErrKeyNotFound:
			res.Status = 1
		default:
			res.Status, res.Err = 2, err.Error()
		}
	}
	return codec.Marshal(&res)
}

// Snapshot implements raft.FSM.
func (f *kvFSM) Snapshot() ([]byte, error) {
	kvs, err := f.db.ListKeyValues(nil, nil, 0)
	if err != nil {
		return nil, err
	}
	e := codec.NewEncoder(nil)
	e.Uvarint(uint64(len(kvs)))
	for _, kv := range kvs {
		e.BytesField(kv.Key)
		e.BytesField(kv.Value)
	}
	return e.Bytes(), nil
}

// Restore implements raft.FSM.
func (f *kvFSM) Restore(snap []byte) error {
	// Clear the database by erasing all keys, then load the snapshot.
	keys, err := f.db.ListKeys(nil, nil, 0)
	if err != nil {
		return err
	}
	for _, k := range keys {
		if err := f.db.Erase(k); err != nil && err != yokan.ErrKeyNotFound {
			return err
		}
	}
	d := codec.NewDecoder(snap)
	n := d.Uvarint()
	for i := uint64(0); i < n; i++ {
		k := append([]byte(nil), d.BytesField()...)
		v := append([]byte(nil), d.BytesField()...)
		if d.Err() != nil {
			return d.Err()
		}
		if err := f.db.Put(k, v); err != nil {
			return err
		}
	}
	return d.Finish()
}

// NewRaftKVNode starts one member of a Raft-replicated key-value
// group: the given database becomes the member's state machine.
func NewRaftKVNode(inst *margo.Instance, group string, peers []string, store raft.Store, db yokan.Database, cfg raft.Config) (*raft.Node, error) {
	return raft.NewNode(inst, group, peers, store, &kvFSM{db: db}, cfg)
}

// RaftKVClient performs replicated KV operations from any process.
type RaftKVClient struct {
	rc *raft.Client
}

// NewRaftKVClient creates a client for the replicated KV group.
func NewRaftKVClient(inst *margo.Instance, group string, seeds []string) *RaftKVClient {
	return &RaftKVClient{rc: raft.NewClient(inst, group, seeds)}
}

func (c *RaftKVClient) do(ctx context.Context, cmd kvCommand) (*kvResult, error) {
	out, err := c.rc.Apply(ctx, codec.Marshal(&cmd))
	if err != nil {
		return nil, err
	}
	var res kvResult
	if err := codec.Unmarshal(out, &res); err != nil {
		return nil, err
	}
	if res.Status == 2 {
		return nil, fmt.Errorf("core: raft kv: %s", res.Err)
	}
	return &res, nil
}

// Put stores a pair through the Raft log.
func (c *RaftKVClient) Put(ctx context.Context, key, value []byte) error {
	_, err := c.do(ctx, kvCommand{Op: kvOpPut, Key: key, Value: value})
	return err
}

// Get reads linearizably (through the log).
func (c *RaftKVClient) Get(ctx context.Context, key []byte) ([]byte, error) {
	res, err := c.do(ctx, kvCommand{Op: kvOpGet, Key: key})
	if err != nil {
		return nil, err
	}
	if res.Status == 1 {
		return nil, yokan.ErrKeyNotFound
	}
	return res.Value, nil
}

// Erase removes a key through the log.
func (c *RaftKVClient) Erase(ctx context.Context, key []byte) error {
	res, err := c.do(ctx, kvCommand{Op: kvOpErase, Key: key})
	if err != nil {
		return err
	}
	if res.Status == 1 {
		return yokan.ErrKeyNotFound
	}
	return nil
}
