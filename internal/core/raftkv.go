package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"mochi/internal/codec"
	"mochi/internal/margo"
	"mochi/internal/raft"
	"mochi/internal/yokan"
)

// RaftKV is the paper's composable-consensus example (§7,
// Observation 11): "multiple Yokan providers could use a Mochi-RAFT
// instance as a dependency to ensure that the content of their
// key-value databases is consistent." Each member runs a local yokan
// database as the Raft state machine; clients submit commands through
// the Raft log, so all replicas apply the same operations in the same
// order. Yokan itself is unaware of the replication — the composable
// design the paper argues for.

// kvCommand ops.
const (
	kvOpPut uint8 = iota
	kvOpErase
	kvOpGet // reads via the log are linearizable
)

type kvCommand struct {
	Op uint8
	// CID/Seq identify the client session and its operation number for
	// at-most-once semantics. The raft client (and the margo resilience
	// layer under it) retries a command when a reply is lost, so the
	// same command can reach the log twice; without dedup a duplicate
	// Put re-applied after an interleaving write resurrects the old
	// value — a real linearizability violation the simulation harness
	// flags (see internal/core/linearize_test.go). The FSM caches the
	// last (Seq, result) per CID and replays the cached result for a
	// duplicate instead of re-applying.
	CID   string
	Seq   uint64
	Key   []byte
	Value []byte
}

func (c *kvCommand) MarshalMochi(e *codec.Encoder) {
	e.Uint8(c.Op)
	e.String(c.CID)
	e.Uvarint(c.Seq)
	e.BytesField(c.Key)
	e.BytesField(c.Value)
}

func (c *kvCommand) UnmarshalMochi(d *codec.Decoder) {
	c.Op = d.Uint8()
	c.CID = d.String()
	c.Seq = d.Uvarint()
	c.Key = append([]byte(nil), d.BytesField()...)
	c.Value = append([]byte(nil), d.BytesField()...)
}

type kvResult struct {
	Status uint8 // 0 ok, 1 not found, 2 error
	Err    string
	Value  []byte
}

func (r *kvResult) MarshalMochi(e *codec.Encoder) {
	e.Uint8(r.Status)
	e.String(r.Err)
	e.BytesField(r.Value)
}

func (r *kvResult) UnmarshalMochi(d *codec.Decoder) {
	r.Status = d.Uint8()
	r.Err = d.String()
	r.Value = append([]byte(nil), d.BytesField()...)
}

// kvSession is the at-most-once state for one client: the highest
// operation number applied and its cached result. Each client has at
// most one outstanding operation, so one slot per client suffices
// (the Raft dissertation's session scheme, §6.3).
type kvSession struct {
	Seq    uint64
	Result []byte
}

// kvFSM adapts a yokan.Database to raft.FSM. It also implements
// raft.BatchFSM (the applier hands a whole committed run over under
// one lock acquisition) and raft.ReaderFSM (ReadIndex gets bypass the
// log; mu lets those reads run concurrently with each other while
// excluding the applier).
type kvFSM struct {
	mu       sync.RWMutex
	db       yokan.Database
	sessions map[string]kvSession
}

// Apply implements raft.FSM.
func (f *kvFSM) Apply(_ uint64, cmd []byte) []byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.applyOne(cmd)
}

// ApplyBatch implements raft.BatchFSM: one lock acquisition covers the
// whole committed run instead of one per command.
func (f *kvFSM) ApplyBatch(cmds []raft.Command) [][]byte {
	results := make([][]byte, len(cmds))
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, c := range cmds {
		results[i] = f.applyOne(c.Data)
	}
	return results
}

// Read implements raft.ReaderFSM: a ReadIndex query is a kvCommand
// with no CID/Seq — reads have no side effects, so they never touch
// the session table.
func (f *kvFSM) Read(query []byte) []byte {
	var c kvCommand
	if err := codec.Unmarshal(query, &c); err != nil {
		return codec.Marshal(&kvResult{Status: 2, Err: err.Error()})
	}
	var res kvResult
	f.mu.RLock()
	v, err := f.db.Get(c.Key)
	f.mu.RUnlock()
	switch err {
	case nil:
		res.Value = v
	case yokan.ErrKeyNotFound:
		res.Status = 1
	default:
		res.Status, res.Err = 2, err.Error()
	}
	return codec.Marshal(&res)
}

// applyOne executes one committed command; caller holds mu.
func (f *kvFSM) applyOne(cmd []byte) []byte {
	var c kvCommand
	if err := codec.Unmarshal(cmd, &c); err != nil {
		return codec.Marshal(&kvResult{Status: 2, Err: err.Error()})
	}
	if c.CID != "" {
		if s, ok := f.sessions[c.CID]; ok && c.Seq <= s.Seq {
			// Duplicate delivery of an already-applied command: replay
			// the cached result instead of re-executing. (Seq < s.Seq
			// cannot happen with blocking clients, but replying with
			// the newer cached result is still safe — the older reply
			// was already delivered or abandoned.)
			return s.Result
		}
	}
	var res kvResult
	switch c.Op {
	case kvOpPut:
		if err := f.db.Put(c.Key, c.Value); err != nil {
			res.Status, res.Err = 2, err.Error()
		}
	case kvOpErase:
		switch err := f.db.Erase(c.Key); err {
		case nil:
		case yokan.ErrKeyNotFound:
			res.Status = 1
		default:
			res.Status, res.Err = 2, err.Error()
		}
	case kvOpGet:
		v, err := f.db.Get(c.Key)
		switch err {
		case nil:
			res.Value = v
		case yokan.ErrKeyNotFound:
			res.Status = 1
		default:
			res.Status, res.Err = 2, err.Error()
		}
	}
	out := codec.Marshal(&res)
	if c.CID != "" {
		if f.sessions == nil {
			f.sessions = map[string]kvSession{}
		}
		f.sessions[c.CID] = kvSession{Seq: c.Seq, Result: out}
	}
	return out
}

// Snapshot implements raft.FSM. The session table is part of the
// state machine: a replica restored from a snapshot must still
// recognize duplicates of commands the snapshot already covers.
func (f *kvFSM) Snapshot() ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	kvs, err := f.db.ListKeyValues(nil, nil, 0)
	if err != nil {
		return nil, err
	}
	e := codec.NewEncoder(nil)
	e.Uvarint(uint64(len(kvs)))
	for _, kv := range kvs {
		e.BytesField(kv.Key)
		e.BytesField(kv.Value)
	}
	cids := make([]string, 0, len(f.sessions))
	for cid := range f.sessions {
		cids = append(cids, cid)
	}
	sort.Strings(cids) // deterministic snapshot bytes
	e.Uvarint(uint64(len(cids)))
	for _, cid := range cids {
		s := f.sessions[cid]
		e.String(cid)
		e.Uvarint(s.Seq)
		e.BytesField(s.Result)
	}
	return e.Bytes(), nil
}

// Restore implements raft.FSM.
func (f *kvFSM) Restore(snap []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	// Clear the database by erasing all keys, then load the snapshot.
	keys, err := f.db.ListKeys(nil, nil, 0)
	if err != nil {
		return err
	}
	for _, k := range keys {
		if err := f.db.Erase(k); err != nil && err != yokan.ErrKeyNotFound {
			return err
		}
	}
	d := codec.NewDecoder(snap)
	n := d.Uvarint()
	for i := uint64(0); i < n; i++ {
		k := append([]byte(nil), d.BytesField()...)
		v := append([]byte(nil), d.BytesField()...)
		if d.Err() != nil {
			return d.Err()
		}
		if err := f.db.Put(k, v); err != nil {
			return err
		}
	}
	f.sessions = map[string]kvSession{}
	ns := d.Uvarint()
	for i := uint64(0); i < ns; i++ {
		cid := d.String()
		seq := d.Uvarint()
		res := append([]byte(nil), d.BytesField()...)
		if d.Err() != nil {
			return d.Err()
		}
		f.sessions[cid] = kvSession{Seq: seq, Result: res}
	}
	return d.Finish()
}

// NewRaftKVNode starts one member of a Raft-replicated key-value
// group: the given database becomes the member's state machine.
func NewRaftKVNode(inst *margo.Instance, group string, peers []string, store raft.Store, db yokan.Database, cfg raft.Config) (*raft.Node, error) {
	return raft.NewNode(inst, group, peers, store, &kvFSM{db: db}, cfg)
}

// RaftKVClient performs replicated KV operations from any process.
// Each client is one at-most-once session: operations carry (CID, Seq)
// so retried commands are deduplicated by the FSM.
type RaftKVClient struct {
	rc  *raft.Client
	cid string
	seq uint64

	// LogReads routes Get through the replicated log (a kvOpGet
	// command with full session bookkeeping) instead of the default
	// ReadIndex path. Reads through the log pay an append, an fsync,
	// and a replication round each; keep this off unless replaying old
	// histories or A/B-benchmarking the two paths (EXPERIMENTS.md E15).
	LogReads bool
}

// kvClientCtr disambiguates multiple clients on one instance address.
var kvClientCtr uint64

// NewRaftKVClient creates a client for the replicated KV group.
func NewRaftKVClient(inst *margo.Instance, group string, seeds []string) *RaftKVClient {
	cid := fmt.Sprintf("%s#%d", inst.Addr(), atomic.AddUint64(&kvClientCtr, 1))
	return &RaftKVClient{rc: raft.NewClient(inst, group, seeds), cid: cid}
}

func (c *RaftKVClient) do(ctx context.Context, cmd kvCommand) (*kvResult, error) {
	cmd.CID = c.cid
	cmd.Seq = atomic.AddUint64(&c.seq, 1)
	out, err := c.rc.Apply(ctx, codec.Marshal(&cmd))
	if err != nil {
		return nil, err
	}
	var res kvResult
	if err := codec.Unmarshal(out, &res); err != nil {
		return nil, err
	}
	if res.Status == 2 {
		return nil, fmt.Errorf("core: raft kv: %s", res.Err)
	}
	return &res, nil
}

// Put stores a pair through the Raft log.
func (c *RaftKVClient) Put(ctx context.Context, key, value []byte) error {
	_, err := c.do(ctx, kvCommand{Op: kvOpPut, Key: key, Value: value})
	return err
}

// Get reads linearizably. By default it uses the ReadIndex path: no
// log entry, no fsync — the leader confirms leadership with one
// heartbeat quorum round (shared across concurrent reads) and answers
// from the state machine. With LogReads set, the get is serialized
// through the log like a write.
func (c *RaftKVClient) Get(ctx context.Context, key []byte) ([]byte, error) {
	var res *kvResult
	var err error
	if c.LogReads {
		res, err = c.do(ctx, kvCommand{Op: kvOpGet, Key: key})
	} else {
		// No CID/Seq: reads have no side effects, so they need no
		// at-most-once session bookkeeping.
		res, err = c.read(ctx, kvCommand{Op: kvOpGet, Key: key})
	}
	if err != nil {
		return nil, err
	}
	if res.Status == 1 {
		return nil, yokan.ErrKeyNotFound
	}
	return res.Value, nil
}

func (c *RaftKVClient) read(ctx context.Context, cmd kvCommand) (*kvResult, error) {
	out, err := c.rc.Read(ctx, codec.Marshal(&cmd))
	if err != nil {
		return nil, err
	}
	var res kvResult
	if err := codec.Unmarshal(out, &res); err != nil {
		return nil, err
	}
	if res.Status == 2 {
		return nil, fmt.Errorf("core: raft kv: %s", res.Err)
	}
	return &res, nil
}

// Erase removes a key through the log.
func (c *RaftKVClient) Erase(ctx context.Context, key []byte) error {
	res, err := c.do(ctx, kvCommand{Op: kvOpErase, Key: key})
	if err != nil {
		return err
	}
	if res.Status == 1 {
		return yokan.ErrKeyNotFound
	}
	return nil
}
