package codec

import (
	"bytes"
	"testing"
)

// FuzzDecoder interprets the first input as a script of decode
// operations run against the second input as the buffer. Whatever the
// bytes, the decoder must never panic; once it has failed it must stay
// failed and return only inert zero values.
func FuzzDecoder(f *testing.F) {
	// Seed with a valid encoding of every field type, paired with a
	// script that reads it back in order, plus a few hostile shapes.
	e := NewEncoder(nil)
	e.Uint8(7)
	e.Bool(true)
	e.Uint16(513)
	e.Uint32(1 << 20)
	e.Uint64(1 << 40)
	e.Int64(-9)
	e.Float64(3.25)
	e.Uvarint(300)
	e.Varint(-300)
	e.BytesField([]byte("payload"))
	e.String("name")
	e.StringSlice([]string{"a", "bb", "ccc"})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 11, 12}, append([]byte(nil), e.Bytes()...))
	f.Add([]byte{9, 9, 9}, []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}) // huge uvarint length
	f.Add([]byte{12}, []byte{0x05})                                                            // count with no elements
	f.Add([]byte{7}, []byte{0x80})                                                             // truncated varint

	f.Fuzz(func(t *testing.T, ops []byte, data []byte) {
		if len(ops) > 256 {
			ops = ops[:256]
		}
		d := NewDecoder(data)
		for _, op := range ops {
			switch op % 14 {
			case 0:
				d.Uint8()
			case 1:
				d.Bool()
			case 2:
				d.Uint16()
			case 3:
				d.Uint32()
			case 4:
				d.Uint64()
			case 5:
				d.Int64()
			case 6:
				d.Float64()
			case 7:
				d.Uvarint()
			case 8:
				d.Varint()
			case 9:
				b := d.BytesField()
				if d.Err() == nil && len(b) > d.Remaining()+len(b) {
					t.Fatalf("BytesField returned %d bytes from a %d-byte buffer", len(b), len(data))
				}
			case 10:
				d.BytesFieldCopy()
			case 11:
				_ = d.String()
			case 12:
				ss := d.StringSlice()
				if d.Err() == nil && len(ss) > len(data) {
					t.Fatalf("StringSlice returned %d strings from %d bytes", len(ss), len(data))
				}
			case 13:
				d.StringRef()
			}
			if d.Err() != nil {
				// Failure is sticky and everything after it is inert.
				if v := d.Uint64(); v != 0 {
					t.Fatalf("Uint64 after error = %d, want 0", v)
				}
				if b := d.BytesField(); b != nil {
					t.Fatalf("BytesField after error = %q, want nil", b)
				}
				if s := d.String(); s != "" {
					t.Fatalf("String after error = %q, want empty", s)
				}
				if err := d.Finish(); err == nil {
					t.Fatal("Finish reported success after a decode error")
				}
				return
			}
		}
		_ = d.Finish()
	})
}

// FuzzRoundTrip checks that any byte string and string survive an
// encode/decode cycle byte-for-byte, whatever their content.
func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte("key"), "value", uint64(42))
	f.Add([]byte{}, "", uint64(0))
	f.Add([]byte{0xff, 0x00}, "\x00\xff", uint64(1<<63))
	f.Fuzz(func(t *testing.T, b []byte, s string, u uint64) {
		e := NewEncoder(nil)
		e.BytesField(b)
		e.String(s)
		e.Uvarint(u)
		d := NewDecoder(e.Bytes())
		gb := d.BytesField()
		gs := d.String()
		gu := d.Uvarint()
		if err := d.Finish(); err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if !bytes.Equal(gb, b) || gs != s || gu != u {
			t.Fatalf("round trip mismatch: %q/%q/%d != %q/%q/%d", gb, gs, gu, b, s, u)
		}
	})
}
