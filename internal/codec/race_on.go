//go:build race

package codec

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
