//go:build !mochi_unsafe

package codec

// ZeroCopyStrings reports whether the unsafe string fast path is
// compiled in (build tag mochi_unsafe). In the default build every
// string↔bytes conversion copies, so decoded strings can never alias
// transport-owned buffers. The two paths are byte-identical on every
// input; FuzzZeroCopyParity proves it.
const ZeroCopyStrings = false

// bytesToString converts decoded bytes to a string. Safe fallback: an
// owned copy.
func bytesToString(b []byte) string { return string(b) }
