// Pooling for the codec hot path. The RPC layers encode and decode a
// header-sized message per send and per receive; without reuse, every
// one of those costs an Encoder/Decoder allocation (the values escape
// through the Marshaler/Unmarshaler interfaces) plus a backing buffer.
// The pools below make the steady-state cost zero, mirroring the
// caller-owned-buffer discipline of Mercury's hg_proc.
//
// Ownership rules (see DESIGN.md "Hot-path memory discipline"):
//
//   - After PutEncoder/PutDecoder, every slice or StringRef obtained
//     from the value is invalid: the backing buffer will be reused.
//     Copy anything that must survive before calling Put.
//   - GetBuffer/PutBuffer recycle payload-sized scratch; a buffer may
//     only be Put once, by whoever holds ownership last.
package codec

import "sync"

// maxPooledBuf bounds what the encoder and buffer pools retain, so a
// single huge message does not pin megabytes inside pools forever.
const maxPooledBuf = 64 << 10

var encoderPool = sync.Pool{New: func() any { return &Encoder{} }}

// GetEncoder returns a reset Encoder from the pool. Pair with
// PutEncoder once the encoded bytes have been consumed (sent or
// copied).
func GetEncoder() *Encoder {
	e := encoderPool.Get().(*Encoder)
	e.Reset()
	return e
}

// PutEncoder recycles e. The buffer returned by e.Bytes() must no
// longer be referenced by the caller.
func PutEncoder(e *Encoder) {
	if e == nil || cap(e.buf) > maxPooledBuf {
		return
	}
	e.buf = e.buf[:0]
	encoderPool.Put(e)
}

var decoderPool = sync.Pool{New: func() any { return &Decoder{} }}

// GetDecoder returns a pooled Decoder reading from buf. Pair with
// PutDecoder; zero-copy results (BytesField, StringRef) remain valid
// afterwards only as long as buf itself is.
func GetDecoder(buf []byte) *Decoder {
	d := decoderPool.Get().(*Decoder)
	d.buf = buf
	d.off = 0
	d.err = nil
	return d
}

// PutDecoder recycles d. The decoder drops its reference to the input
// buffer so pooling never pins caller memory.
func PutDecoder(d *Decoder) {
	if d == nil {
		return
	}
	d.buf = nil
	d.off = 0
	d.err = nil
	decoderPool.Put(d)
}

// bufClass maps a size to a power-of-two pool class: class i holds
// buffers of capacity 1<<(minBufBits+i).
const (
	minBufBits = 6 // 64 B
	maxBufBits = 16
	numClasses = maxBufBits - minBufBits + 1
)

// bufPools are bounded free-lists of slice headers. Channels rather
// than sync.Pool for two reasons: sending a []byte through a channel
// does not box it into an interface (sync.Pool.Put of a slice
// allocates a header copy on every call, which would put an alloc
// right back on the path the pool exists to clear), and the free-list
// survives GC cycles so alloc-pinning tests are deterministic. Each
// class is capped at ~1 MiB of retained memory.
var bufPools [numClasses]chan []byte

func init() {
	for c := range bufPools {
		size := 1 << (minBufBits + c)
		slots := (1 << 20) / size
		if slots < 8 {
			slots = 8
		}
		if slots > 1024 {
			slots = 1024
		}
		bufPools[c] = make(chan []byte, slots)
	}
}

func classFor(n int) int {
	c := 0
	for size := 1 << minBufBits; size < n; size <<= 1 {
		c++
	}
	return c
}

// GetBuffer returns a zero-length buffer with capacity >= n from the
// size-classed pool, or a fresh allocation for n > 64 KiB. Return it
// with PutBuffer when ownership ends.
func GetBuffer(n int) []byte {
	if n > maxPooledBuf {
		return make([]byte, 0, n)
	}
	c := classFor(n)
	select {
	case b := <-bufPools[c]:
		return b[:0]
	default:
		return make([]byte, 0, 1<<(minBufBits+c))
	}
}

// PutBuffer recycles a buffer obtained from GetBuffer (or any buffer
// whose capacity is an exact pool class size). Buffers of other
// capacities, oversized ones, and overflow beyond the per-class bound
// are left for the GC.
func PutBuffer(b []byte) {
	c := cap(b)
	if c < 1<<minBufBits || c > maxPooledBuf || c&(c-1) != 0 {
		return
	}
	select {
	case bufPools[classFor(c)] <- b[:0]:
	default:
	}
}

// AppendBuffer copies src into a pooled buffer (GetBuffer semantics):
// the result has the same contents but pool-recyclable backing memory.
func AppendBuffer(src []byte) []byte {
	return append(GetBuffer(len(src)), src...)
}
