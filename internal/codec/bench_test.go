package codec

import (
	"testing"
)

// benchMsg exercises every encoder primitive the RPC header and the
// yokan wire types use.
type benchMsg struct {
	Kind   uint8
	Seq    uint64
	ID     uint32
	Prov   uint16
	OK     bool
	Name   string
	Key    []byte
	Value  []byte
	Weight float64
}

func (m *benchMsg) MarshalMochi(e *Encoder) {
	e.Uint8(m.Kind)
	e.Uint64(m.Seq)
	e.Uint32(m.ID)
	e.Uint16(m.Prov)
	e.Bool(m.OK)
	e.String(m.Name)
	e.BytesField(m.Key)
	e.BytesField(m.Value)
	e.Float64(m.Weight)
}

func (m *benchMsg) UnmarshalMochi(d *Decoder) {
	m.Kind = d.Uint8()
	m.Seq = d.Uint64()
	m.ID = d.Uint32()
	m.Prov = d.Uint16()
	m.OK = d.Bool()
	m.Name = d.String()
	m.Key = d.BytesField()
	m.Value = d.BytesField()
	m.Weight = d.Float64()
}

var benchIn = benchMsg{
	Kind:   2,
	Seq:    1 << 40,
	ID:     0xdeadbeef,
	Prov:   42,
	OK:     true,
	Name:   "yokan_put",
	Key:    []byte("bench-key-0123456789"),
	Value:  []byte("bench-value-abcdefghijklmnopqrstuvwxyz"),
	Weight: 3.14159,
}

// BenchmarkCodecMarshal measures a fresh-buffer Marshal per op, the
// seed-code pattern on every RPC argument encode.
func BenchmarkCodecMarshal(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = Marshal(&benchIn)
	}
}

// BenchmarkCodecRoundTrip measures Marshal + Unmarshal of a
// representative header-sized message.
func BenchmarkCodecRoundTrip(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := Marshal(&benchIn)
		var out benchMsg
		if err := Unmarshal(buf, &out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCodecPooledRoundTrip measures the hot-path pattern the RPC
// layers use: pooled encoder + zero-copy decode. The single remaining
// allocation is the owned copy of the Name string (String(); StringRef
// would alias). Primitive/bytes-only messages are allocation-free —
// see TestCodecAllocsPinned.
func BenchmarkCodecPooledRoundTrip(b *testing.B) {
	b.ReportAllocs()
	var out benchMsg
	for i := 0; i < b.N; i++ {
		e := GetEncoder()
		benchIn.MarshalMochi(e)
		d := GetDecoder(e.Bytes())
		out.UnmarshalMochi(d)
		if err := d.Finish(); err != nil {
			b.Fatal(err)
		}
		PutDecoder(d)
		PutEncoder(e)
	}
}
