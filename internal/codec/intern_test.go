package codec

import (
	"fmt"
	"sync"
	"testing"
)

func TestInternReturnsEqualString(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		[]byte("a"),
		[]byte("tcp://127.0.0.1:4242"),
		[]byte("\x00\xff binary \x7f"),
		make([]byte, internMaxLen),   // at the cache bound
		make([]byte, internMaxLen+1), // beyond it: plain copy
	}
	for _, b := range cases {
		if got := Intern(b); got != string(b) {
			t.Fatalf("Intern(%q) = %q", b, got)
		}
	}
}

// TestInternHitSharesStorage pins the point of the table: the second
// decode of the same bytes returns the identical string header, not a
// fresh copy.
func TestInternHitSharesStorage(t *testing.T) {
	first := Intern([]byte("intern-hit-shares-storage"))
	second := Intern([]byte("intern-hit-shares-storage"))
	// Comparing data pointers via interface identity would need unsafe;
	// AllocsPerRun proves the hit path allocates nothing instead.
	if first != second {
		t.Fatalf("interned values differ: %q vs %q", first, second)
	}
	if raceEnabled {
		t.Skip("alloc accounting is meaningless under the race detector")
	}
	key := []byte("intern-steady-state-key")
	Intern(key) // warm the slot
	if avg := testing.AllocsPerRun(100, func() { Intern(key) }); avg > 0 {
		t.Fatalf("interned hit allocates %.1f times per op, want 0", avg)
	}
}

// TestInternIsLossyNotGrowing floods the table with unique strings and
// checks correctness is preserved (values still equal their input);
// the table overwrites rather than grows.
func TestInternIsLossyNotGrowing(t *testing.T) {
	for i := 0; i < internSlots*4; i++ {
		b := []byte(fmt.Sprintf("unique-%d", i))
		if got := Intern(b); got != string(b) {
			t.Fatalf("flooded Intern(%q) = %q", b, got)
		}
	}
}

// TestInternConcurrent hammers one slot set from many goroutines under
// the race detector: the lossy table must stay data-race-free and
// always return correct values.
func TestInternConcurrent(t *testing.T) {
	keys := make([][]byte, 32)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("concurrent-intern-%d", i))
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := keys[(g+i)%len(keys)]
				if got := Intern(k); got != string(k) {
					panic(fmt.Sprintf("Intern(%q) = %q", k, got))
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestStringInternDecode checks the Decoder entry point, including the
// sticky-error contract.
func TestStringInternDecode(t *testing.T) {
	e := NewEncoder(nil)
	e.String("tcp://10.0.0.1:5000")
	e.String("")
	buf := e.Bytes()
	d := NewDecoder(buf)
	if s := d.StringIntern(); s != "tcp://10.0.0.1:5000" {
		t.Fatalf("got %q", s)
	}
	if s := d.StringIntern(); s != "" {
		t.Fatalf("empty got %q", s)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	bad := NewDecoder([]byte{0x05, 'x'}) // declared 5, only 1 byte
	if s := bad.StringIntern(); s != "" {
		t.Fatalf("short buffer StringIntern = %q, want empty", s)
	}
	if bad.Err() == nil {
		t.Fatal("short buffer did not fail")
	}
}

// TestZeroCopyParity runs the active StringRef path against the
// always-safe reference decode on a fixed corpus: whatever build tag
// is in effect, the decoded values must match byte for byte. The fuzz
// target FuzzZeroCopyParity extends this to arbitrary inputs.
func TestZeroCopyParity(t *testing.T) {
	corpus := []string{"", "a", "tcp://127.0.0.1:1", "\x00\xff\xfe", "日本語", string(make([]byte, 300))}
	for _, s := range corpus {
		e := NewEncoder(nil)
		e.String(s)
		buf := e.Bytes()

		active := NewDecoder(buf)
		got := active.StringRef()
		ref := NewDecoder(buf)
		want := ref.String()
		if got != want || got != s {
			t.Fatalf("ZeroCopyStrings=%v: StringRef %q, String %q, input %q", ZeroCopyStrings, got, want, s)
		}
		gi := NewDecoder(buf)
		if v := gi.StringIntern(); v != s {
			t.Fatalf("StringIntern %q != %q", v, s)
		}
	}
}

// TestStringRefLifetime pins the per-build contract: the default build
// must return an owned copy that survives buffer mutation; the
// mochi_unsafe build must alias the buffer (that is the optimization).
func TestStringRefLifetime(t *testing.T) {
	e := NewEncoder(nil)
	e.String("lifetime")
	buf := append([]byte(nil), e.Bytes()...)
	d := NewDecoder(buf)
	s := d.StringRef()
	for i := range buf {
		buf[i] = 'Z'
	}
	if ZeroCopyStrings {
		if s == "lifetime" {
			t.Fatal("mochi_unsafe StringRef did not alias the buffer")
		}
	} else {
		if s != "lifetime" {
			t.Fatalf("safe StringRef aliased the buffer: %q", s)
		}
	}
}
