package codec

import (
	"bytes"
	"testing"
)

func TestPooledEncoderRoundTrip(t *testing.T) {
	e := GetEncoder()
	e.Uint32(7)
	e.BytesField([]byte("payload"))
	got := append([]byte(nil), e.Bytes()...)
	PutEncoder(e)

	e2 := GetEncoder()
	defer PutEncoder(e2)
	if e2.Len() != 0 {
		t.Fatalf("pooled encoder not reset: len %d", e2.Len())
	}
	d := GetDecoder(got)
	if v := d.Uint32(); v != 7 {
		t.Fatalf("got %d", v)
	}
	if b := d.BytesField(); string(b) != "payload" {
		t.Fatalf("got %q", b)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
	PutDecoder(d)
}

func TestPutEncoderDropsOversized(t *testing.T) {
	e := GetEncoder()
	e.BytesField(make([]byte, maxPooledBuf+1))
	PutEncoder(e) // must not retain a >64KiB buffer; nothing to assert beyond not panicking
}

// TestBytesFieldAliasesInput pins the zero-copy contract: BytesField
// shares the input buffer, BytesFieldCopy does not.
func TestBytesFieldAliasesInput(t *testing.T) {
	e := GetEncoder()
	e.BytesField([]byte("alias"))
	e.BytesField([]byte("owned"))
	buf := append([]byte(nil), e.Bytes()...)
	PutEncoder(e)

	d := NewDecoder(buf)
	ref := d.BytesField()
	own := d.BytesFieldCopy()
	if string(ref) != "alias" || string(own) != "owned" {
		t.Fatalf("decode mismatch: %q %q", ref, own)
	}
	for i := range buf {
		buf[i] = 'X'
	}
	if string(ref) != "XXXXX" {
		t.Fatalf("BytesField should alias the input, got %q after mutation", ref)
	}
	if string(own) != "owned" {
		t.Fatalf("BytesFieldCopy must be independent of the input, got %q", own)
	}
}

func TestStringRefZeroCopy(t *testing.T) {
	e := GetEncoder()
	e.String("hello")
	e.String("")
	buf := append([]byte(nil), e.Bytes()...)
	PutEncoder(e)

	d := NewDecoder(buf)
	s := d.StringRef()
	if s != "hello" {
		t.Fatalf("got %q", s)
	}
	if empty := d.StringRef(); empty != "" {
		t.Fatalf("empty StringRef got %q", empty)
	}
	if err := d.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestMarshalAppendReusesScratch(t *testing.T) {
	m := &benchMsg{Seq: 1, Key: []byte("abc"), Name: "s"}
	scratch := make([]byte, 0, 256)
	out := MarshalAppend(scratch, m)
	if &out[0] != &scratch[:1][0] {
		t.Fatal("MarshalAppend did not use the provided scratch buffer")
	}
	if !bytes.Equal(out, Marshal(m)) {
		t.Fatal("MarshalAppend and Marshal disagree")
	}
}

func TestBufferPoolClasses(t *testing.T) {
	b := GetBuffer(100)
	if cap(b) < 100 || len(b) != 0 {
		t.Fatalf("GetBuffer(100): len %d cap %d", len(b), cap(b))
	}
	if cap(b) != 128 {
		t.Fatalf("expected 128-byte class, got %d", cap(b))
	}
	PutBuffer(b)
	b2 := GetBuffer(100)
	if &b2[:1][0] != &b[:1][0] {
		t.Fatal("expected recycled buffer from the pool")
	}
	PutBuffer(b2)

	big := GetBuffer(maxPooledBuf + 1)
	if cap(big) < maxPooledBuf+1 {
		t.Fatal("oversized GetBuffer too small")
	}
	PutBuffer(big)                   // dropped, not pooled
	PutBuffer(make([]byte, 0, 100))  // non-power-of-two cap: dropped
	PutBuffer(make([]byte, 0, 1<<5)) // below minimum class: dropped
	if got := AppendBuffer([]byte("xyz")); string(got) != "xyz" {
		t.Fatalf("AppendBuffer got %q", got)
	}
}

// TestPooledBufferMutationAfterPut proves the ownership rule the RPC
// layers rely on: data copied out of a pooled buffer before PutBuffer
// stays intact when the recycled buffer is overwritten by its next
// owner.
func TestPooledBufferMutationAfterPut(t *testing.T) {
	src := AppendBuffer([]byte("precious"))
	kept := append([]byte(nil), src...)
	PutBuffer(src)
	next := GetBuffer(8)
	next = append(next, "garbage!"...)
	if string(kept) != "precious" {
		t.Fatalf("copy corrupted by pool reuse: %q", kept)
	}
	PutBuffer(next)
}

// TestCodecAllocsPinned fails if the pooled encode/decode round trip
// regresses from allocation-free steady state.
func TestCodecAllocsPinned(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc pinning is meaningless under the race detector")
	}
	payload := []byte("0123456789abcdef")
	avg := testing.AllocsPerRun(200, func() {
		e := GetEncoder()
		e.Uint64(42)
		e.BytesField(payload)
		d := GetDecoder(e.Bytes())
		_ = d.Uint64()
		_ = d.BytesField()
		if err := d.Finish(); err != nil {
			t.Fatal(err)
		}
		PutDecoder(d)
		PutEncoder(e)
	})
	if avg > 0 {
		t.Fatalf("pooled codec round trip allocates %.1f times per op, want 0", avg)
	}
}
