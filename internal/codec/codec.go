// Package codec implements the compact binary wire format used by the
// mercury RPC layer for RPC headers and by components for their
// argument structures. It favours simplicity and zero external
// dependencies: little-endian fixed-width integers, unsigned varints
// for lengths, and length-prefixed byte strings.
//
// The format is the moral equivalent of Mercury's "hg_proc"
// serialization callbacks: each message type implements Marshal/
// Unmarshal in terms of an Encoder/Decoder pair.
package codec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrShortBuffer is returned when a Decoder runs out of input.
var ErrShortBuffer = errors.New("codec: short buffer")

// ErrOverflow is returned when a varint is malformed or a declared
// length exceeds the remaining input.
var ErrOverflow = errors.New("codec: length overflow")

// MaxStringLen bounds decoded string/byte lengths to protect against
// corrupt or hostile inputs declaring absurd allocations.
const MaxStringLen = 1 << 30

// Encoder appends primitive values to a byte buffer.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder writing into buf (may be nil).
func NewEncoder(buf []byte) *Encoder { return &Encoder{buf: buf[:0]} }

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of encoded bytes so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Reset clears the encoder for reuse, keeping the allocation.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

func (e *Encoder) Uint8(v uint8) { e.buf = append(e.buf, v) }

func (e *Encoder) Bool(v bool) {
	if v {
		e.Uint8(1)
	} else {
		e.Uint8(0)
	}
}
func (e *Encoder) Uint16(v uint16) {
	e.buf = binary.LittleEndian.AppendUint16(e.buf, v)
}
func (e *Encoder) Uint32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}
func (e *Encoder) Uint64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}
func (e *Encoder) Int64(v int64)     { e.Uint64(uint64(v)) }
func (e *Encoder) Float64(v float64) { e.Uint64(math.Float64bits(v)) }

// Uvarint appends v using unsigned LEB128.
func (e *Encoder) Uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

// Varint appends v using zig-zag LEB128.
func (e *Encoder) Varint(v int64) {
	e.buf = binary.AppendVarint(e.buf, v)
}

// Bytes appends a length-prefixed byte string.
func (e *Encoder) BytesField(b []byte) {
	e.Uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// StringSlice appends a count-prefixed slice of strings.
func (e *Encoder) StringSlice(ss []string) {
	e.Uvarint(uint64(len(ss)))
	for _, s := range ss {
		e.String(s)
	}
}

// Decoder consumes primitive values from a byte buffer.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder reading from buf.
func NewDecoder(buf []byte) *Decoder { return &Decoder{buf: buf} }

// Err returns the first error encountered, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining reports how many bytes are left.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) fail(err error) { //nolint:unparam
	if d.err == nil {
		d.err = err
	}
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.Remaining() < n {
		d.fail(ErrShortBuffer)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *Decoder) Uint8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *Decoder) Bool() bool { return d.Uint8() != 0 }

func (d *Decoder) Uint16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (d *Decoder) Uint32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *Decoder) Uint64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *Decoder) Int64() int64     { return int64(d.Uint64()) }
func (d *Decoder) Float64() float64 { return math.Float64frombits(d.Uint64()) }

func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail(ErrOverflow)
		return 0
	}
	d.off += n
	return v
}

func (d *Decoder) Varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail(ErrOverflow)
		return 0
	}
	d.off += n
	return v
}

// BytesField decodes a length-prefixed byte string. This is the
// zero-copy variant: the returned slice aliases the decoder's buffer,
// so it is valid exactly as long as the input buffer is — callers that
// retain it past the buffer's lifetime (see DESIGN.md "Hot-path memory
// discipline") must copy, e.g. with BytesFieldCopy.
func (d *Decoder) BytesField() []byte {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > MaxStringLen || n > uint64(d.Remaining()) {
		d.fail(ErrOverflow)
		return nil
	}
	return d.take(int(n))
}

// BytesFieldCopy decodes a length-prefixed byte string into freshly
// owned memory, safe to retain indefinitely.
func (d *Decoder) BytesFieldCopy() []byte {
	b := d.BytesField()
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// String decodes a length-prefixed string. Strings are immutable, so
// this always copies; use StringRef on hot paths where the result
// provably does not outlive the input buffer.
func (d *Decoder) String() string { return string(d.BytesField()) }

// StringRef decodes a length-prefixed string for transient use inside
// a single decode scope (map keys checked and dropped, comparisons).
// Under the mochi_unsafe build tag it is zero-copy: the returned
// string's bytes alias the decoder's buffer, and the caller must
// guarantee the buffer is neither mutated nor recycled while the
// string is live — violating this breaks Go's string immutability
// invariant. The default build copies, trading one allocation for
// immunity to lifetime bugs; both builds return byte-identical values
// (FuzzZeroCopyParity).
func (d *Decoder) StringRef() string {
	b := d.BytesField()
	if len(b) == 0 {
		return ""
	}
	return bytesToString(b)
}

// StringIntern decodes a length-prefixed string through the small-
// string intern table: repeated wire values (source addresses, RPC
// names, auth tokens) resolve to one shared owned copy, so the steady
// state allocates nothing. The result is always safe to retain — on an
// intern miss the string is copied before it is cached.
func (d *Decoder) StringIntern() string {
	b := d.BytesField()
	return Intern(b)
}

// StringSlice decodes a count-prefixed slice of strings.
func (d *Decoder) StringSlice() []string {
	n := d.Uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(d.Remaining()) { // each string needs ≥1 length byte
		d.fail(ErrOverflow)
		return nil
	}
	ss := make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		ss = append(ss, d.String())
		if d.err != nil {
			return nil
		}
	}
	return ss
}

// Finish reports an error if decoding failed or if input remains.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.Remaining() != 0 {
		return fmt.Errorf("codec: %d trailing bytes", d.Remaining())
	}
	return nil
}

// Marshaler is implemented by message types that serialize themselves.
type Marshaler interface {
	MarshalMochi(e *Encoder)
}

// Unmarshaler is implemented by message types that deserialize themselves.
type Unmarshaler interface {
	UnmarshalMochi(d *Decoder)
}

// Marshal encodes m into a fresh buffer.
func Marshal(m Marshaler) []byte {
	e := NewEncoder(nil)
	m.MarshalMochi(e)
	return e.Bytes()
}

// MarshalAppend encodes m appended to dst (which may be nil or a
// recycled scratch buffer) and returns the extended slice. It is the
// allocation-free Marshal: steady-state callers pass the previous
// result truncated with dst[:0].
func MarshalAppend(dst []byte, m Marshaler) []byte {
	e := Encoder{buf: dst}
	m.MarshalMochi(&e)
	return e.buf
}

// Unmarshal decodes buf into m, requiring full consumption.
func Unmarshal(buf []byte, m Unmarshaler) error {
	d := Decoder{buf: buf}
	m.UnmarshalMochi(&d)
	return d.Finish()
}
