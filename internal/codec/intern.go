// Small-string interning for the decode hot path. RPC traffic repeats
// the same few strings endlessly — source addresses ("tcp://host:port"),
// RPC names, auth tokens — and decoding each occurrence as string(b)
// costs one heap allocation per frame. The intern table resolves a
// byte window to a previously cached owned copy: a hit allocates
// nothing, a miss copies once and caches. The table is a fixed-size,
// lossy, lock-free cache (colliding entries overwrite), so it can
// never grow, never needs eviction, and a hostile peer flooding it
// with unique strings degrades it to plain string(b) — one copy per
// decode, exactly the cost without interning.
package codec

import "sync/atomic"

// internMaxLen bounds what gets cached: interning exists for short
// repeated identifiers, not payloads.
const internMaxLen = 64

// internSlots must be a power of two.
const internSlots = 1 << 9

var internTab [internSlots]atomic.Pointer[string]

// Intern returns a string equal to b, reusing a previously interned
// copy when one is cached. The result is always an owned string, safe
// to retain indefinitely.
func Intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if len(b) > internMaxLen {
		return string(b)
	}
	slot := &internTab[internHash(b)&(internSlots-1)]
	if p := slot.Load(); p != nil && stringEqBytes(*p, b) {
		return *p
	}
	s := string(b)
	slot.Store(&s)
	return s
}

// internHash is FNV-1a over b.
func internHash(b []byte) uint32 {
	h := uint32(2166136261)
	for _, c := range b {
		h ^= uint32(c)
		h *= 16777619
	}
	return h
}

// stringEqBytes compares without converting (no allocation either way).
func stringEqBytes(s string, b []byte) bool {
	if len(s) != len(b) {
		return false
	}
	for i := 0; i < len(b); i++ {
		if s[i] != b[i] {
			return false
		}
	}
	return true
}
