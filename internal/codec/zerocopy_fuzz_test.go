package codec

import "testing"

// FuzzZeroCopyParity is the differential proof behind the mochi_unsafe
// build tag: for arbitrary input bytes, the fast-path string accessors
// (StringRef, StringIntern) must return values byte-identical to the
// always-safe reference decode (String), and both decoders must agree
// on the error state. Running this target under both the default and
// the mochi_unsafe build (make fuzz, CI's mochi_unsafe leg) pins the
// two implementations to one observable behavior.
func FuzzZeroCopyParity(f *testing.F) {
	seed := NewEncoder(nil)
	seed.String("tcp://127.0.0.1:4242")
	seed.String("")
	seed.String("forward")
	f.Add(append([]byte(nil), seed.Bytes()...))
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0x05, 'x'}) // declared 5 bytes, only 1 present
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		fast := NewDecoder(data)
		intern := NewDecoder(data)
		ref := NewDecoder(data)
		// Decode the whole buffer as a string sequence through all
		// three paths in lockstep.
		for i := 0; i < 64; i++ {
			fs := fast.StringRef()
			is := intern.StringIntern()
			rs := ref.String()
			if fs != rs {
				t.Fatalf("op %d: StringRef %q != String %q (ZeroCopyStrings=%v)", i, fs, rs, ZeroCopyStrings)
			}
			if is != rs {
				t.Fatalf("op %d: StringIntern %q != String %q", i, is, rs)
			}
			if (fast.Err() == nil) != (ref.Err() == nil) || (intern.Err() == nil) != (ref.Err() == nil) {
				t.Fatalf("op %d: error state diverged: fast=%v intern=%v ref=%v", i, fast.Err(), intern.Err(), ref.Err())
			}
			if ref.Err() != nil || ref.Remaining() == 0 {
				break
			}
		}
		if fast.Remaining() != ref.Remaining() || intern.Remaining() != ref.Remaining() {
			t.Fatalf("offsets diverged: fast=%d intern=%d ref=%d", fast.Remaining(), intern.Remaining(), ref.Remaining())
		}
	})
}
