package codec

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestRoundTripPrimitives(t *testing.T) {
	e := NewEncoder(nil)
	e.Uint8(0xAB)
	e.Bool(true)
	e.Bool(false)
	e.Uint16(0xBEEF)
	e.Uint32(0xDEADBEEF)
	e.Uint64(0x0123456789ABCDEF)
	e.Int64(-42)
	e.Float64(3.14159)
	e.Uvarint(1 << 40)
	e.Varint(-(1 << 33))
	e.String("hello mochi")
	e.BytesField([]byte{1, 2, 3})
	e.StringSlice([]string{"a", "", "ccc"})

	d := NewDecoder(e.Bytes())
	if got := d.Uint8(); got != 0xAB {
		t.Errorf("Uint8 = %#x", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("Bool round trip failed")
	}
	if got := d.Uint16(); got != 0xBEEF {
		t.Errorf("Uint16 = %#x", got)
	}
	if got := d.Uint32(); got != 0xDEADBEEF {
		t.Errorf("Uint32 = %#x", got)
	}
	if got := d.Uint64(); got != 0x0123456789ABCDEF {
		t.Errorf("Uint64 = %#x", got)
	}
	if got := d.Int64(); got != -42 {
		t.Errorf("Int64 = %d", got)
	}
	if got := d.Float64(); got != 3.14159 {
		t.Errorf("Float64 = %v", got)
	}
	if got := d.Uvarint(); got != 1<<40 {
		t.Errorf("Uvarint = %d", got)
	}
	if got := d.Varint(); got != -(1 << 33) {
		t.Errorf("Varint = %d", got)
	}
	if got := d.String(); got != "hello mochi" {
		t.Errorf("String = %q", got)
	}
	if got := d.BytesField(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Bytes = %v", got)
	}
	ss := d.StringSlice()
	if len(ss) != 3 || ss[0] != "a" || ss[1] != "" || ss[2] != "ccc" {
		t.Errorf("StringSlice = %v", ss)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestFloat64SpecialValues(t *testing.T) {
	for _, v := range []float64{0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1), math.MaxFloat64, math.SmallestNonzeroFloat64} {
		e := NewEncoder(nil)
		e.Float64(v)
		d := NewDecoder(e.Bytes())
		if got := d.Float64(); got != v {
			t.Errorf("Float64(%v) = %v", v, got)
		}
	}
	// NaN round trips to NaN (not equal to itself).
	e := NewEncoder(nil)
	e.Float64(math.NaN())
	if got := NewDecoder(e.Bytes()).Float64(); !math.IsNaN(got) {
		t.Errorf("NaN decoded as %v", got)
	}
}

func TestShortBufferErrors(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	d.Uint32()
	if d.Err() != ErrShortBuffer {
		t.Fatalf("err = %v, want ErrShortBuffer", d.Err())
	}
	// After an error every read returns a zero value and keeps the error.
	if d.Uint64() != 0 || d.Err() != ErrShortBuffer {
		t.Fatal("decoder did not stay failed")
	}
}

func TestCorruptLengthPrefix(t *testing.T) {
	e := NewEncoder(nil)
	e.Uvarint(1 << 62) // declares a ridiculous string length
	d := NewDecoder(e.Bytes())
	if d.BytesField() != nil || d.Err() != ErrOverflow {
		t.Fatalf("want ErrOverflow, got %v", d.Err())
	}
}

func TestCorruptStringSliceCount(t *testing.T) {
	e := NewEncoder(nil)
	e.Uvarint(1 << 50)
	d := NewDecoder(e.Bytes())
	if d.StringSlice() != nil || d.Err() != ErrOverflow {
		t.Fatalf("want ErrOverflow, got %v", d.Err())
	}
}

func TestTrailingBytesDetected(t *testing.T) {
	e := NewEncoder(nil)
	e.Uint8(1)
	e.Uint8(2)
	d := NewDecoder(e.Bytes())
	d.Uint8()
	if err := d.Finish(); err == nil {
		t.Fatal("Finish accepted trailing bytes")
	}
}

func TestEncoderReset(t *testing.T) {
	e := NewEncoder(nil)
	e.Uint64(7)
	e.Reset()
	if e.Len() != 0 {
		t.Fatalf("Len after Reset = %d", e.Len())
	}
	e.Uint8(9)
	if e.Len() != 1 {
		t.Fatalf("Len = %d, want 1", e.Len())
	}
}

func TestEmptyVarintInput(t *testing.T) {
	d := NewDecoder(nil)
	d.Uvarint()
	if d.Err() != ErrOverflow {
		t.Fatalf("err = %v", d.Err())
	}
}

// Property: any (uint64, int64, string, []byte) tuple round-trips.
func TestQuickRoundTrip(t *testing.T) {
	f := func(u uint64, i int64, s string, b []byte, f64 float64, ss []string) bool {
		e := NewEncoder(nil)
		e.Uvarint(u)
		e.Varint(i)
		e.String(s)
		e.BytesField(b)
		e.Float64(f64)
		e.StringSlice(ss)
		d := NewDecoder(e.Bytes())
		gu := d.Uvarint()
		gi := d.Varint()
		gs := d.String()
		gb := d.BytesField()
		gf := d.Float64()
		gss := d.StringSlice()
		if err := d.Finish(); err != nil {
			return false
		}
		if gu != u || gi != i || gs != s || !bytes.Equal(gb, b) {
			return false
		}
		if gf != f64 && !(math.IsNaN(gf) && math.IsNaN(f64)) {
			return false
		}
		if len(gss) != len(ss) {
			return false
		}
		for k := range ss {
			if gss[k] != ss[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: the decoder never panics on arbitrary input.
func TestQuickDecoderRobustness(t *testing.T) {
	f := func(input []byte) bool {
		d := NewDecoder(input)
		d.Uvarint()
		_ = d.String()
		d.StringSlice()
		d.Uint64()
		d.BytesField()
		_ = d.Finish()
		return true // reaching here without panic is the property
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

type wirePair struct {
	Name string
	N    uint64
}

func (w *wirePair) MarshalMochi(e *Encoder) {
	e.String(w.Name)
	e.Uvarint(w.N)
}

func (w *wirePair) UnmarshalMochi(d *Decoder) {
	w.Name = d.String()
	w.N = d.Uvarint()
}

func TestMarshalUnmarshalHelpers(t *testing.T) {
	in := &wirePair{Name: "pool", N: 99}
	buf := Marshal(in)
	var out wirePair
	if err := Unmarshal(buf, &out); err != nil {
		t.Fatal(err)
	}
	if out != *in {
		t.Fatalf("round trip = %+v, want %+v", out, *in)
	}
	if err := Unmarshal(append(buf, 0), &out); err == nil {
		t.Fatal("Unmarshal accepted trailing data")
	}
}

func BenchmarkEncodeSmallMessage(b *testing.B) {
	e := NewEncoder(make([]byte, 0, 64))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Reset()
		e.Uint64(uint64(i))
		e.String("echo")
		e.Uvarint(42)
	}
}

func BenchmarkDecodeSmallMessage(b *testing.B) {
	e := NewEncoder(nil)
	e.Uint64(7)
	e.String("echo")
	e.Uvarint(42)
	buf := e.Bytes()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := NewDecoder(buf)
		d.Uint64()
		_ = d.String()
		d.Uvarint()
	}
}
