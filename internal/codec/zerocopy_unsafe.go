//go:build mochi_unsafe

package codec

import "unsafe"

// ZeroCopyStrings reports whether the unsafe string fast path is
// compiled in (build tag mochi_unsafe). In this build StringRef
// returns a string whose bytes alias the decoder's buffer — zero
// allocation, zero copy — which is only sound under the documented
// contract: the buffer must outlive the string and never be mutated
// while it is live. The two paths are byte-identical on every input;
// FuzzZeroCopyParity proves it.
const ZeroCopyStrings = true

// bytesToString reinterprets b as a string without copying, in the
// spirit of go-msgpack's stringView. The caller inherits b's lifetime:
// recycling or mutating b while the string is reachable breaks Go's
// string immutability invariant.
func bytesToString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}
