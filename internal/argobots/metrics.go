package argobots

import "mochi/internal/metrics"

// RegisterMetrics exposes the runtime's live topology as callback
// gauges on reg: per-pool queue depth and ULT throughput, per-xstream
// throughput, and the current pool/xstream counts. Callback collectors
// are evaluated at scrape time, so pools and xstreams added or removed
// by online reconfiguration (§5) appear and disappear from the next
// scrape on — no re-registration needed.
func (r *Runtime) RegisterMetrics(reg *metrics.Registry) {
	reg.GaugeFunc("mochi_pool_depth",
		"ULTs queued (not yet running) per argobots pool.",
		[]string{"pool"}, func() []metrics.Sample {
			out := make([]metrics.Sample, 0, 4)
			for _, name := range r.PoolNames() {
				if p, ok := r.FindPool(name); ok {
					out = append(out, metrics.Sample{LabelValues: []string{name}, Value: float64(p.Len())})
				}
			}
			return out
		})
	reg.CounterFunc("mochi_pool_ults_executed_total",
		"ULTs handed to xstreams per argobots pool.",
		[]string{"pool"}, func() []metrics.Sample {
			out := make([]metrics.Sample, 0, 4)
			for _, name := range r.PoolNames() {
				if p, ok := r.FindPool(name); ok {
					out = append(out, metrics.Sample{LabelValues: []string{name}, Value: float64(p.Executed())})
				}
			}
			return out
		})
	reg.CounterFunc("mochi_xstream_ults_executed_total",
		"ULTs completed per execution stream.",
		[]string{"xstream"}, func() []metrics.Sample {
			out := make([]metrics.Sample, 0, 4)
			for _, name := range r.XstreamNames() {
				if x, ok := r.FindXstream(name); ok {
					out = append(out, metrics.Sample{LabelValues: []string{name}, Value: float64(x.Executed())})
				}
			}
			return out
		})
	reg.GaugeFunc("mochi_pools",
		"Number of argobots pools in the runtime.",
		nil, func() []metrics.Sample {
			return []metrics.Sample{{Value: float64(len(r.PoolNames()))}}
		})
	reg.GaugeFunc("mochi_xstreams",
		"Number of execution streams in the runtime.",
		nil, func() []metrics.Sample {
			return []metrics.Sample{{Value: float64(len(r.XstreamNames()))}}
		})
}

// EnableWaitSampling turns on per-pool ULT queue-wait histograms
// (mochi_pool_wait_seconds{pool}) for every current pool and every
// pool added later. It is the config-gated profiling leg: with it off
// (the default) the pool hot path never reads the clock; with it on,
// each enqueue stamps a timestamp and each pop records the wait —
// exactly the distribution an xstream/pool reconfiguration decision
// needs to distinguish "queue is deep" from "queue drains fast".
func (r *Runtime) EnableWaitSampling(reg *metrics.Registry) {
	vec := reg.Histogram("mochi_pool_wait_seconds",
		"Time a ULT waited in its pool between submission and execution start.",
		metrics.LatencyBuckets, "pool")
	r.mu.Lock()
	r.waitVec = vec
	for name, p := range r.pools {
		p.SetWaitHistogram(vec.With(name))
	}
	r.mu.Unlock()
}
