package argobots

import (
	"sync"
	"sync/atomic"
	"time"
)

// SchedKind selects an xstream's scheduling policy across its pools.
type SchedKind string

const (
	// SchedBasic round-robins across pools, yielding briefly when all
	// are empty (Argobots' "basic").
	SchedBasic SchedKind = "basic"
	// SchedBasicWait round-robins across pools and blocks while all
	// are empty (Argobots' "basic_wait", Margo's default).
	SchedBasicWait SchedKind = "basic_wait"
)

// Xstream is an execution stream: the analogue of an OS thread bound
// to a scheduler that pulls ULTs from an ordered list of pools
// (paper Figure 2, "ES 0 ... ES 1").
type Xstream struct {
	name  string
	sched SchedKind

	mu    sync.Mutex
	pools []*Pool

	wake    chan struct{}
	stop    chan struct{}
	stopped chan struct{}
	once    sync.Once

	executed atomic.Uint64
	running  atomic.Bool
}

func newXstream(name string, sched SchedKind, pools []*Pool) *Xstream {
	x := &Xstream{
		name:    name,
		sched:   sched,
		pools:   pools,
		wake:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
		stopped: make(chan struct{}),
	}
	for _, p := range pools {
		p.Retain()
		p.addWaiter(x.wake)
	}
	return x
}

// Name returns the xstream's name.
func (x *Xstream) Name() string { return x.name }

// Sched returns the scheduler kind.
func (x *Xstream) Sched() SchedKind { return x.sched }

// Pools returns the pools this xstream drains, in scheduling order.
func (x *Xstream) Pools() []*Pool {
	x.mu.Lock()
	defer x.mu.Unlock()
	return append([]*Pool(nil), x.pools...)
}

// Executed reports how many ULTs this xstream has run.
func (x *Xstream) Executed() uint64 { return x.executed.Load() }

// Running reports whether the xstream's scheduler loop is live.
func (x *Xstream) Running() bool { return x.running.Load() }

func (x *Xstream) start() {
	x.running.Store(true)
	go x.loop()
}

func (x *Xstream) loop() {
	defer close(x.stopped)
	defer x.running.Store(false)
	for {
		select {
		case <-x.stop:
			return
		default:
		}
		ran := false
		x.mu.Lock()
		pools := x.pools
		x.mu.Unlock()
		for _, p := range pools {
			if it, ok := p.tryPop(); ok {
				x.run(it)
				ran = true
			}
		}
		if ran {
			continue
		}
		switch x.sched {
		case SchedBasicWait:
			select {
			case <-x.wake:
			case <-x.stop:
				return
			}
		default:
			select {
			case <-x.wake:
			case <-time.After(200 * time.Microsecond):
			case <-x.stop:
				return
			}
		}
	}
}

func (x *Xstream) run(it poolItem) {
	defer func() {
		// A panicking ULT must not take down the whole xstream; this
		// mirrors how a segfaulting ULT would be isolated in tests.
		if r := recover(); r != nil && it.th != nil {
			close(it.th.done)
		}
	}()
	it.fn()
	x.executed.Add(1)
	if it.th != nil { // Submit-ed ULTs have no join handle
		close(it.th.done)
	}
}

// Stop terminates the scheduler loop and waits for the in-flight ULT
// (if any) to finish. Queued ULTs remain in the pools for other
// xstreams to drain.
func (x *Xstream) Stop() {
	x.once.Do(func() { close(x.stop) })
	<-x.stopped
	x.mu.Lock()
	pools := x.pools
	x.pools = nil
	x.mu.Unlock()
	for _, p := range pools {
		p.removeWaiter(x.wake)
		p.Release()
	}
}
