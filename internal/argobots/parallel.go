package argobots

import (
	"sync"
	"sync/atomic"
)

// ParallelDo executes every fn and returns when all have finished,
// using the pool's xstreams for parallelism when they have spare
// capacity. It is safe to call from a ULT running on p itself: tasks
// are claimed with a CAS before execution and the caller loops over
// the task list claiming whatever no xstream has picked up yet, so a
// saturated (or single-xstream) pool degrades to inline sequential
// execution instead of deadlocking on its own queue.
func (p *Pool) ParallelDo(fns ...ULT) {
	switch len(fns) {
	case 0:
		return
	case 1:
		fns[0]()
		return
	}
	var (
		claimed = make([]atomic.Bool, len(fns))
		wg      sync.WaitGroup // counts executions, not queue slots
	)
	wg.Add(len(fns))
	run := func(i int) {
		if claimed[i].CompareAndSwap(false, true) {
			defer wg.Done()
			fns[i]()
		}
	}
	if p != nil {
		for i := 1; i < len(fns); i++ {
			i := i
			// A closed pool just means everything runs on the caller.
			if err := p.Submit(func() { run(i) }); err != nil {
				break
			}
		}
	}
	// Run the first task here, then steal back anything still queued.
	run(0)
	for i := 1; i < len(fns); i++ {
		run(i)
	}
	wg.Wait()
}
