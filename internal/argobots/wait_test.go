package argobots

import (
	"testing"
	"time"

	"mochi/internal/metrics"
)

// TestPoolWaitSampling checks the config-gated queue-wait histogram:
// off by default (no samples), populated once enabled, and applied to
// pools added after EnableWaitSampling (online reconfiguration adds
// pools at run time).
func TestPoolWaitSampling(t *testing.T) {
	rt, err := NewRuntime(Config{
		Pools:    []PoolConfig{{Name: "p0", Kind: "fifo_wait"}},
		Xstreams: []XstreamConfig{{Name: "x0", Scheduler: SchedConfig{Pools: []string{"p0"}}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Stop()
	p0, _ := rt.FindPool("p0")

	run := func(p *Pool) {
		th, err := p.Push(func() { time.Sleep(time.Millisecond) })
		if err != nil {
			t.Fatal(err)
		}
		th.Join()
	}
	run(p0)

	reg := metrics.NewRegistry()
	rt.EnableWaitSampling(reg)
	run(p0)

	// A pool added after enabling must be sampled too.
	p1, err := rt.AddPool(PoolConfig{Name: "p1", Kind: "fifo_wait"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.AddXstream(XstreamConfig{Name: "x1", Scheduler: SchedConfig{Pools: []string{"p1"}}}); err != nil {
		t.Fatal(err)
	}
	run(p1)

	counts := map[string]uint64{}
	for _, f := range reg.Snapshot() {
		if f.Name != "mochi_pool_wait_seconds" {
			continue
		}
		for _, s := range f.Series {
			counts[s.LabelValues[0]] = s.Hist.Count
		}
	}
	// p0 ran twice but only the post-enable ULT is stamped.
	if counts["p0"] != 1 {
		t.Fatalf("p0 wait samples: want 1 (pre-enable ULT unsampled), got %d", counts["p0"])
	}
	if counts["p1"] != 1 {
		t.Fatalf("p1 wait samples: want 1, got %d", counts["p1"])
	}
}
