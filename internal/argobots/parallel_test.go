package argobots

import (
	"sync/atomic"
	"testing"
	"time"
)

func parallelRuntime(t *testing.T, xstreams int) (*Runtime, *Pool) {
	t.Helper()
	cfg := Config{
		Pools: []PoolConfig{{Name: "p", Kind: string(PoolFIFOWait), Access: string(AccessMPMC)}},
	}
	for i := 0; i < xstreams; i++ {
		cfg.Xstreams = append(cfg.Xstreams, XstreamConfig{
			Name:      "es" + string(rune('0'+i)),
			Scheduler: SchedConfig{Kind: string(SchedBasicWait), Pools: []string{"p"}},
		})
	}
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Stop)
	p, ok := rt.FindPool("p")
	if !ok {
		t.Fatal("pool p missing")
	}
	return rt, p
}

// TestParallelDoRunsEachOnce checks the claim-steal contract: every
// task runs exactly once whether the pool helps or the caller steals
// everything back.
func TestParallelDoRunsEachOnce(t *testing.T) {
	_, pool := parallelRuntime(t, 4)
	for _, p := range []*Pool{nil, pool} {
		var counts [40]atomic.Int32
		fns := make([]ULT, len(counts))
		for i := range fns {
			i := i
			fns[i] = func() { counts[i].Add(1) }
		}
		p.ParallelDo(fns...)
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("pool=%v: task %d ran %d times", p != nil, i, got)
			}
		}
	}
	// Degenerate arities.
	pool.ParallelDo()
	ran := false
	pool.ParallelDo(func() { ran = true })
	if !ran {
		t.Fatal("single-task ParallelDo did not run inline")
	}
}

// TestParallelDoFromPoolULT is the deadlock regression: a ULT already
// running on a single-xstream pool fans out on that same pool. The
// caller must steal the work back instead of waiting for an executor
// that is itself.
func TestParallelDoFromPoolULT(t *testing.T) {
	_, pool := parallelRuntime(t, 1)
	done := make(chan struct{})
	if err := pool.Submit(func() {
		var n atomic.Int32
		fns := make([]ULT, 8)
		for i := range fns {
			fns[i] = func() { n.Add(1) }
		}
		pool.ParallelDo(fns...)
		if n.Load() == 8 {
			close(done)
		}
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("ParallelDo deadlocked when fanning out on its own single-xstream pool")
	}
}

// TestParallelDoActuallyParallel proves the fan-out overlaps: with
// four xstreams, tasks that each block on a shared rendezvous can only
// finish if several run at once.
func TestParallelDoActuallyParallel(t *testing.T) {
	_, pool := parallelRuntime(t, 4)
	const n = 3
	arrived := make(chan struct{}, n)
	release := make(chan struct{})
	fns := make([]ULT, n)
	for i := range fns {
		fns[i] = func() {
			arrived <- struct{}{}
			<-release
		}
	}
	go func() {
		for i := 0; i < n; i++ {
			select {
			case <-arrived:
			case <-time.After(5 * time.Second):
				return // ParallelDo will hang; the test times out below
			}
		}
		close(release)
	}()
	done := make(chan struct{})
	go func() { pool.ParallelDo(fns...); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("tasks did not run concurrently across xstreams")
	}
}
