package argobots

import (
	"fmt"
	"sort"
	"sync"

	"mochi/internal/metrics"
)

// PoolConfig describes one pool (Listing 2's "pools" entries).
type PoolConfig struct {
	Name   string `json:"name"`
	Kind   string `json:"type"`
	Access string `json:"access,omitempty"`
}

// SchedConfig describes an xstream's scheduler.
type SchedConfig struct {
	Kind  string   `json:"type"`
	Pools []string `json:"pools"`
}

// XstreamConfig describes one execution stream (Listing 2's
// "xstreams" entries).
type XstreamConfig struct {
	Name      string      `json:"name"`
	Scheduler SchedConfig `json:"scheduler"`
}

// Config is the full argobots section of a Margo configuration.
type Config struct {
	Pools    []PoolConfig    `json:"pools"`
	Xstreams []XstreamConfig `json:"xstreams"`
}

// Runtime owns the live pool/xstream topology of one process and
// enforces the validity rules the paper assigns to Margo (§5):
// unique names, no removal of pools still referenced by an xstream or
// provider.
type Runtime struct {
	mu       sync.RWMutex
	pools    map[string]*Pool
	xstreams map[string]*Xstream
	stopped  bool
	// waitVec, when set by EnableWaitSampling, supplies the queue-wait
	// histogram for every pool, including pools added afterwards.
	waitVec *metrics.HistogramVec
}

// NewRuntime builds a runtime from a configuration, creating and
// starting every pool and xstream.
func NewRuntime(cfg Config) (*Runtime, error) {
	r := &Runtime{
		pools:    map[string]*Pool{},
		xstreams: map[string]*Xstream{},
	}
	for _, pc := range cfg.Pools {
		if _, err := r.AddPool(pc); err != nil {
			r.Stop()
			return nil, err
		}
	}
	for _, xc := range cfg.Xstreams {
		if _, err := r.AddXstream(xc); err != nil {
			r.Stop()
			return nil, err
		}
	}
	return r, nil
}

func normalizeKind(k string) (PoolKind, error) {
	switch PoolKind(k) {
	case "", PoolFIFOWait:
		return PoolFIFOWait, nil
	case PoolFIFO:
		return PoolFIFO, nil
	case PoolPrio:
		return PoolPrio, nil
	}
	return "", fmt.Errorf("%w: unknown pool type %q", ErrBadConfig, k)
}

func normalizeAccess(a string) (Access, error) {
	switch Access(a) {
	case "", AccessMPMC:
		return AccessMPMC, nil
	case AccessSPSC, AccessMPSC, AccessSPMC:
		return Access(a), nil
	}
	return "", fmt.Errorf("%w: unknown access mode %q", ErrBadConfig, a)
}

// AddPool creates a pool at run time (margo_add_pool_from_json).
func (r *Runtime) AddPool(pc PoolConfig) (*Pool, error) {
	if pc.Name == "" {
		return nil, fmt.Errorf("%w: pool needs a name", ErrBadConfig)
	}
	kind, err := normalizeKind(pc.Kind)
	if err != nil {
		return nil, err
	}
	access, err := normalizeAccess(pc.Access)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stopped {
		return nil, ErrStopped
	}
	if _, ok := r.pools[pc.Name]; ok {
		return nil, fmt.Errorf("%w: pool %q", ErrDuplicate, pc.Name)
	}
	p := NewPool(pc.Name, kind, access)
	if r.waitVec != nil {
		p.SetWaitHistogram(r.waitVec.With(pc.Name))
	}
	r.pools[pc.Name] = p
	return p, nil
}

// FindPool returns the named pool (margo_find_pool_by_name).
func (r *Runtime) FindPool(name string) (*Pool, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.pools[name]
	return p, ok
}

// RemovePool deletes an unreferenced pool. It fails with ErrPoolInUse
// while any xstream schedules from it or any provider retains it —
// the validity check the paper requires of Margo.
func (r *Runtime) RemovePool(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.pools[name]
	if !ok {
		return fmt.Errorf("%w: pool %q", ErrNotFound, name)
	}
	if p.Refs() > 0 {
		return fmt.Errorf("%w: pool %q has %d references", ErrPoolInUse, name, p.Refs())
	}
	p.Close()
	delete(r.pools, name)
	return nil
}

// AddXstream creates and starts an execution stream at run time.
func (r *Runtime) AddXstream(xc XstreamConfig) (*Xstream, error) {
	if xc.Name == "" {
		return nil, fmt.Errorf("%w: xstream needs a name", ErrBadConfig)
	}
	switch SchedKind(xc.Scheduler.Kind) {
	case SchedBasic, SchedBasicWait:
	case "":
		xc.Scheduler.Kind = string(SchedBasicWait)
	default:
		return nil, fmt.Errorf("%w: unknown scheduler %q", ErrBadConfig, xc.Scheduler.Kind)
	}
	if len(xc.Scheduler.Pools) == 0 {
		return nil, fmt.Errorf("%w: xstream %q schedules no pools", ErrBadConfig, xc.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.stopped {
		return nil, ErrStopped
	}
	if _, ok := r.xstreams[xc.Name]; ok {
		return nil, fmt.Errorf("%w: xstream %q", ErrDuplicate, xc.Name)
	}
	pools := make([]*Pool, 0, len(xc.Scheduler.Pools))
	for _, pn := range xc.Scheduler.Pools {
		p, ok := r.pools[pn]
		if !ok {
			return nil, fmt.Errorf("%w: pool %q for xstream %q", ErrNotFound, pn, xc.Name)
		}
		pools = append(pools, p)
	}
	x := newXstream(xc.Name, SchedKind(xc.Scheduler.Kind), pools)
	r.xstreams[xc.Name] = x
	x.start()
	return x, nil
}

// FindXstream returns the named xstream.
func (r *Runtime) FindXstream(name string) (*Xstream, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	x, ok := r.xstreams[name]
	return x, ok
}

// RemoveXstream stops and deletes an execution stream. Queued ULTs
// remain in its pools; removing the only xstream of a non-empty pool
// is refused so work cannot be stranded silently.
func (r *Runtime) RemoveXstream(name string) error {
	r.mu.Lock()
	x, ok := r.xstreams[name]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: xstream %q", ErrNotFound, name)
	}
	// Refuse if this is the sole consumer of any pool that still has
	// pending work or provider references.
	for _, p := range x.Pools() {
		if r.consumersLocked(p) == 1 && (p.Len() > 0 || p.Refs() > 1) {
			r.mu.Unlock()
			return fmt.Errorf("%w: xstream %q is the only consumer of pool %q", ErrPoolInUse, name, p.Name())
		}
	}
	delete(r.xstreams, name)
	r.mu.Unlock()
	x.Stop()
	return nil
}

func (r *Runtime) consumersLocked(p *Pool) int {
	n := 0
	for _, x := range r.xstreams {
		for _, xp := range x.Pools() {
			if xp == p {
				n++
				break
			}
		}
	}
	return n
}

// PoolNames returns the sorted names of all pools.
func (r *Runtime) PoolNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.pools))
	for n := range r.pools {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// XstreamNames returns the sorted names of all xstreams.
func (r *Runtime) XstreamNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.xstreams))
	for n := range r.xstreams {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Snapshot returns the current configuration, suitable for JSON
// round-tripping (the paper's requirement that a running process can
// always report its live topology).
func (r *Runtime) Snapshot() Config {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var cfg Config
	names := make([]string, 0, len(r.pools))
	for n := range r.pools {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		p := r.pools[n]
		cfg.Pools = append(cfg.Pools, PoolConfig{Name: p.Name(), Kind: string(p.Kind()), Access: string(p.Access())})
	}
	xnames := make([]string, 0, len(r.xstreams))
	for n := range r.xstreams {
		xnames = append(xnames, n)
	}
	sort.Strings(xnames)
	for _, n := range xnames {
		x := r.xstreams[n]
		var pools []string
		for _, p := range x.Pools() {
			pools = append(pools, p.Name())
		}
		cfg.Xstreams = append(cfg.Xstreams, XstreamConfig{
			Name:      x.Name(),
			Scheduler: SchedConfig{Kind: string(x.Sched()), Pools: pools},
		})
	}
	return cfg
}

// Stop shuts down all xstreams and closes all pools.
func (r *Runtime) Stop() {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.stopped = true
	xs := make([]*Xstream, 0, len(r.xstreams))
	for _, x := range r.xstreams {
		xs = append(xs, x)
	}
	ps := make([]*Pool, 0, len(r.pools))
	for _, p := range r.pools {
		ps = append(ps, p)
	}
	r.xstreams = map[string]*Xstream{}
	r.pools = map[string]*Pool{}
	r.mu.Unlock()
	for _, p := range ps {
		p.Close()
	}
	for _, x := range xs {
		x.Stop()
	}
}
