// Package argobots provides the user-level-threading runtime shared by
// all providers in a process (paper §3.2, Figure 2): work queues
// (pools) holding user-level threads (ULTs), and execution streams
// (xstreams) that drain them. The dynamic topology — which pools
// exist, which xstreams drain which pools — is exactly what the
// paper's online-reconfiguration requirement (§5, Observation 2)
// manipulates at run time.
//
// ULTs are Go closures executed by xstream worker goroutines. This
// preserves the properties the paper's methodology depends on (pool
// topology, submission routing, dynamic add/remove, introspection of
// queue depths) without reimplementing C-level context switching.
package argobots

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mochi/internal/metrics"
)

// Errors returned by the runtime.
var (
	ErrPoolClosed = errors.New("argobots: pool closed")
	ErrDuplicate  = errors.New("argobots: duplicate name")
	ErrNotFound   = errors.New("argobots: not found")
	ErrPoolInUse  = errors.New("argobots: pool in use")
	ErrBadConfig  = errors.New("argobots: invalid configuration")
	ErrStopped    = errors.New("argobots: runtime stopped")
)

// PoolKind selects the queue discipline.
type PoolKind string

const (
	// PoolFIFO is a plain FIFO queue; idle xstreams spin-poll it.
	PoolFIFO PoolKind = "fifo"
	// PoolFIFOWait is a FIFO queue whose consumers block until work
	// arrives (Argobots' fifo_wait, the common Margo choice).
	PoolFIFOWait PoolKind = "fifo_wait"
	// PoolPrio is a two-level queue: high-priority ULTs run first.
	PoolPrio PoolKind = "prio_wait"
)

// Access declares the producer/consumer concurrency of a pool
// (Argobots access modes). All pools here are implemented safely for
// mpmc; the declared mode is kept for configuration fidelity and
// introspection.
type Access string

const (
	AccessMPMC Access = "mpmc"
	AccessSPSC Access = "spsc"
	AccessMPSC Access = "mpsc"
	AccessSPMC Access = "spmc"
)

// ULT is a unit of work (user-level thread body).
type ULT func()

// Thread is the handle of a submitted ULT.
type Thread struct {
	done chan struct{}
}

// Join blocks until the ULT has finished executing.
func (t *Thread) Join() { <-t.done }

// Done returns a channel closed when the ULT finishes.
func (t *Thread) Done() <-chan struct{} { return t.done }

type poolItem struct {
	fn   ULT
	th   *Thread
	prio bool
	// at is the enqueue time, stamped only while wait sampling is
	// enabled (observability profiling); zero otherwise so the default
	// hot path never reads the clock.
	at time.Time
}

// Pool is a queue of ULTs drained by zero or more xstreams.
type Pool struct {
	name   string
	kind   PoolKind
	access Access

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []poolItem
	head   int // index of the next item in queue
	prioQ  []poolItem
	prioHd int // index of the next item in prioQ
	closed bool

	executed atomic.Uint64
	// refs counts external users (providers, xstreams) registered via
	// Retain/Release; the runtime refuses to remove referenced pools.
	refs atomic.Int64
	// wait, when set, receives each ULT's queue-wait time (seconds,
	// enqueue to pop). Nil by default: one atomic load per enqueue/pop
	// and nothing else — reconfiguration decisions about xstream
	// counts want this distribution, but only on request.
	wait atomic.Pointer[metrics.Histogram]

	waiterMu sync.Mutex
	waiters  []chan struct{}
}

// addWaiter registers a channel to be signalled (non-blocking) when
// work arrives; xstreams use this to sleep across multiple pools.
func (p *Pool) addWaiter(ch chan struct{}) {
	p.waiterMu.Lock()
	p.waiters = append(p.waiters, ch)
	p.waiterMu.Unlock()
}

func (p *Pool) removeWaiter(ch chan struct{}) {
	p.waiterMu.Lock()
	for i, w := range p.waiters {
		if w == ch {
			p.waiters = append(p.waiters[:i], p.waiters[i+1:]...)
			break
		}
	}
	p.waiterMu.Unlock()
}

func (p *Pool) notifyWaiters() {
	p.waiterMu.Lock()
	for _, w := range p.waiters {
		select {
		case w <- struct{}{}:
		default:
		}
	}
	p.waiterMu.Unlock()
}

// NewPool creates a standalone pool (runtimes normally create pools
// via Runtime.AddPool).
func NewPool(name string, kind PoolKind, access Access) *Pool {
	p := &Pool{name: name, kind: kind, access: access}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Name returns the pool's name.
func (p *Pool) Name() string { return p.name }

// Kind returns the queue discipline.
func (p *Pool) Kind() PoolKind { return p.kind }

// Access returns the declared access mode.
func (p *Pool) Access() Access { return p.access }

// Len reports the number of queued (not yet running) ULTs; the margo
// monitor samples this for the paper's §4 pool-size statistics.
func (p *Pool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return (len(p.queue) - p.head) + (len(p.prioQ) - p.prioHd)
}

// Executed reports how many ULTs this pool has handed to xstreams.
func (p *Pool) Executed() uint64 { return p.executed.Load() }

// Retain marks the pool as referenced by a provider or xstream.
func (p *Pool) Retain() { p.refs.Add(1) }

// Release drops a reference taken with Retain.
func (p *Pool) Release() { p.refs.Add(-1) }

// Refs returns the current external reference count.
func (p *Pool) Refs() int64 { return p.refs.Load() }

// Push submits a ULT and returns its handle.
func (p *Pool) Push(fn ULT) (*Thread, error) {
	return p.push(fn, false)
}

// PushPrio submits a high-priority ULT (front of the line for
// PoolPrio pools; equivalent to Push for FIFO pools).
func (p *Pool) PushPrio(fn ULT) (*Thread, error) {
	return p.push(fn, true)
}

func (p *Pool) push(fn ULT, prio bool) (*Thread, error) {
	th := &Thread{done: make(chan struct{})}
	if err := p.enqueue(poolItem{fn: fn, th: th, prio: prio}); err != nil {
		return nil, err
	}
	return th, nil
}

// Submit enqueues a fire-and-forget ULT with no Thread handle. This is
// the allocation-free submission path: margo's RPC dispatch uses it so
// the per-RPC cost is one queue slot, not a handle plus a done channel
// that nobody joins.
func (p *Pool) Submit(fn ULT) error {
	return p.enqueue(poolItem{fn: fn})
}

// SetWaitHistogram enables (non-nil) or disables (nil) queue-wait
// sampling on this pool.
func (p *Pool) SetWaitHistogram(h *metrics.Histogram) { p.wait.Store(h) }

func (p *Pool) enqueue(item poolItem) error {
	if p.wait.Load() != nil {
		item.at = time.Now()
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrPoolClosed
	}
	if item.prio && p.kind == PoolPrio {
		p.prioQ = append(p.prioQ, item)
	} else {
		p.queue = append(p.queue, item)
	}
	p.mu.Unlock()
	p.cond.Signal()
	p.notifyWaiters()
	return nil
}

// tryPop removes the next ULT without blocking.
func (p *Pool) tryPop() (poolItem, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.popLocked()
}

// popLocked pops via a head index rather than re-slicing so that once a
// queue fully drains, its backing array is reused: the steady-state
// push/pop cycle stops allocating after the first few requests.
func (p *Pool) popLocked() (poolItem, bool) {
	if p.prioHd < len(p.prioQ) {
		it := p.prioQ[p.prioHd]
		p.prioQ[p.prioHd] = poolItem{}
		p.prioHd++
		if p.prioHd == len(p.prioQ) {
			p.prioQ = p.prioQ[:0]
			p.prioHd = 0
		}
		p.executed.Add(1)
		p.observeWait(it)
		return it, true
	}
	if p.head < len(p.queue) {
		it := p.queue[p.head]
		p.queue[p.head] = poolItem{}
		p.head++
		if p.head == len(p.queue) {
			p.queue = p.queue[:0]
			p.head = 0
		}
		p.executed.Add(1)
		p.observeWait(it)
		return it, true
	}
	return poolItem{}, false
}

// observeWait records the queue wait of a popped item when sampling
// is on. Items enqueued before sampling was enabled carry no
// timestamp and are skipped; the histogram update is atomics-only, so
// doing it under the pool lock is acceptable.
func (p *Pool) observeWait(it poolItem) {
	if h := p.wait.Load(); h != nil && !it.at.IsZero() {
		h.Observe(time.Since(it.at).Seconds())
	}
}

// waitPop blocks until a ULT is available or the pool closes.
func (p *Pool) waitPop() (poolItem, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if it, ok := p.popLocked(); ok {
			return it, true
		}
		if p.closed {
			return poolItem{}, false
		}
		p.cond.Wait()
	}
}

// Close marks the pool closed: submissions fail, waiting consumers
// drain remaining work then stop.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
}

func (p *Pool) String() string {
	return fmt.Sprintf("pool %q (%s/%s, %d queued)", p.name, p.kind, p.access, p.Len())
}
