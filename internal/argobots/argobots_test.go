package argobots

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func basicConfig() Config {
	return Config{
		Pools: []PoolConfig{
			{Name: "p0", Kind: "fifo_wait", Access: "mpmc"},
		},
		Xstreams: []XstreamConfig{
			{Name: "es0", Scheduler: SchedConfig{Kind: "basic_wait", Pools: []string{"p0"}}},
		},
	}
}

func TestRuntimeRunsULT(t *testing.T) {
	r, err := NewRuntime(basicConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	p, _ := r.FindPool("p0")
	var ran atomic.Bool
	th, err := p.Push(func() { ran.Store(true) })
	if err != nil {
		t.Fatal(err)
	}
	th.Join()
	if !ran.Load() {
		t.Fatal("ULT did not run")
	}
}

func TestManyULTsAllExecute(t *testing.T) {
	r, err := NewRuntime(basicConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	p, _ := r.FindPool("p0")
	var count atomic.Int64
	var ths []*Thread
	for i := 0; i < 500; i++ {
		th, err := p.Push(func() { count.Add(1) })
		if err != nil {
			t.Fatal(err)
		}
		ths = append(ths, th)
	}
	for _, th := range ths {
		th.Join()
	}
	if count.Load() != 500 {
		t.Fatalf("executed %d, want 500", count.Load())
	}
	if p.Executed() != 500 {
		t.Fatalf("pool Executed() = %d", p.Executed())
	}
}

func TestMultipleXstreamsShareOnePool(t *testing.T) {
	cfg := Config{
		Pools: []PoolConfig{{Name: "shared", Kind: "fifo_wait"}},
		Xstreams: []XstreamConfig{
			{Name: "es0", Scheduler: SchedConfig{Kind: "basic_wait", Pools: []string{"shared"}}},
			{Name: "es1", Scheduler: SchedConfig{Kind: "basic_wait", Pools: []string{"shared"}}},
		},
	}
	r, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	p, _ := r.FindPool("shared")
	// Two blocking ULTs must run concurrently if both ES are draining.
	// The channels are buffered and released in a t.Cleanup so that a
	// failure can never leave a ULT blocked forever (which would hang
	// Runtime.Stop's join and with it the whole package).
	var wg sync.WaitGroup
	arrived := make(chan struct{}, 2)
	release := make(chan struct{})
	var releaseOnce sync.Once
	doRelease := func() { releaseOnce.Do(func() { close(release) }) }
	t.Cleanup(func() {
		doRelease()
		wg.Wait()
	})
	wg.Add(2)
	for i := 0; i < 2; i++ {
		_, err := p.Push(func() {
			defer wg.Done()
			arrived <- struct{}{}
			<-release
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// If both ULTs arrive while neither has been released, they ran in
	// parallel on the two xstreams.
	timeout := time.After(30 * time.Second)
	for i := 0; i < 2; i++ {
		select {
		case <-arrived:
		case <-timeout:
			t.Fatal("ULTs not running concurrently on two xstreams")
		}
	}
	doRelease()
	wg.Wait()
}

// TestFigure2Topology builds the exact topology of the paper's
// Figure 2: pools X, Y, Z; ES0 draining X and Y, ES1 dedicated to Z
// (the network progress pool).
func TestFigure2Topology(t *testing.T) {
	cfg := Config{
		Pools: []PoolConfig{
			{Name: "PoolX", Kind: "fifo_wait", Access: "mpmc"},
			{Name: "PoolY", Kind: "fifo_wait", Access: "mpmc"},
			{Name: "PoolZ", Kind: "fifo_wait", Access: "mpmc"},
		},
		Xstreams: []XstreamConfig{
			{Name: "ES0", Scheduler: SchedConfig{Kind: "basic_wait", Pools: []string{"PoolX", "PoolY"}}},
			{Name: "ES1", Scheduler: SchedConfig{Kind: "basic_wait", Pools: []string{"PoolZ"}}},
		},
	}
	r, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	var fromX, fromY, fromZ atomic.Int64
	px, _ := r.FindPool("PoolX")
	py, _ := r.FindPool("PoolY")
	pz, _ := r.FindPool("PoolZ")
	var ths []*Thread
	for i := 0; i < 10; i++ {
		tx, _ := px.Push(func() { fromX.Add(1) })
		ty, _ := py.Push(func() { fromY.Add(1) })
		tz, _ := pz.Push(func() { fromZ.Add(1) })
		ths = append(ths, tx, ty, tz)
	}
	for _, th := range ths {
		th.Join()
	}
	if fromX.Load() != 10 || fromY.Load() != 10 || fromZ.Load() != 10 {
		t.Fatalf("work not drained: X=%d Y=%d Z=%d", fromX.Load(), fromY.Load(), fromZ.Load())
	}
	x0, _ := r.FindXstream("ES0")
	x1, _ := r.FindXstream("ES1")
	if x0.Executed()+x1.Executed() != 30 {
		t.Fatalf("xstream totals = %d + %d", x0.Executed(), x1.Executed())
	}
	// ES1 only drains PoolZ.
	if x1.Executed() != 10 {
		t.Fatalf("ES1 executed %d, want exactly its pool's 10", x1.Executed())
	}
}

func TestPrioPool(t *testing.T) {
	p := NewPool("prio", PoolPrio, AccessMPMC)
	defer p.Close()
	// Enqueue normal then prio without a consumer; prio must pop first.
	if _, err := p.Push(func() {}); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	if _, err := p.PushPrio(func() { close(done) }); err != nil {
		t.Fatal(err)
	}
	it, ok := p.tryPop()
	if !ok {
		t.Fatal("empty pop")
	}
	it.fn()
	select {
	case <-done:
	default:
		t.Fatal("priority ULT was not popped first")
	}
}

func TestDuplicatePoolRejected(t *testing.T) {
	r, _ := NewRuntime(Config{})
	defer r.Stop()
	if _, err := r.AddPool(PoolConfig{Name: "dup"}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddPool(PoolConfig{Name: "dup"}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v, want ErrDuplicate", err)
	}
}

func TestDuplicateXstreamRejected(t *testing.T) {
	r, err := NewRuntime(basicConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	_, err = r.AddXstream(XstreamConfig{Name: "es0", Scheduler: SchedConfig{Pools: []string{"p0"}}})
	if !errors.Is(err, ErrDuplicate) {
		t.Fatalf("err = %v", err)
	}
}

func TestXstreamUnknownPoolRejected(t *testing.T) {
	r, _ := NewRuntime(Config{})
	defer r.Stop()
	_, err := r.AddXstream(XstreamConfig{Name: "x", Scheduler: SchedConfig{Pools: []string{"ghost"}}})
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestBadConfigsRejected(t *testing.T) {
	r, _ := NewRuntime(Config{})
	defer r.Stop()
	if _, err := r.AddPool(PoolConfig{Name: ""}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("empty name: %v", err)
	}
	if _, err := r.AddPool(PoolConfig{Name: "x", Kind: "lifo"}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad kind: %v", err)
	}
	if _, err := r.AddPool(PoolConfig{Name: "x", Access: "weird"}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad access: %v", err)
	}
	if _, err := r.AddXstream(XstreamConfig{Name: "x", Scheduler: SchedConfig{Kind: "rr", Pools: []string{"p"}}}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("bad sched: %v", err)
	}
	if _, err := r.AddPool(PoolConfig{Name: "p"}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddXstream(XstreamConfig{Name: "x2", Scheduler: SchedConfig{Pools: nil}}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("no pools: %v", err)
	}
}

// TestRemovePoolInUseRefused verifies the paper's §5 validity rule:
// "not allowing ... removing a pool that is in use by an ES".
func TestRemovePoolInUseRefused(t *testing.T) {
	r, err := NewRuntime(basicConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	if err := r.RemovePool("p0"); !errors.Is(err, ErrPoolInUse) {
		t.Fatalf("err = %v, want ErrPoolInUse", err)
	}
	// After removing the xstream, the pool can go.
	if err := r.RemoveXstream("es0"); err != nil {
		t.Fatal(err)
	}
	if err := r.RemovePool("p0"); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.FindPool("p0"); ok {
		t.Fatal("pool still findable after removal")
	}
}

func TestRemovePoolRetainedByProviderRefused(t *testing.T) {
	r, _ := NewRuntime(Config{})
	defer r.Stop()
	p, _ := r.AddPool(PoolConfig{Name: "held"})
	p.Retain() // a provider holds it
	if err := r.RemovePool("held"); !errors.Is(err, ErrPoolInUse) {
		t.Fatalf("err = %v", err)
	}
	p.Release()
	if err := r.RemovePool("held"); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveSoleConsumerOfBusyPoolRefused(t *testing.T) {
	r, err := NewRuntime(basicConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	p, _ := r.FindPool("p0")
	block := make(chan struct{})
	// Occupy the xstream, then queue more work so the pool is non-empty.
	th, _ := p.Push(func() { <-block })
	var queued []*Thread
	for i := 0; i < 3; i++ {
		q, _ := p.Push(func() {})
		queued = append(queued, q)
	}
	err = r.RemoveXstream("es0")
	close(block)
	th.Join()
	if !errors.Is(err, ErrPoolInUse) {
		t.Fatalf("err = %v, want ErrPoolInUse", err)
	}
	for _, q := range queued {
		q.Join()
	}
}

func TestRemoveXstreamLeavesOtherConsumer(t *testing.T) {
	cfg := Config{
		Pools: []PoolConfig{{Name: "p", Kind: "fifo_wait"}},
		Xstreams: []XstreamConfig{
			{Name: "a", Scheduler: SchedConfig{Pools: []string{"p"}}},
			{Name: "b", Scheduler: SchedConfig{Pools: []string{"p"}}},
		},
	}
	r, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	if err := r.RemoveXstream("a"); err != nil {
		t.Fatal(err)
	}
	// Pool still drains via b.
	p, _ := r.FindPool("p")
	th, _ := p.Push(func() {})
	th.Join()
}

func TestDynamicAddPoolAndXstream(t *testing.T) {
	r, err := NewRuntime(basicConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	// Paper Listing 2/5: add MyPoolX then an ES draining it, online.
	p, err := r.AddPool(PoolConfig{Name: "MyPoolX", Kind: "fifo_wait", Access: "mpmc"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddXstream(XstreamConfig{
		Name:      "MyES0",
		Scheduler: SchedConfig{Kind: "basic", Pools: []string{"MyPoolX"}},
	}); err != nil {
		t.Fatal(err)
	}
	th, err := p.Push(func() {})
	if err != nil {
		t.Fatal(err)
	}
	th.Join()
}

func TestSnapshotRoundTrip(t *testing.T) {
	cfg := Config{
		Pools: []PoolConfig{
			{Name: "a", Kind: "fifo", Access: "mpmc"},
			{Name: "b", Kind: "fifo_wait", Access: "mpmc"},
		},
		Xstreams: []XstreamConfig{
			{Name: "x", Scheduler: SchedConfig{Kind: "basic", Pools: []string{"a", "b"}}},
		},
	}
	r, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	snap := r.Snapshot()
	if len(snap.Pools) != 2 || len(snap.Xstreams) != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.Xstreams[0].Scheduler.Pools[0] != "a" || snap.Xstreams[0].Scheduler.Pools[1] != "b" {
		t.Fatalf("pool order lost: %+v", snap.Xstreams[0])
	}
	// A snapshot must reconstruct an equivalent runtime.
	r2, err := NewRuntime(snap)
	if err != nil {
		t.Fatalf("snapshot not re-instantiable: %v", err)
	}
	r2.Stop()
}

func TestPanickedULTDoesNotKillXstream(t *testing.T) {
	r, err := NewRuntime(basicConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	p, _ := r.FindPool("p0")
	th, _ := p.Push(func() { panic("ULT bug") })
	th.Join()
	// The xstream must still process new work.
	var ok atomic.Bool
	th2, _ := p.Push(func() { ok.Store(true) })
	th2.Join()
	if !ok.Load() {
		t.Fatal("xstream dead after ULT panic")
	}
}

func TestPushToClosedPoolFails(t *testing.T) {
	p := NewPool("c", PoolFIFOWait, AccessMPMC)
	p.Close()
	if _, err := p.Push(func() {}); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("err = %v", err)
	}
}

func TestStopIsIdempotentAndTerminal(t *testing.T) {
	r, err := NewRuntime(basicConfig())
	if err != nil {
		t.Fatal(err)
	}
	r.Stop()
	r.Stop()
	if _, err := r.AddPool(PoolConfig{Name: "late"}); !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v", err)
	}
	if _, err := r.AddXstream(XstreamConfig{Name: "late", Scheduler: SchedConfig{Pools: []string{"p0"}}}); !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v", err)
	}
}

func TestSchedBasicDrainsWithoutWait(t *testing.T) {
	cfg := Config{
		Pools:    []PoolConfig{{Name: "p", Kind: "fifo"}},
		Xstreams: []XstreamConfig{{Name: "x", Scheduler: SchedConfig{Kind: "basic", Pools: []string{"p"}}}},
	}
	r, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Stop()
	p, _ := r.FindPool("p")
	var n atomic.Int64
	var ths []*Thread
	for i := 0; i < 50; i++ {
		th, _ := p.Push(func() { n.Add(1) })
		ths = append(ths, th)
	}
	for _, th := range ths {
		th.Join()
	}
	if n.Load() != 50 {
		t.Fatalf("n = %d", n.Load())
	}
}

func TestPoolNamesSorted(t *testing.T) {
	r, _ := NewRuntime(Config{Pools: []PoolConfig{{Name: "z"}, {Name: "a"}, {Name: "m"}}})
	defer r.Stop()
	names := r.PoolNames()
	if len(names) != 3 || names[0] != "a" || names[1] != "m" || names[2] != "z" {
		t.Fatalf("names = %v", names)
	}
}

func BenchmarkULTDispatch(b *testing.B) {
	r, err := NewRuntime(basicConfig())
	if err != nil {
		b.Fatal(err)
	}
	defer r.Stop()
	p, _ := r.FindPool("p0")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		th, err := p.Push(func() {})
		if err != nil {
			b.Fatal(err)
		}
		th.Join()
	}
}
