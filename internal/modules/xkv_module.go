package modules

import (
	"encoding/json"
	"fmt"

	"mochi/internal/bedrock"
	"mochi/internal/yokan"
	"mochi/internal/yokan/router"
)

// XkvBootstrap seeds the initial shard map of a sharded keyspace.
// Exactly one logical keyspace is described by the same bootstrap
// block in every member's configuration: the map it derives is a pure
// function of the block, so every process adopts the identical epoch-1
// map without coordination.
type XkvBootstrap struct {
	// Shards is the fixed shard count of the keyspace.
	Shards int `json:"shards"`
	// VNodes is the virtual-node density of the hash ring
	// (0 = router.DefaultVNodes).
	VNodes int `json:"vnodes,omitempty"`
	// Owners lists the initial owner addresses round-robin across the
	// ring; the provider ID is the module provider's own. A process
	// whose address is absent starts as a spare: it routes, and can
	// be a migration destination.
	Owners []string `json:"owners"`
}

// XkvConfig parameterizes one "xkv" provider — a router.Node serving
// a slice of a horizontally sharded yokan keyspace.
type XkvConfig struct {
	// Backend templates each resident shard's database.
	Backend yokan.Config `json:"backend"`
	// Dir is the node's scratch root (empty = fresh temp dir).
	Dir string `json:"dir,omitempty"`
	// RemiProviderID receives shard snapshots (0 = provider_id+1).
	RemiProviderID uint16 `json:"remi_provider_id,omitempty"`
	// StageTimeoutMS bounds one dual-write forward (0 = 2000).
	StageTimeoutMS int `json:"stage_timeout_ms,omitempty"`
	// Bootstrap, when present, adopts the initial shard map at start.
	// Absent, the node waits for a bootstrap install RPC or joins
	// through a later migration.
	Bootstrap *XkvBootstrap `json:"bootstrap,omitempty"`
}

// XkvModule instantiates sharded-keyspace router providers.
type XkvModule struct{}

// Type implements bedrock.Module.
func (*XkvModule) Type() string { return "xkv" }

type xkvInstance struct {
	node *router.Node
	raw  json.RawMessage
}

func (x *xkvInstance) Config() (json.RawMessage, error) { return x.raw, nil }
func (x *xkvInstance) Close() error                     { return x.node.Close() }

// Node exposes the wrapped router node for local composition (the
// balancer, tests, bedrock-query helpers).
func (x *xkvInstance) Node() *router.Node { return x.node }

// StartProvider implements bedrock.Module.
func (*XkvModule) StartProvider(args bedrock.ProviderArgs) (bedrock.ProviderInstance, error) {
	var cfg XkvConfig
	if len(args.Config) > 0 {
		if err := json.Unmarshal(args.Config, &cfg); err != nil {
			return nil, fmt.Errorf("modules: xkv config: %w", err)
		}
	}
	node, err := router.NewNode(args.Instance, router.Options{
		ProviderID:     args.ProviderID,
		RemiProviderID: cfg.RemiProviderID,
		Backend:        cfg.Backend,
		Dir:            cfg.Dir,
		StageTimeoutMS: cfg.StageTimeoutMS,
	})
	if err != nil {
		return nil, err
	}
	if b := cfg.Bootstrap; b != nil {
		if len(b.Owners) == 0 {
			node.Close()
			return nil, fmt.Errorf("modules: xkv bootstrap without owners")
		}
		owners := make([]router.Owner, len(b.Owners))
		for i, addr := range b.Owners {
			owners[i] = router.Owner{Addr: addr, Provider: args.ProviderID}
		}
		vnodes := b.VNodes
		if vnodes == 0 {
			vnodes = router.DefaultVNodes
		}
		m, err := router.NewMap(b.Shards, owners, vnodes)
		if err != nil {
			node.Close()
			return nil, fmt.Errorf("modules: xkv bootstrap map: %w", err)
		}
		if err := node.Adopt(m); err != nil {
			node.Close()
			return nil, fmt.Errorf("modules: xkv bootstrap adopt: %w", err)
		}
	}
	raw := args.Config
	if len(raw) == 0 {
		raw = json.RawMessage(`{}`)
	}
	return &xkvInstance{node: node, raw: raw}, nil
}
