package modules

import (
	"encoding/json"
	"testing"

	"mochi/internal/bedrock"
	"mochi/internal/margo"
	"mochi/internal/mercury"
)

func TestRegisterBuiltinsIdempotent(t *testing.T) {
	RegisterBuiltins()
	RegisterBuiltins()
	for _, typ := range []string{"yokan", "warabi", "poesie"} {
		if _, ok := bedrock.LookupModule(typ); !ok {
			t.Fatalf("module %q not registered", typ)
		}
	}
	if _, ok := bedrock.LookupModule("nope"); ok {
		t.Fatal("phantom module")
	}
}

func TestModulesInstantiateAndReport(t *testing.T) {
	RegisterBuiltins()
	f := mercury.NewFabric()
	cls, err := f.NewClass("mods")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := margo.New(cls, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Finalize()

	cases := []struct {
		typ  string
		cfg  string
		want string // substring of the reported config
	}{
		{"yokan", `{"type":"skiplist"}`, "skiplist"},
		{"warabi", `{"type":"memory"}`, "memory"},
		{"poesie", `{"max_steps": 500}`, "500"},
	}
	for i, c := range cases {
		mod, _ := bedrock.LookupModule(c.typ)
		pi, err := mod.StartProvider(bedrock.ProviderArgs{
			Instance:   inst,
			Name:       c.typ + "-test",
			ProviderID: uint16(10 + i),
			Config:     json.RawMessage(c.cfg),
		})
		if err != nil {
			t.Fatalf("%s: %v", c.typ, err)
		}
		raw, err := pi.Config()
		if err != nil {
			t.Fatalf("%s config: %v", c.typ, err)
		}
		if !json.Valid(raw) {
			t.Fatalf("%s config not JSON: %s", c.typ, raw)
		}
		if want := c.want; want != "" && !containsStr(string(raw), want) {
			t.Fatalf("%s config %s missing %q", c.typ, raw, want)
		}
		if err := pi.Close(); err != nil {
			t.Fatalf("%s close: %v", c.typ, err)
		}
	}
}

func TestModuleBadConfigRejected(t *testing.T) {
	RegisterBuiltins()
	f := mercury.NewFabric()
	cls, _ := f.NewClass("mods-bad")
	inst, err := margo.New(cls, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Finalize()
	for _, typ := range []string{"yokan", "warabi", "poesie"} {
		mod, _ := bedrock.LookupModule(typ)
		if _, err := mod.StartProvider(bedrock.ProviderArgs{
			Instance:   inst,
			Name:       "bad",
			ProviderID: 1,
			Config:     json.RawMessage(`{broken`),
		}); err == nil {
			t.Fatalf("%s accepted broken config", typ)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
