package modules

import (
	"encoding/json"

	"mochi/internal/bedrock"
	"mochi/internal/poesie"
)

// PoesieModule instantiates script-interpreter providers.
type PoesieModule struct{}

// Type implements bedrock.Module.
func (*PoesieModule) Type() string { return "poesie" }

type poesieInstance struct {
	prov *poesie.Provider
}

func (p *poesieInstance) Config() (json.RawMessage, error) { return p.prov.Config() }
func (p *poesieInstance) Close() error                     { return p.prov.Close() }

// Provider exposes the wrapped poesie provider.
func (p *poesieInstance) Provider() *poesie.Provider { return p.prov }

// StartProvider implements bedrock.Module.
func (*PoesieModule) StartProvider(args bedrock.ProviderArgs) (bedrock.ProviderInstance, error) {
	var cfg poesie.Config
	if len(args.Config) > 0 {
		if err := json.Unmarshal(args.Config, &cfg); err != nil {
			return nil, err
		}
	}
	prov, err := poesie.NewProvider(args.Instance, args.ProviderID, args.Pool, cfg)
	if err != nil {
		return nil, err
	}
	return &poesieInstance{prov: prov}, nil
}
