package modules

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"mochi/internal/bedrock"
	"mochi/internal/margo"
	"mochi/internal/mercury"
	"mochi/internal/yokan/router"
)

// xkvServerConfig builds a bedrock process description hosting one
// xkv provider. Every member of the keyspace gets the identical
// bootstrap block, so all of them derive the same epoch-1 map without
// coordination.
func xkvServerConfig(owners []string) string {
	b, _ := json.Marshal(owners)
	return fmt.Sprintf(`{
  "libraries": { "xkv": "libxkv.so" },
  "providers": [
    { "name": "keyspace",
      "type": "xkv",
      "provider_id": 40,
      "config": {
        "backend": {"type": "map"},
        "bootstrap": {"shards": 8, "owners": %s}
      } }
  ]
}`, b)
}

// TestXkvModuleBedrockReshard spins up three bedrock processes
// hosting one sharded keyspace (two owners, one spare), routes
// traffic through a client, then moves one shard to the spare via the
// remote reshard RPC and verifies the keyspace is intact under the
// bumped epoch.
func TestXkvModuleBedrockReshard(t *testing.T) {
	RegisterBuiltins()
	f := mercury.NewFabric()
	names := []string{"xkv-bed-0", "xkv-bed-1", "xkv-bed-2"}
	owners := []string{"sm://xkv-bed-0", "sm://xkv-bed-1"}
	cfg := xkvServerConfig(owners)
	for _, name := range names {
		cls, err := f.NewClass(name)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := bedrock.NewServer(cls, []byte(cfg))
		if err != nil {
			t.Fatalf("server %s: %v", name, err)
		}
		t.Cleanup(srv.Shutdown)
		if _, ok := srv.LookupProvider("keyspace"); !ok {
			t.Fatalf("server %s did not start the xkv provider", name)
		}
	}

	cls, err := f.NewClass("xkv-bed-client")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := margo.New(cls, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(inst.Finalize)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	t.Cleanup(cancel)

	r, err := router.Bootstrap(ctx, inst, owners, 40)
	if err != nil {
		t.Fatalf("bootstrap: %v", err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%d", i)
		if err := r.Put(ctx, []byte(k), []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatalf("put %s: %v", k, err)
		}
	}

	// Move shard 0 from its owner to the spare through the same RPC
	// path the balancer uses.
	m := r.Map()
	spare := router.Owner{Addr: "sm://xkv-bed-2", Provider: 40}
	dec := &router.Decision{Shard: 0, From: m.Owners[0], To: spare}
	if err := router.NewBalancer(inst, nil).Execute(ctx, dec); err != nil {
		t.Fatalf("remote reshard: %v", err)
	}

	// A stale router must follow the redirect and still see every key.
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%d", i)
		v, err := r.Get(ctx, []byte(k))
		if err != nil {
			t.Fatalf("get %s after reshard: %v", k, err)
		}
		if want := fmt.Sprintf("val-%d", i); string(v) != want {
			t.Fatalf("key %s: got %q want %q", k, v, want)
		}
	}
	if err := r.Refresh(ctx); err != nil {
		t.Fatalf("refresh: %v", err)
	}
	if got := r.Map(); got.Epoch <= m.Epoch {
		t.Fatalf("epoch did not advance: %d -> %d", m.Epoch, got.Epoch)
	}
	if got := r.Map().Owners[0]; got != spare {
		t.Fatalf("shard 0 owned by %v, want spare %v", got, spare)
	}
}
