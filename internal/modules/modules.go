// Package modules provides the Bedrock module adapters for the
// built-in components (yokan, warabi, poesie), the Go analogue of the
// .so files a C Bedrock deployment lists in its "libraries" section.
// Importing this package (or calling RegisterBuiltins) makes the
// types instantiable from Bedrock configurations.
package modules

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"sync"

	"mochi/internal/bedrock"
	"mochi/internal/remi"
	"mochi/internal/warabi"
	"mochi/internal/yokan"
)

var registerOnce sync.Once

// RegisterBuiltins registers the yokan, warabi, poesie and xkv
// modules. It is idempotent.
func RegisterBuiltins() {
	registerOnce.Do(func() {
		bedrock.RegisterModule(&YokanModule{})
		bedrock.RegisterModule(&WarabiModule{})
		bedrock.RegisterModule(&PoesieModule{})
		bedrock.RegisterModule(&XkvModule{})
	})
}

// YokanModule instantiates key-value providers.
type YokanModule struct{}

// Type implements bedrock.Module.
func (*YokanModule) Type() string { return "yokan" }

// yokanInstance adapts yokan.Provider to the bedrock instance
// interfaces, including migration and checkpointing.
type yokanInstance struct {
	prov *yokan.Provider
	dir  string // checkpoint/restore dir override (unused: dir comes per call)
}

func (y *yokanInstance) Config() (json.RawMessage, error) { return y.prov.Config() }
func (y *yokanInstance) Close() error                     { return y.prov.Close() }
func (y *yokanInstance) Files() []string                  { return y.prov.Files() }
func (y *yokanInstance) Flush() error                     { return y.prov.Flush() }
func (y *yokanInstance) Checkpoint(dir string) error      { return y.prov.Checkpoint(dir) }
func (y *yokanInstance) Restore(dir string) error         { return y.prov.Restore(dir) }

// Provider exposes the wrapped yokan provider for local composition.
func (y *yokanInstance) Provider() *yokan.Provider { return y.prov }

var (
	_ bedrock.Migratable     = (*yokanInstance)(nil)
	_ bedrock.Checkpointable = (*yokanInstance)(nil)
)

// StartProvider implements bedrock.Module.
func (*YokanModule) StartProvider(args bedrock.ProviderArgs) (bedrock.ProviderInstance, error) {
	prov, err := yokan.NewProviderJSON(args.Instance, args.ProviderID, args.Pool, args.Config)
	if err != nil {
		return nil, err
	}
	return &yokanInstance{prov: prov}, nil
}

// ReceiveProvider implements bedrock.MigrationReceiver: it points the
// database config at the migrated file under the destination root.
func (m *YokanModule) ReceiveProvider(args bedrock.ProviderArgs, fs *remi.FileSet) (bedrock.ProviderInstance, error) {
	var cfg yokan.Config
	if len(args.Config) > 0 {
		if err := json.Unmarshal(args.Config, &cfg); err != nil {
			return nil, err
		}
	}
	if cfg.Type == "log" {
		if len(fs.Files) != 1 {
			return nil, fmt.Errorf("modules: yokan log migration expects 1 file, got %d", len(fs.Files))
		}
		cfg.Path = filepath.Join(fs.Root, fs.Files[0].RelPath)
	}
	prov, err := yokan.NewProvider(args.Instance, args.ProviderID, args.Pool, cfg)
	if err != nil {
		return nil, err
	}
	return &yokanInstance{prov: prov}, nil
}

var _ bedrock.MigrationReceiver = (*YokanModule)(nil)

// WarabiModule instantiates blob-storage providers.
type WarabiModule struct{}

// Type implements bedrock.Module.
func (*WarabiModule) Type() string { return "warabi" }

type warabiInstance struct {
	prov *warabi.Provider
}

func (w *warabiInstance) Config() (json.RawMessage, error) { return w.prov.Config() }
func (w *warabiInstance) Close() error                     { return w.prov.Close() }
func (w *warabiInstance) Files() []string                  { return w.prov.Files() }
func (w *warabiInstance) Flush() error                     { return nil }

// Provider exposes the wrapped warabi provider.
func (w *warabiInstance) Provider() *warabi.Provider { return w.prov }

var _ bedrock.Migratable = (*warabiInstance)(nil)

// StartProvider implements bedrock.Module.
func (*WarabiModule) StartProvider(args bedrock.ProviderArgs) (bedrock.ProviderInstance, error) {
	var cfg warabi.Config
	if len(args.Config) > 0 {
		if err := json.Unmarshal(args.Config, &cfg); err != nil {
			return nil, err
		}
	}
	prov, err := warabi.NewProvider(args.Instance, args.ProviderID, args.Pool, cfg)
	if err != nil {
		return nil, err
	}
	return &warabiInstance{prov: prov}, nil
}

// ReceiveProvider implements bedrock.MigrationReceiver for the file
// backend: the received region files live under the destination root.
func (m *WarabiModule) ReceiveProvider(args bedrock.ProviderArgs, fs *remi.FileSet) (bedrock.ProviderInstance, error) {
	var cfg warabi.Config
	if len(args.Config) > 0 {
		if err := json.Unmarshal(args.Config, &cfg); err != nil {
			return nil, err
		}
	}
	if cfg.Type == "file" {
		// Region files arrive flat under the fileset root.
		cfg.Dir = fs.Root
		if len(fs.Files) > 0 {
			cfg.Dir = filepath.Join(fs.Root, filepath.Dir(fs.Files[0].RelPath))
		}
	}
	prov, err := warabi.NewProvider(args.Instance, args.ProviderID, args.Pool, cfg)
	if err != nil {
		return nil, err
	}
	return &warabiInstance{prov: prov}, nil
}

var _ bedrock.MigrationReceiver = (*WarabiModule)(nil)
