package raft

import (
	"context"
	"fmt"
	"testing"
	"time"

	"mochi/internal/margo"
	"mochi/internal/mercury"
)

func benchCluster(b *testing.B, n int) (*Node, func()) {
	b.Helper()
	f := mercury.NewFabric()
	var insts []*margo.Instance
	var addrs []string
	for i := 0; i < n; i++ {
		cls, err := f.NewClass(fmt.Sprintf("bench-raft-%d", i))
		if err != nil {
			b.Fatal(err)
		}
		inst, err := margo.New(cls, nil)
		if err != nil {
			b.Fatal(err)
		}
		insts = append(insts, inst)
		addrs = append(addrs, inst.Addr())
	}
	cfg := Config{
		ElectionTimeoutMin: 50 * time.Millisecond,
		ElectionTimeoutMax: 100 * time.Millisecond,
		HeartbeatInterval:  15 * time.Millisecond,
	}
	var nodes []*Node
	for _, inst := range insts {
		node, err := NewNode(inst, "bench", addrs, NewMemoryStore(), newKVFSM(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		nodes = append(nodes, node)
	}
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		for _, n := range nodes {
			if n.IsLeader() {
				return n, func() {
					for _, n := range nodes {
						n.Stop()
					}
					for _, inst := range insts {
						inst.Finalize()
					}
				}
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	b.Fatal("no leader")
	return nil, nil
}

func BenchmarkRaftApply3(b *testing.B) {
	leader, cleanup := benchCluster(b, 3)
	defer cleanup()
	ctx := context.Background()
	cmd := []byte("set bench value")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := leader.Apply(ctx, cmd); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMemoryStoreAppend(b *testing.B) {
	s := NewMemoryStore()
	data := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Append([]LogEntry{{Index: uint64(i + 1), Term: 1, Data: data}}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFileStoreAppend(b *testing.B) {
	s, err := NewFileStore(b.TempDir(), true)
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	data := make([]byte, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Append([]LogEntry{{Index: uint64(i + 1), Term: 1, Data: data}}); err != nil {
			b.Fatal(err)
		}
	}
}
