package raft

import (
	"mochi/internal/metrics"
)

// batchBuckets spans 1 to 512 entries in factor-2 steps — group-commit
// and apply batches are capped by MaxBatchEntries (default 64), so the
// interesting range is small and dense.
var batchBuckets = metrics.ExpBuckets(1, 2, 10)

// nodeMetrics is the replication-health surface of one Raft node,
// registered on the instance's registry so the series ride the
// existing exposition plane (bedrock /metrics, bedrock_get_metrics,
// bedrock-query -metrics, the cluster federation view) for free.
type nodeMetrics struct {
	// commitLatency is the full proposal round trip observed by Apply:
	// enqueue → group commit → replication → apply → waiter wakeup.
	commitLatency *metrics.Histogram // mochi_raft_commit_latency_seconds{group}
	// batchEntries is the number of proposals coalesced into one
	// leader group commit (one store.Append, one fsync).
	batchEntries *metrics.Histogram // mochi_raft_batch_entries{group}
	// applyEntries is the committed-range run drained per applier
	// wakeup (the batched-apply mirror of batchEntries).
	applyEntries *metrics.Histogram // mochi_raft_apply_entries{group}
	// readRounds counts ReadIndex leadership-confirmation heartbeat
	// rounds; readBatch is how many pending reads each round served.
	readRounds *metrics.Counter   // mochi_raft_readindex_rounds_total{group}
	readBatch  *metrics.Histogram // mochi_raft_readindex_batch{group}
	// appendErrors counts persistent-store write failures (each one
	// steps a leader down rather than silently dropping the command).
	appendErrors *metrics.Counter // mochi_raft_store_append_errors_total{group}
}

func newNodeMetrics(reg *metrics.Registry, group string) *nodeMetrics {
	return &nodeMetrics{
		commitLatency: reg.Histogram("mochi_raft_commit_latency_seconds",
			"Proposal round trip at the leader: submit to applied result, by group.",
			metrics.LatencyBuckets, "group").With(group),
		batchEntries: reg.Histogram("mochi_raft_batch_entries",
			"Entries coalesced per leader group commit (one store append + fsync), by group.",
			batchBuckets, "group").With(group),
		applyEntries: reg.Histogram("mochi_raft_apply_entries",
			"Committed entries drained per applier wakeup, by group.",
			batchBuckets, "group").With(group),
		readRounds: reg.Counter("mochi_raft_readindex_rounds_total",
			"ReadIndex leadership-confirmation heartbeat rounds, by group.",
			"group").With(group),
		readBatch: reg.Histogram("mochi_raft_readindex_batch",
			"Pending linearizable reads served per ReadIndex confirmation round, by group.",
			batchBuckets, "group").With(group),
		appendErrors: reg.Counter("mochi_raft_store_append_errors_total",
			"Persistent-store append failures on the leader (each steps the leader down), by group.",
			"group").With(group),
	}
}
