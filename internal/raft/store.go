package raft

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"mochi/internal/codec"
)

// MemoryStore is a volatile Store for tests and ephemeral groups.
type MemoryStore struct {
	term     uint64
	votedFor string
	// log[0] corresponds to index firstIndex.
	log        []LogEntry
	firstIndex uint64
	snapData   []byte
	snapIndex  uint64
	snapTerm   uint64
}

// NewMemoryStore returns an empty volatile store.
func NewMemoryStore() *MemoryStore {
	return &MemoryStore{firstIndex: 1}
}

func (s *MemoryStore) SetState(term uint64, votedFor string) error {
	s.term, s.votedFor = term, votedFor
	return nil
}

func (s *MemoryStore) State() (uint64, string, error) {
	return s.term, s.votedFor, nil
}

func (s *MemoryStore) Append(entries []LogEntry) error {
	for _, e := range entries {
		want := s.LastIndex() + 1
		if e.Index != want {
			return fmt.Errorf("raft: append gap: entry %d, want %d", e.Index, want)
		}
		s.log = append(s.log, e)
	}
	return nil
}

func (s *MemoryStore) pos(index uint64) (int, error) {
	if index < s.firstIndex {
		return 0, ErrCompacted
	}
	p := int(index - s.firstIndex)
	if p >= len(s.log) {
		return 0, fmt.Errorf("raft: index %d beyond log end %d", index, s.LastIndex())
	}
	return p, nil
}

func (s *MemoryStore) Entry(index uint64) (LogEntry, error) {
	p, err := s.pos(index)
	if err != nil {
		return LogEntry{}, err
	}
	return s.log[p], nil
}

func (s *MemoryStore) Entries(lo, hi uint64) ([]LogEntry, error) {
	if lo > hi {
		return nil, nil
	}
	plo, err := s.pos(lo)
	if err != nil {
		return nil, err
	}
	phi, err := s.pos(hi)
	if err != nil {
		return nil, err
	}
	return append([]LogEntry(nil), s.log[plo:phi+1]...), nil
}

func (s *MemoryStore) FirstIndex() uint64 { return s.firstIndex }

func (s *MemoryStore) LastIndex() uint64 {
	if len(s.log) == 0 {
		return s.snapIndex
	}
	return s.firstIndex + uint64(len(s.log)) - 1
}

func (s *MemoryStore) Term(index uint64) (uint64, error) {
	if index == 0 {
		return 0, nil
	}
	if index == s.snapIndex {
		return s.snapTerm, nil
	}
	e, err := s.Entry(index)
	if err != nil {
		return 0, err
	}
	return e.Term, nil
}

func (s *MemoryStore) TruncateFrom(index uint64) error {
	if index < s.firstIndex {
		return ErrCompacted
	}
	p := int(index - s.firstIndex)
	if p < len(s.log) {
		s.log = s.log[:p]
	}
	return nil
}

func (s *MemoryStore) SaveSnapshot(index, term uint64, data []byte) error {
	if index <= s.snapIndex {
		return nil
	}
	// Keep entries after index.
	if index >= s.firstIndex {
		keepFrom := int(index - s.firstIndex + 1)
		if keepFrom >= len(s.log) {
			s.log = nil
		} else {
			s.log = append([]LogEntry(nil), s.log[keepFrom:]...)
		}
	} else {
		s.log = nil
	}
	s.snapData = append([]byte(nil), data...)
	s.snapIndex, s.snapTerm = index, term
	s.firstIndex = index + 1
	return nil
}

func (s *MemoryStore) Snapshot() ([]byte, uint64, uint64, error) {
	return s.snapData, s.snapIndex, s.snapTerm, nil
}

func (s *MemoryStore) Close() error { return nil }

// FileStore persists Raft state under a directory: a metadata file
// (term/vote), an append-only log file, and a snapshot file. It keeps
// a MemoryStore as its in-RAM image and rewrites the log file on
// truncation/compaction (simple and crash-safe via rename).
type FileStore struct {
	dir    string
	mem    *MemoryStore
	nosync bool
	logF   *os.File
	syncs  atomic.Uint64
}

// Syncs returns how many fsyncs this store has issued (0 when opened
// with nosync). The E15 benchmark divides it by operations to show
// group commit dropping fsyncs/op below 1.
func (s *FileStore) Syncs() uint64 { return s.syncs.Load() }

// NewFileStore opens (or creates) a durable store in dir.
func NewFileStore(dir string, nosync bool) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &FileStore{dir: dir, mem: NewMemoryStore(), nosync: nosync}
	if err := s.load(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(s.logPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	s.logF = f
	return s, nil
}

func (s *FileStore) metaPath() string { return filepath.Join(s.dir, "meta.bin") }
func (s *FileStore) logPath() string  { return filepath.Join(s.dir, "log.bin") }
func (s *FileStore) snapPath() string { return filepath.Join(s.dir, "snapshot.bin") }

func (s *FileStore) load() error {
	// Snapshot first: it defines firstIndex.
	if raw, err := os.ReadFile(s.snapPath()); err == nil && len(raw) > 0 {
		d := codec.NewDecoder(raw)
		idx := d.Uint64()
		term := d.Uint64()
		data := append([]byte(nil), d.BytesField()...)
		if err := d.Finish(); err == nil {
			s.mem.snapIndex, s.mem.snapTerm, s.mem.snapData = idx, term, data
			s.mem.firstIndex = idx + 1
		}
	}
	if raw, err := os.ReadFile(s.metaPath()); err == nil && len(raw) > 0 {
		d := codec.NewDecoder(raw)
		term := d.Uint64()
		voted := d.String()
		if err := d.Finish(); err == nil {
			s.mem.term, s.mem.votedFor = term, voted
		}
	}
	// Replay the log, tolerating a torn tail.
	raw, err := os.ReadFile(s.logPath())
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	off := 0
	for off+4 <= len(raw) {
		n := int(uint32(raw[off]) | uint32(raw[off+1])<<8 | uint32(raw[off+2])<<16 | uint32(raw[off+3])<<24)
		if off+4+n > len(raw) {
			break
		}
		var e LogEntry
		if err := codec.Unmarshal(raw[off+4:off+4+n], &e); err != nil {
			break
		}
		off += 4 + n
		// Entries covered by the snapshot or superseded by a
		// truncation-rewrite are skipped/over-written.
		if e.Index < s.mem.firstIndex {
			continue
		}
		if e.Index <= s.mem.LastIndex() {
			// Overwrite due to an old truncation: drop the tail.
			if err := s.mem.TruncateFrom(e.Index); err != nil {
				return err
			}
		}
		if err := s.mem.Append([]LogEntry{e}); err != nil {
			return err
		}
	}
	return nil
}

func (s *FileStore) sync(f *os.File) error {
	if s.nosync {
		return nil
	}
	s.syncs.Add(1)
	return f.Sync()
}

func (s *FileStore) SetState(term uint64, votedFor string) error {
	enc := codec.NewEncoder(nil)
	enc.Uint64(term)
	enc.String(votedFor)
	tmp := s.metaPath() + ".tmp"
	if err := os.WriteFile(tmp, enc.Bytes(), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, s.metaPath()); err != nil {
		return err
	}
	return s.mem.SetState(term, votedFor)
}

func (s *FileStore) State() (uint64, string, error) { return s.mem.State() }

func (s *FileStore) Append(entries []LogEntry) error {
	// One buffered write and one fsync for the whole batch — the
	// group-commit path hands multi-entry batches straight through.
	var buf []byte
	for i := range entries {
		body := codec.Marshal(&entries[i])
		n := len(body)
		buf = append(buf, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
		buf = append(buf, body...)
	}
	if _, err := s.logF.Write(buf); err != nil {
		return err
	}
	if err := s.sync(s.logF); err != nil {
		return err
	}
	return s.mem.Append(entries)
}

func (s *FileStore) Entry(i uint64) (LogEntry, error)          { return s.mem.Entry(i) }
func (s *FileStore) Entries(lo, hi uint64) ([]LogEntry, error) { return s.mem.Entries(lo, hi) }
func (s *FileStore) FirstIndex() uint64                        { return s.mem.FirstIndex() }
func (s *FileStore) LastIndex() uint64                         { return s.mem.LastIndex() }
func (s *FileStore) Term(i uint64) (uint64, error)             { return s.mem.Term(i) }

// rewriteLog persists the in-memory log image atomically.
func (s *FileStore) rewriteLog() error {
	tmp := s.logPath() + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	for _, e := range s.mem.log {
		body := codec.Marshal(&e)
		n := len(body)
		frame := append([]byte{byte(n), byte(n >> 8), byte(n >> 16), byte(n >> 24)}, body...)
		if _, err := f.Write(frame); err != nil {
			f.Close()
			return err
		}
	}
	if err := s.sync(f); err != nil {
		f.Close()
		return err
	}
	f.Close()
	if err := os.Rename(tmp, s.logPath()); err != nil {
		return err
	}
	if s.logF != nil {
		s.logF.Close()
	}
	nf, err := os.OpenFile(s.logPath(), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	s.logF = nf
	return nil
}

func (s *FileStore) TruncateFrom(index uint64) error {
	if err := s.mem.TruncateFrom(index); err != nil {
		return err
	}
	return s.rewriteLog()
}

func (s *FileStore) SaveSnapshot(index, term uint64, data []byte) error {
	enc := codec.NewEncoder(nil)
	enc.Uint64(index)
	enc.Uint64(term)
	enc.BytesField(data)
	tmp := s.snapPath() + ".tmp"
	if err := os.WriteFile(tmp, enc.Bytes(), 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, s.snapPath()); err != nil {
		return err
	}
	if err := s.mem.SaveSnapshot(index, term, data); err != nil {
		return err
	}
	return s.rewriteLog()
}

func (s *FileStore) Snapshot() ([]byte, uint64, uint64, error) { return s.mem.Snapshot() }

func (s *FileStore) Close() error {
	if s.logF != nil {
		return s.logF.Close()
	}
	return nil
}
