package raft

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"mochi/internal/codec"
	"mochi/internal/margo"
	"mochi/internal/mercury"
)

// kvFSM is a simple replicated map: commands are "set k v" / "get k".
// It implements BatchFSM and ReaderFSM (see batch_test.go), so every
// test in this package exercises the batched apply and ReadIndex
// paths.
type kvFSM struct {
	mu sync.Mutex
	m  map[string]string
	// applied records the exact sequence of applied commands, to
	// verify the state machine safety property.
	applied []string
	// batchSizes records the length of every ApplyBatch run.
	batchSizes []int
}

func newKVFSM() *kvFSM { return &kvFSM{m: map[string]string{}} }

func (f *kvFSM) Apply(index uint64, cmd []byte) []byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.applied = append(f.applied, string(cmd))
	parts := bytes.SplitN(cmd, []byte(" "), 3)
	switch string(parts[0]) {
	case "set":
		f.m[string(parts[1])] = string(parts[2])
		return []byte("ok")
	case "get":
		return []byte(f.m[string(parts[1])])
	}
	return nil
}

func (f *kvFSM) Snapshot() ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	e := codec.NewEncoder(nil)
	e.Uvarint(uint64(len(f.m)))
	for k, v := range f.m {
		e.String(k)
		e.String(v)
	}
	return e.Bytes(), nil
}

func (f *kvFSM) Restore(snap []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	d := codec.NewDecoder(snap)
	n := d.Uvarint()
	f.m = make(map[string]string, n)
	for i := uint64(0); i < n; i++ {
		k := d.String()
		v := d.String()
		f.m[k] = v
	}
	return d.Finish()
}

func (f *kvFSM) get(k string) string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.m[k]
}

func (f *kvFSM) appliedSeq() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.applied...)
}

func fastRaftCfg() Config {
	return Config{
		ElectionTimeoutMin: 50 * time.Millisecond,
		ElectionTimeoutMax: 100 * time.Millisecond,
		HeartbeatInterval:  15 * time.Millisecond,
	}
}

type raftCluster struct {
	t      *testing.T
	fabric *mercury.Fabric
	insts  map[string]*margo.Instance
	nodes  map[string]*Node
	fsms   map[string]*kvFSM
	stores map[string]Store
	addrs  []string
}

func newRaftCluster(t *testing.T, n int, cfg Config) *raftCluster {
	t.Helper()
	c := &raftCluster{
		t:      t,
		fabric: mercury.NewFabric(),
		insts:  map[string]*margo.Instance{},
		nodes:  map[string]*Node{},
		fsms:   map[string]*kvFSM{},
		stores: map[string]Store{},
	}
	for i := 0; i < n; i++ {
		cls, err := c.fabric.NewClass(fmt.Sprintf("raft-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		inst, err := margo.New(cls, nil)
		if err != nil {
			t.Fatal(err)
		}
		c.insts[inst.Addr()] = inst
		c.addrs = append(c.addrs, inst.Addr())
	}
	for _, addr := range c.addrs {
		fsm := newKVFSM()
		store := NewMemoryStore()
		node, err := NewNode(c.insts[addr], "g", c.addrs, store, fsm, cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.nodes[addr] = node
		c.fsms[addr] = fsm
		c.stores[addr] = store
	}
	t.Cleanup(func() {
		for _, n := range c.nodes {
			n.Stop()
		}
		for _, inst := range c.insts {
			inst.Finalize()
		}
	})
	return c
}

// waitLeader blocks until exactly one live node is leader and a
// majority agrees on it.
func (c *raftCluster) waitLeader(exclude ...string) *Node {
	c.t.Helper()
	skip := map[string]bool{}
	for _, e := range exclude {
		skip[e] = true
	}
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		var leader *Node
		for addr, n := range c.nodes {
			if skip[addr] {
				continue
			}
			if n.IsLeader() {
				leader = n
			}
		}
		if leader != nil {
			// A majority must acknowledge this leader.
			agree := 0
			for addr, n := range c.nodes {
				if skip[addr] {
					continue
				}
				if n.Leader() == leader.ID() {
					agree++
				}
			}
			if agree > len(c.addrs)/2 {
				return leader
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	c.t.Fatal("no leader elected")
	return nil
}

// apply submits a command through whichever node currently leads,
// retrying across leadership changes (elections can happen mid-test
// on a loaded host; real clients retry exactly like this).
func (c *raftCluster) apply(ctx context.Context, cmd []byte) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt < 20; attempt++ {
		leader := c.waitLeader()
		out, err := leader.Apply(ctx, cmd)
		if err == nil {
			return out, nil
		}
		lastErr = err
		if errors.Is(err, ErrNotLeader) || errors.Is(err, ErrNoLeader) || errors.Is(err, ErrTimeout) {
			time.Sleep(10 * time.Millisecond)
			continue
		}
		return nil, err
	}
	return nil, fmt.Errorf("apply kept failing: %w", lastErr)
}

func TestSingleNodeCommits(t *testing.T) {
	c := newRaftCluster(t, 1, fastRaftCfg())
	leader := c.waitLeader()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	out, err := leader.Apply(ctx, []byte("set x 1"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "ok" {
		t.Fatalf("result = %q", out)
	}
	if c.fsms[leader.ID()].get("x") != "1" {
		t.Fatal("command not applied")
	}
}

func TestLeaderElection(t *testing.T) {
	c := newRaftCluster(t, 3, fastRaftCfg())
	leader := c.waitLeader()
	// Exactly one leader.
	count := 0
	for _, n := range c.nodes {
		if n.IsLeader() {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("%d leaders", count)
	}
	if leader.Status().Term == 0 {
		t.Fatal("term never advanced")
	}
}

func TestReplicationToAllNodes(t *testing.T) {
	c := newRaftCluster(t, 3, fastRaftCfg())
	c.waitLeader()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < 20; i++ {
		if _, err := c.apply(ctx, []byte(fmt.Sprintf("set k%d v%d", i, i))); err != nil {
			t.Fatal(err)
		}
	}
	// All FSMs converge to the same state.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for _, fsm := range c.fsms {
			if fsm.get("k19") != "v19" {
				done = false
			}
		}
		if done {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	for addr, fsm := range c.fsms {
		for i := 0; i < 20; i++ {
			if got := fsm.get(fmt.Sprintf("k%d", i)); got != fmt.Sprintf("v%d", i) {
				t.Fatalf("%s: k%d = %q", addr, i, got)
			}
		}
	}
}

// TestStateMachineSafety: all nodes apply the same commands in the
// same order.
func TestStateMachineSafety(t *testing.T) {
	c := newRaftCluster(t, 3, fastRaftCfg())
	c.waitLeader()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < 30; i++ {
		if _, err := c.apply(ctx, []byte(fmt.Sprintf("set s %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		all := true
		for _, fsm := range c.fsms {
			if len(fsm.appliedSeq()) < 30 {
				all = false
			}
		}
		if all {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	ref := c.fsms[c.addrs[0]].appliedSeq()
	for addr, fsm := range c.fsms {
		seq := fsm.appliedSeq()
		if len(seq) != len(ref) {
			t.Fatalf("%s applied %d commands, ref %d", addr, len(seq), len(ref))
		}
		for i := range seq {
			if seq[i] != ref[i] {
				t.Fatalf("%s diverges at %d: %q vs %q", addr, i, seq[i], ref[i])
			}
		}
	}
}

func TestLeaderFailover(t *testing.T) {
	c := newRaftCluster(t, 3, fastRaftCfg())
	leader := c.waitLeader()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := c.apply(ctx, []byte("set before failover")); err != nil {
		t.Fatal(err)
	}
	leader = c.waitLeader() // re-sample: apply may have crossed an election
	old := leader.ID()
	c.fabric.Kill(old)
	c.nodes[old].Stop()

	newLeader := c.waitLeader(old)
	if newLeader.ID() == old {
		t.Fatal("dead node still leader")
	}
	if _, err := newLeader.Apply(ctx, []byte("set after failover")); err != nil {
		t.Fatal(err)
	}
	// The new leader must retain the pre-failover entry.
	if c.fsms[newLeader.ID()].get("before") != "failover" {
		t.Fatal("committed entry lost across failover")
	}
	if c.fsms[newLeader.ID()].get("after") != "failover" {
		t.Fatal("new entry not applied")
	}
	_ = leader
}

func TestApplyOnFollowerRejected(t *testing.T) {
	c := newRaftCluster(t, 3, fastRaftCfg())
	leader := c.waitLeader()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	for _, n := range c.nodes {
		if n.ID() == leader.ID() {
			continue
		}
		if _, err := n.Apply(ctx, []byte("set x 1")); err == nil {
			t.Fatal("follower accepted Apply")
		}
		break
	}
}

func TestClientFollowsLeaderHint(t *testing.T) {
	c := newRaftCluster(t, 3, fastRaftCfg())
	c.waitLeader()
	// A client process outside the group.
	cls, _ := c.fabric.NewClass("raft-client")
	inst, err := margo.New(cls, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Finalize()
	client := NewClient(inst, "g", c.addrs)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	out, err := client.Apply(ctx, []byte("set via client"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "ok" {
		t.Fatalf("result = %q", out)
	}
	// Status RPC works against any member.
	st, err := client.Status(ctx, c.addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Peers) != 3 {
		t.Fatalf("peers = %v", st.Peers)
	}
}

func TestClientSurvivesFailover(t *testing.T) {
	c := newRaftCluster(t, 3, fastRaftCfg())
	leader := c.waitLeader()
	cls, _ := c.fabric.NewClass("raft-client2")
	inst, err := margo.New(cls, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Finalize()
	client := NewClient(inst, "g", c.addrs)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if _, err := client.Apply(ctx, []byte("set a 1")); err != nil {
		t.Fatal(err)
	}
	c.fabric.Kill(leader.ID())
	c.nodes[leader.ID()].Stop()
	if _, err := client.Apply(ctx, []byte("set b 2")); err != nil {
		t.Fatalf("apply after failover: %v", err)
	}
}

func TestPartitionedLeaderCannotCommit(t *testing.T) {
	c := newRaftCluster(t, 3, fastRaftCfg())
	leader := c.waitLeader()
	var minority, majority []string
	minority = append(minority, leader.ID())
	for _, a := range c.addrs {
		if a != leader.ID() {
			majority = append(majority, a)
		}
	}
	c.fabric.Partition(minority, majority)
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	if _, err := leader.Apply(ctx, []byte("set lost write")); err == nil {
		t.Fatal("partitioned leader committed a write")
	}
	// The majority side elects a new leader and commits.
	var newLeader *Node
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		for _, a := range majority {
			if c.nodes[a].IsLeader() {
				newLeader = c.nodes[a]
			}
		}
		if newLeader != nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if newLeader == nil {
		t.Fatal("majority never elected a leader")
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if _, err := newLeader.Apply(ctx2, []byte("set real write")); err != nil {
		t.Fatal(err)
	}
	// Heal: the old leader steps down and converges; the lost write
	// must not survive.
	c.fabric.Heal()
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if c.fsms[leader.ID()].get("real") == "write" {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if c.fsms[leader.ID()].get("real") != "write" {
		t.Fatal("old leader never converged after heal")
	}
	if c.fsms[leader.ID()].get("lost") == "write" {
		t.Fatal("uncommitted write from deposed leader survived")
	}
}

func TestPersistenceAcrossRestart(t *testing.T) {
	fabric := mercury.NewFabric()
	dirs := map[string]string{}
	addrs := []string{}
	insts := map[string]*margo.Instance{}
	for i := 0; i < 3; i++ {
		cls, _ := fabric.NewClass(fmt.Sprintf("persist-%d", i))
		inst, err := margo.New(cls, nil)
		if err != nil {
			t.Fatal(err)
		}
		insts[inst.Addr()] = inst
		addrs = append(addrs, inst.Addr())
		dirs[inst.Addr()] = t.TempDir()
	}
	nodes := map[string]*Node{}
	fsms := map[string]*kvFSM{}
	stores := map[string]*FileStore{}
	for _, a := range addrs {
		st, err := NewFileStore(dirs[a], true)
		if err != nil {
			t.Fatal(err)
		}
		fsm := newKVFSM()
		n, err := NewNode(insts[a], "p", addrs, st, fsm, fastRaftCfg())
		if err != nil {
			t.Fatal(err)
		}
		nodes[a] = n
		fsms[a] = fsm
		stores[a] = st
	}
	defer func() {
		for _, inst := range insts {
			inst.Finalize()
		}
	}()

	// Find a leader, commit entries.
	var leader *Node
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) && leader == nil {
		for _, n := range nodes {
			if n.IsLeader() {
				leader = n
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if leader == nil {
		t.Fatal("no leader")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < 10; i++ {
		if _, err := leader.Apply(ctx, []byte(fmt.Sprintf("set p%d v%d", i, i))); err != nil {
			t.Fatal(err)
		}
	}

	// Stop everything, then restart from disk.
	for _, n := range nodes {
		n.Stop()
	}
	for _, s := range stores {
		s.Close()
	}
	nodes2 := map[string]*Node{}
	fsms2 := map[string]*kvFSM{}
	for _, a := range addrs {
		st, err := NewFileStore(dirs[a], true)
		if err != nil {
			t.Fatal(err)
		}
		fsm := newKVFSM()
		n, err := NewNode(insts[a], "p", addrs, st, fsm, fastRaftCfg())
		if err != nil {
			t.Fatal(err)
		}
		nodes2[a] = n
		fsms2[a] = fsm
	}
	defer func() {
		for _, n := range nodes2 {
			n.Stop()
		}
	}()
	// A leader re-emerges and the state machine is recovered after
	// replay (entries are re-applied from the persisted log).
	deadline = time.Now().Add(20 * time.Second)
	var leader2 *Node
	for time.Now().Before(deadline) && leader2 == nil {
		for _, n := range nodes2 {
			if n.IsLeader() {
				leader2 = n
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if leader2 == nil {
		t.Fatal("no leader after restart")
	}
	if _, err := leader2.Apply(ctx, []byte("set post restart")); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if fsms2[leader2.ID()].get("p9") == "v9" {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if fsms2[leader2.ID()].get("p9") != "v9" {
		t.Fatal("pre-restart entries lost")
	}
}

func TestSnapshotAndInstall(t *testing.T) {
	cfg := fastRaftCfg()
	cfg.SnapshotThreshold = 10
	c := newRaftCluster(t, 3, cfg)
	c.waitLeader()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	for i := 0; i < 25; i++ {
		if _, err := c.apply(ctx, []byte(fmt.Sprintf("set s%d v%d", i, i))); err != nil {
			t.Fatal(err)
		}
	}
	// The (current) leader's log must have been compacted.
	leader := c.waitLeader()
	compacted := false
	for i := 0; i < 500 && !compacted; i++ {
		leader = c.waitLeader()
		if c.stores[leader.ID()].FirstIndex() > 1 {
			compacted = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !compacted {
		t.Fatal("log never compacted")
	}

	// A brand-new member must catch up via InstallSnapshot.
	cls, _ := c.fabric.NewClass("raft-late")
	inst, err := margo.New(cls, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Finalize()
	fsm := newKVFSM()
	node, err := NewNode(inst, "g", nil, NewMemoryStore(), fsm, fastRaftCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer node.Stop()
	client := NewClient(c.insts[c.addrs[0]], "g", c.addrs)
	if err := client.AddServer(ctx, inst.Addr()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if fsm.get("s0") == "v0" && fsm.get("s24") == "v24" {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("late joiner never caught up: s0=%q s24=%q", fsm.get("s0"), fsm.get("s24"))
}

func TestMembershipChangeAddRemove(t *testing.T) {
	c := newRaftCluster(t, 3, fastRaftCfg())
	leader := c.waitLeader()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	// Add a fourth member.
	cls, _ := c.fabric.NewClass("raft-new")
	inst, err := margo.New(cls, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Finalize()
	fsm := newKVFSM()
	node, err := NewNode(inst, "g", nil, NewMemoryStore(), fsm, fastRaftCfg())
	if err != nil {
		t.Fatal(err)
	}
	defer node.Stop()
	if err := leader.AddServer(ctx, inst.Addr()); err != nil {
		t.Fatal(err)
	}
	if got := len(leader.Status().Peers); got != 4 {
		t.Fatalf("peers = %d", got)
	}
	if _, err := leader.Apply(ctx, []byte("set joined yes")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if fsm.get("joined") == "yes" {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if fsm.get("joined") != "yes" {
		t.Fatal("new member never received entries")
	}

	// Remove it again.
	if err := leader.RemoveServer(ctx, inst.Addr()); err != nil {
		t.Fatal(err)
	}
	if got := len(leader.Status().Peers); got != 3 {
		t.Fatalf("peers after remove = %d", got)
	}
	// Double-add and double-remove are rejected.
	if err := leader.AddServer(ctx, c.addrs[0]); err == nil {
		t.Fatal("adding existing member succeeded")
	}
	if err := leader.RemoveServer(ctx, inst.Addr()); err == nil {
		t.Fatal("removing non-member succeeded")
	}
}

func TestFileStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileStore(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetState(7, "sm://x"); err != nil {
		t.Fatal(err)
	}
	entries := []LogEntry{
		{Index: 1, Term: 1, Type: EntryNoop},
		{Index: 2, Term: 1, Type: EntryCommand, Data: []byte("a")},
		{Index: 3, Term: 2, Type: EntryCommand, Data: []byte("b")},
	}
	if err := s.Append(entries); err != nil {
		t.Fatal(err)
	}
	if err := s.TruncateFrom(3); err != nil {
		t.Fatal(err)
	}
	if err := s.Append([]LogEntry{{Index: 3, Term: 3, Type: EntryCommand, Data: []byte("c")}}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := NewFileStore(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	term, voted, _ := s2.State()
	if term != 7 || voted != "sm://x" {
		t.Fatalf("state = %d %q", term, voted)
	}
	if s2.LastIndex() != 3 {
		t.Fatalf("last = %d", s2.LastIndex())
	}
	e, err := s2.Entry(3)
	if err != nil || e.Term != 3 || string(e.Data) != "c" {
		t.Fatalf("entry 3 = %+v, %v", e, err)
	}
}

func TestFileStoreSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileStore(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 10; i++ {
		if err := s.Append([]LogEntry{{Index: i, Term: 1, Type: EntryCommand, Data: []byte{byte(i)}}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SaveSnapshot(7, 1, []byte("snapdata")); err != nil {
		t.Fatal(err)
	}
	if s.FirstIndex() != 8 {
		t.Fatalf("first = %d", s.FirstIndex())
	}
	if _, err := s.Entry(5); err != ErrCompacted {
		t.Fatalf("entry 5: %v", err)
	}
	s.Close()
	s2, err := NewFileStore(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	data, idx, term, _ := s2.Snapshot()
	if string(data) != "snapdata" || idx != 7 || term != 1 {
		t.Fatalf("snapshot = %q %d %d", data, idx, term)
	}
	if s2.FirstIndex() != 8 || s2.LastIndex() != 10 {
		t.Fatalf("range = [%d,%d]", s2.FirstIndex(), s2.LastIndex())
	}
}

func TestMemoryStoreAppendGapRejected(t *testing.T) {
	s := NewMemoryStore()
	if err := s.Append([]LogEntry{{Index: 5, Term: 1}}); err == nil {
		t.Fatal("gap append accepted")
	}
}
