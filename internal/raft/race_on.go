//go:build race

package raft

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
