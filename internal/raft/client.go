package raft

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"mochi/internal/clock"
	"mochi/internal/codec"
	"mochi/internal/margo"
)

// Client submits commands to a Raft group from any process, following
// leader hints and retrying across elections.
type Client struct {
	inst  *margo.Instance
	clk   clock.Clock
	group string
	// seeds are addresses of known members.
	seeds []string
	// RetryInterval between attempts (default 50ms).
	RetryInterval time.Duration

	// leaderMu guards leader, the last address that answered (or was
	// hinted) as leader. Caching it across calls keeps the steady state
	// at one RPC per op; without it every call rediscovers the leader
	// by walking the seed list.
	leaderMu sync.Mutex
	leader   string
}

// cachedLeader returns the last known leader address ("" if none).
func (c *Client) cachedLeader() string {
	c.leaderMu.Lock()
	defer c.leaderMu.Unlock()
	return c.leader
}

func (c *Client) storeLeader(addr string) {
	c.leaderMu.Lock()
	c.leader = addr
	c.leaderMu.Unlock()
}

// NewClient creates a client for the group reachable via seeds. Retry
// pacing uses the instance's clock, so clients inside a simulation
// back off on virtual time.
func NewClient(inst *margo.Instance, group string, seeds []string) *Client {
	return &Client{inst: inst, clk: inst.Clock(), group: group, seeds: seeds, RetryInterval: 50 * time.Millisecond}
}

// retryWait blocks for one RetryInterval on the injected clock,
// releasing the timer immediately when ctx fires (a bare time.After
// here leaked one timer per retry for the full interval).
func (c *Client) retryWait(ctx context.Context) bool {
	t := c.clk.NewTimer(c.RetryInterval)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C():
		return true
	}
}

// Apply submits a command, retrying until ctx expires.
func (c *Client) Apply(ctx context.Context, cmd []byte) ([]byte, error) {
	args := applyArgs{Group: c.group, Cmd: cmd}
	payload := codec.Marshal(&args)
	target := c.cachedLeader()
	var lastErr error
	fast := 0
	for {
		candidates := c.seeds
		if target != "" {
			candidates = append([]string{target}, c.seeds...)
		}
		hinted := false
		for _, addr := range candidates {
			out, err := c.inst.Forward(ctx, addr, rpcApply, payload)
			if err != nil {
				lastErr = err
				continue
			}
			var reply applyReply
			if err := codec.Unmarshal(out, &reply); err != nil {
				lastErr = err
				continue
			}
			if reply.OK {
				c.storeLeader(addr)
				return reply.Result, nil
			}
			lastErr = fmt.Errorf("raft: %s", reply.Err)
			if reply.LeaderHint != "" && reply.LeaderHint != addr {
				target = reply.LeaderHint
				c.storeLeader(target)
				hinted = true
				break // try the hinted leader next round
			}
		}
		// A fresh hint retries without sleeping (bounded, so mutually
		// stale hints cannot hot-loop); otherwise pace the retry.
		if hinted && fast < 3 {
			fast++
			continue
		}
		fast = 0
		if !c.retryWait(ctx) {
			if lastErr != nil {
				return nil, fmt.Errorf("%w (last: %v)", ErrTimeout, lastErr)
			}
			return nil, ErrTimeout
		}
	}
}

// Read submits a read-only query over the ReadIndex path (no log
// entry, no fsync), retrying until ctx expires. The group's FSM must
// implement ReaderFSM.
func (c *Client) Read(ctx context.Context, query []byte) ([]byte, error) {
	args := readArgs{Group: c.group, Query: query}
	payload := codec.Marshal(&args)
	target := c.cachedLeader()
	var lastErr error
	fast := 0
	for {
		candidates := c.seeds
		if target != "" {
			candidates = append([]string{target}, c.seeds...)
		}
		hinted := false
		for _, addr := range candidates {
			out, err := c.inst.Forward(ctx, addr, rpcRead, payload)
			if err != nil {
				lastErr = err
				continue
			}
			var reply applyReply
			if err := codec.Unmarshal(out, &reply); err != nil {
				lastErr = err
				continue
			}
			if reply.OK {
				c.storeLeader(addr)
				return reply.Result, nil
			}
			lastErr = fmt.Errorf("raft: %s", reply.Err)
			if strings.Contains(reply.Err, "does not support read-only") {
				return nil, ErrNoReader // terminal: retrying cannot help
			}
			if reply.LeaderHint != "" && reply.LeaderHint != addr {
				target = reply.LeaderHint
				c.storeLeader(target)
				hinted = true
				break // try the hinted leader next round
			}
		}
		// A fresh hint retries without sleeping (bounded, so mutually
		// stale hints cannot hot-loop); otherwise pace the retry.
		if hinted && fast < 3 {
			fast++
			continue
		}
		fast = 0
		if !c.retryWait(ctx) {
			if lastErr != nil {
				return nil, fmt.Errorf("%w (last: %v)", ErrTimeout, lastErr)
			}
			return nil, ErrTimeout
		}
	}
}

// AddServer asks the group to add a member.
func (c *Client) AddServer(ctx context.Context, addr string) error {
	return c.configChange(ctx, addr, false)
}

// RemoveServer asks the group to remove a member.
func (c *Client) RemoveServer(ctx context.Context, addr string) error {
	return c.configChange(ctx, addr, true)
}

func (c *Client) configChange(ctx context.Context, addr string, remove bool) error {
	args := configChangeArgs{Group: c.group, Addr: addr, Remove: remove}
	payload := codec.Marshal(&args)
	var lastErr error
	for {
		for _, seed := range c.seeds {
			out, err := c.inst.Forward(ctx, seed, rpcConfigChange, payload)
			if err != nil {
				lastErr = err
				continue
			}
			var reply applyReply
			if err := codec.Unmarshal(out, &reply); err != nil {
				lastErr = err
				continue
			}
			if reply.OK {
				return nil
			}
			lastErr = fmt.Errorf("raft: %s", reply.Err)
			// Config errors other than leadership are terminal.
			if !strings.Contains(reply.Err, "not the leader") && !strings.Contains(reply.Err, "no known leader") {
				return lastErr
			}
		}
		if !c.retryWait(ctx) {
			return fmt.Errorf("%w (last: %v)", ErrTimeout, lastErr)
		}
	}
}

// Status fetches the protocol status of the member at addr.
func (c *Client) Status(ctx context.Context, addr string) (Status, error) {
	out, err := c.inst.Forward(ctx, addr, rpcStatus, codec.Marshal(&statusArgs{Group: c.group}))
	if err != nil {
		return Status{}, err
	}
	var reply statusReply
	if err := codec.Unmarshal(out, &reply); err != nil {
		return Status{}, err
	}
	if !reply.OK {
		return Status{}, fmt.Errorf("raft: no group %q at %s", c.group, addr)
	}
	return Status{
		ID:          addr,
		Role:        Role(reply.Role),
		Term:        reply.Term,
		Leader:      reply.Leader,
		CommitIndex: reply.CommitIndex,
		LastApplied: reply.LastApplied,
		Peers:       reply.Peers,
	}, nil
}
