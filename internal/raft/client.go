package raft

import (
	"context"
	"fmt"
	"strings"
	"time"

	"mochi/internal/codec"
	"mochi/internal/margo"
)

// Client submits commands to a Raft group from any process, following
// leader hints and retrying across elections.
type Client struct {
	inst  *margo.Instance
	group string
	// seeds are addresses of known members.
	seeds []string
	// RetryInterval between attempts (default 50ms).
	RetryInterval time.Duration
}

// NewClient creates a client for the group reachable via seeds.
func NewClient(inst *margo.Instance, group string, seeds []string) *Client {
	return &Client{inst: inst, group: group, seeds: seeds, RetryInterval: 50 * time.Millisecond}
}

// Apply submits a command, retrying until ctx expires.
func (c *Client) Apply(ctx context.Context, cmd []byte) ([]byte, error) {
	args := applyArgs{Group: c.group, Cmd: cmd}
	payload := codec.Marshal(&args)
	target := ""
	var lastErr error
	for {
		candidates := c.seeds
		if target != "" {
			candidates = append([]string{target}, c.seeds...)
		}
		for _, addr := range candidates {
			out, err := c.inst.Forward(ctx, addr, rpcApply, payload)
			if err != nil {
				lastErr = err
				continue
			}
			var reply applyReply
			if err := codec.Unmarshal(out, &reply); err != nil {
				lastErr = err
				continue
			}
			if reply.OK {
				return reply.Result, nil
			}
			lastErr = fmt.Errorf("raft: %s", reply.Err)
			if reply.LeaderHint != "" && reply.LeaderHint != addr {
				target = reply.LeaderHint
				break // try the hinted leader next round, immediately
			}
		}
		select {
		case <-ctx.Done():
			if lastErr != nil {
				return nil, fmt.Errorf("%w (last: %v)", ErrTimeout, lastErr)
			}
			return nil, ErrTimeout
		case <-time.After(c.RetryInterval):
		}
	}
}

// AddServer asks the group to add a member.
func (c *Client) AddServer(ctx context.Context, addr string) error {
	return c.configChange(ctx, addr, false)
}

// RemoveServer asks the group to remove a member.
func (c *Client) RemoveServer(ctx context.Context, addr string) error {
	return c.configChange(ctx, addr, true)
}

func (c *Client) configChange(ctx context.Context, addr string, remove bool) error {
	args := configChangeArgs{Group: c.group, Addr: addr, Remove: remove}
	payload := codec.Marshal(&args)
	var lastErr error
	for {
		for _, seed := range c.seeds {
			out, err := c.inst.Forward(ctx, seed, rpcConfigChange, payload)
			if err != nil {
				lastErr = err
				continue
			}
			var reply applyReply
			if err := codec.Unmarshal(out, &reply); err != nil {
				lastErr = err
				continue
			}
			if reply.OK {
				return nil
			}
			lastErr = fmt.Errorf("raft: %s", reply.Err)
			// Config errors other than leadership are terminal.
			if !strings.Contains(reply.Err, "not the leader") && !strings.Contains(reply.Err, "no known leader") {
				return lastErr
			}
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("%w (last: %v)", ErrTimeout, lastErr)
		case <-time.After(c.RetryInterval):
		}
	}
}

// Status fetches the protocol status of the member at addr.
func (c *Client) Status(ctx context.Context, addr string) (Status, error) {
	out, err := c.inst.Forward(ctx, addr, rpcStatus, codec.Marshal(&statusArgs{Group: c.group}))
	if err != nil {
		return Status{}, err
	}
	var reply statusReply
	if err := codec.Unmarshal(out, &reply); err != nil {
		return Status{}, err
	}
	if !reply.OK {
		return Status{}, fmt.Errorf("raft: no group %q at %s", c.group, addr)
	}
	return Status{
		ID:          addr,
		Role:        Role(reply.Role),
		Term:        reply.Term,
		Leader:      reply.Leader,
		CommitIndex: reply.CommitIndex,
		LastApplied: reply.LastApplied,
		Peers:       reply.Peers,
	}, nil
}
