package raft

import (
	"context"
	"fmt"
	"strings"
	"time"

	"mochi/internal/clock"
	"mochi/internal/codec"
	"mochi/internal/margo"
)

// Client submits commands to a Raft group from any process, following
// leader hints and retrying across elections.
type Client struct {
	inst  *margo.Instance
	clk   clock.Clock
	group string
	// seeds are addresses of known members.
	seeds []string
	// RetryInterval between attempts (default 50ms).
	RetryInterval time.Duration
}

// NewClient creates a client for the group reachable via seeds. Retry
// pacing uses the instance's clock, so clients inside a simulation
// back off on virtual time.
func NewClient(inst *margo.Instance, group string, seeds []string) *Client {
	return &Client{inst: inst, clk: inst.Clock(), group: group, seeds: seeds, RetryInterval: 50 * time.Millisecond}
}

// retryWait blocks for one RetryInterval on the injected clock,
// releasing the timer immediately when ctx fires (a bare time.After
// here leaked one timer per retry for the full interval).
func (c *Client) retryWait(ctx context.Context) bool {
	t := c.clk.NewTimer(c.RetryInterval)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C():
		return true
	}
}

// Apply submits a command, retrying until ctx expires.
func (c *Client) Apply(ctx context.Context, cmd []byte) ([]byte, error) {
	args := applyArgs{Group: c.group, Cmd: cmd}
	payload := codec.Marshal(&args)
	target := ""
	var lastErr error
	for {
		candidates := c.seeds
		if target != "" {
			candidates = append([]string{target}, c.seeds...)
		}
		for _, addr := range candidates {
			out, err := c.inst.Forward(ctx, addr, rpcApply, payload)
			if err != nil {
				lastErr = err
				continue
			}
			var reply applyReply
			if err := codec.Unmarshal(out, &reply); err != nil {
				lastErr = err
				continue
			}
			if reply.OK {
				return reply.Result, nil
			}
			lastErr = fmt.Errorf("raft: %s", reply.Err)
			if reply.LeaderHint != "" && reply.LeaderHint != addr {
				target = reply.LeaderHint
				break // try the hinted leader next round, immediately
			}
		}
		if !c.retryWait(ctx) {
			if lastErr != nil {
				return nil, fmt.Errorf("%w (last: %v)", ErrTimeout, lastErr)
			}
			return nil, ErrTimeout
		}
	}
}

// AddServer asks the group to add a member.
func (c *Client) AddServer(ctx context.Context, addr string) error {
	return c.configChange(ctx, addr, false)
}

// RemoveServer asks the group to remove a member.
func (c *Client) RemoveServer(ctx context.Context, addr string) error {
	return c.configChange(ctx, addr, true)
}

func (c *Client) configChange(ctx context.Context, addr string, remove bool) error {
	args := configChangeArgs{Group: c.group, Addr: addr, Remove: remove}
	payload := codec.Marshal(&args)
	var lastErr error
	for {
		for _, seed := range c.seeds {
			out, err := c.inst.Forward(ctx, seed, rpcConfigChange, payload)
			if err != nil {
				lastErr = err
				continue
			}
			var reply applyReply
			if err := codec.Unmarshal(out, &reply); err != nil {
				lastErr = err
				continue
			}
			if reply.OK {
				return nil
			}
			lastErr = fmt.Errorf("raft: %s", reply.Err)
			// Config errors other than leadership are terminal.
			if !strings.Contains(reply.Err, "not the leader") && !strings.Contains(reply.Err, "no known leader") {
				return lastErr
			}
		}
		if !c.retryWait(ctx) {
			return fmt.Errorf("%w (last: %v)", ErrTimeout, lastErr)
		}
	}
}

// Status fetches the protocol status of the member at addr.
func (c *Client) Status(ctx context.Context, addr string) (Status, error) {
	out, err := c.inst.Forward(ctx, addr, rpcStatus, codec.Marshal(&statusArgs{Group: c.group}))
	if err != nil {
		return Status{}, err
	}
	var reply statusReply
	if err := codec.Unmarshal(out, &reply); err != nil {
		return Status{}, err
	}
	if !reply.OK {
		return Status{}, fmt.Errorf("raft: no group %q at %s", c.group, addr)
	}
	return Status{
		ID:          addr,
		Role:        Role(reply.Role),
		Term:        reply.Term,
		Leader:      reply.Leader,
		CommitIndex: reply.CommitIndex,
		LastApplied: reply.LastApplied,
		Peers:       reply.Peers,
	}, nil
}
