package raft

import (
	"testing"
	"time"

	"mochi/internal/margo"
	"mochi/internal/mercury"
)

// loneNode builds a node with huge election timeouts so the protocol
// never interferes while we drive the RPC handlers directly.
func loneNode(t *testing.T, entries []LogEntry, term uint64) *Node {
	t.Helper()
	f := mercury.NewFabric()
	cls, err := f.NewClass("rules")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := margo.New(cls, nil)
	if err != nil {
		t.Fatal(err)
	}
	store := NewMemoryStore()
	if err := store.SetState(term, ""); err != nil {
		t.Fatal(err)
	}
	if err := store.Append(entries); err != nil {
		t.Fatal(err)
	}
	n, err := NewNode(inst, "rules", []string{inst.Addr(), "sm://peer-a", "sm://peer-b"}, store, newKVFSM(), Config{
		ElectionTimeoutMin: time.Hour,
		ElectionTimeoutMax: 2 * time.Hour,
		HeartbeatInterval:  time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		n.Stop()
		inst.Finalize()
	})
	return n
}

func entriesUpTo(n int, term uint64) []LogEntry {
	out := make([]LogEntry, n)
	for i := range out {
		out[i] = LogEntry{Index: uint64(i + 1), Term: term, Type: EntryCommand, Data: []byte{byte(i)}}
	}
	return out
}

// TestVoteRules drives onRequestVote through the Raft §5.2/§5.4.1
// rule table.
func TestVoteRules(t *testing.T) {
	base := entriesUpTo(3, 2) // log: 3 entries at term 2; current term 2
	cases := []struct {
		name    string
		args    requestVoteArgs
		granted bool
	}{
		{"stale term rejected",
			requestVoteArgs{Term: 1, Candidate: "sm://c", LastLogIndex: 10, LastLogTerm: 10}, false},
		{"up-to-date candidate granted",
			requestVoteArgs{Term: 3, Candidate: "sm://c", LastLogIndex: 3, LastLogTerm: 2}, true},
		{"longer log granted",
			requestVoteArgs{Term: 3, Candidate: "sm://c", LastLogIndex: 9, LastLogTerm: 2}, true},
		{"higher last term granted even if shorter",
			requestVoteArgs{Term: 3, Candidate: "sm://c", LastLogIndex: 1, LastLogTerm: 5}, true},
		{"shorter log same term rejected",
			requestVoteArgs{Term: 3, Candidate: "sm://c", LastLogIndex: 2, LastLogTerm: 2}, false},
		{"older last term rejected",
			requestVoteArgs{Term: 3, Candidate: "sm://c", LastLogIndex: 99, LastLogTerm: 1}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			n := loneNode(t, base, 2)
			reply := n.onRequestVote(&c.args)
			if reply.Granted != c.granted {
				t.Fatalf("granted = %v, want %v (reply term %d)", reply.Granted, c.granted, reply.Term)
			}
		})
	}
}

// TestVoteOncePerTerm: a node grants at most one vote per term, but
// re-grants to the same candidate (needed for retried requests).
func TestVoteOncePerTerm(t *testing.T) {
	n := loneNode(t, nil, 0)
	a := requestVoteArgs{Term: 5, Candidate: "sm://alice", LastLogIndex: 0, LastLogTerm: 0}
	if !n.onRequestVote(&a).Granted {
		t.Fatal("first vote denied")
	}
	bArgs := requestVoteArgs{Term: 5, Candidate: "sm://bob", LastLogIndex: 9, LastLogTerm: 9}
	if n.onRequestVote(&bArgs).Granted {
		t.Fatal("second candidate granted in same term")
	}
	if !n.onRequestVote(&a).Granted {
		t.Fatal("retry by the voted-for candidate denied")
	}
	// A new term resets the vote.
	cArgs := requestVoteArgs{Term: 6, Candidate: "sm://bob", LastLogIndex: 9, LastLogTerm: 9}
	if !n.onRequestVote(&cArgs).Granted {
		t.Fatal("vote in new term denied")
	}
}

// TestAppendEntriesRules drives onAppendEntries through the log
// consistency table (§5.3).
func TestAppendEntriesRules(t *testing.T) {
	mk := func() *Node { return loneNode(t, entriesUpTo(3, 2), 2) }

	t.Run("stale term rejected", func(t *testing.T) {
		n := mk()
		r := n.onAppendEntries(&appendEntriesArgs{Term: 1, Leader: "sm://l", PrevLogIndex: 3, PrevLogTerm: 2})
		if r.Success {
			t.Fatal("accepted stale leader")
		}
	})
	t.Run("matching prev accepts", func(t *testing.T) {
		n := mk()
		r := n.onAppendEntries(&appendEntriesArgs{
			Term: 2, Leader: "sm://l", PrevLogIndex: 3, PrevLogTerm: 2,
			Entries:      []LogEntry{{Index: 4, Term: 2, Type: EntryCommand, Data: []byte("x")}},
			LeaderCommit: 4,
		})
		if !r.Success {
			t.Fatal("rejected valid append")
		}
		if n.Status().CommitIndex != 4 {
			t.Fatalf("commit = %d", n.Status().CommitIndex)
		}
	})
	t.Run("gap returns conflict hint", func(t *testing.T) {
		n := mk()
		r := n.onAppendEntries(&appendEntriesArgs{Term: 2, Leader: "sm://l", PrevLogIndex: 9, PrevLogTerm: 2})
		if r.Success {
			t.Fatal("accepted gapped append")
		}
		if r.ConflictIndex != 4 {
			t.Fatalf("conflict hint = %d, want 4 (last+1)", r.ConflictIndex)
		}
	})
	t.Run("term mismatch truncates on overwrite", func(t *testing.T) {
		n := mk()
		// Leader overwrites index 2 and 3 with a newer term.
		r := n.onAppendEntries(&appendEntriesArgs{
			Term: 3, Leader: "sm://l", PrevLogIndex: 1, PrevLogTerm: 2,
			Entries: []LogEntry{
				{Index: 2, Term: 3, Type: EntryCommand, Data: []byte("new2")},
				{Index: 3, Term: 3, Type: EntryCommand, Data: []byte("new3")},
			},
		})
		if !r.Success {
			t.Fatal("overwrite rejected")
		}
		e, err := n.store.Entry(3)
		if err != nil || e.Term != 3 || string(e.Data) != "new3" {
			t.Fatalf("entry 3 = %+v, %v", e, err)
		}
	})
	t.Run("duplicate append is idempotent", func(t *testing.T) {
		n := mk()
		args := &appendEntriesArgs{
			Term: 2, Leader: "sm://l", PrevLogIndex: 2, PrevLogTerm: 2,
			Entries: []LogEntry{{Index: 3, Term: 2, Type: EntryCommand, Data: []byte{2}}},
		}
		if !n.onAppendEntries(args).Success || !n.onAppendEntries(args).Success {
			t.Fatal("idempotent append failed")
		}
		if n.store.LastIndex() != 3 {
			t.Fatalf("last = %d", n.store.LastIndex())
		}
	})
	t.Run("append makes follower adopt leader", func(t *testing.T) {
		n := mk()
		n.onAppendEntries(&appendEntriesArgs{Term: 4, Leader: "sm://new-leader", PrevLogIndex: 3, PrevLogTerm: 2})
		st := n.Status()
		if st.Leader != "sm://new-leader" || st.Term != 4 || st.Role != Follower {
			t.Fatalf("status = %+v", st)
		}
	})
}
