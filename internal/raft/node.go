package raft

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"mochi/internal/clock"
	"mochi/internal/codec"
	"mochi/internal/margo"
	"mochi/internal/mercury"
)

// Config tunes protocol timing.
type Config struct {
	// ElectionTimeoutMin/Max bound the randomized election timeout
	// (defaults 150ms/300ms).
	ElectionTimeoutMin time.Duration
	ElectionTimeoutMax time.Duration
	// HeartbeatInterval is the leader's idle append cadence (default
	// ElectionTimeoutMin/3).
	HeartbeatInterval time.Duration
	// SnapshotThreshold triggers automatic compaction after this many
	// applied entries since the last snapshot (0 disables).
	SnapshotThreshold uint64
	// MaxEntriesPerAppend caps entries per AppendEntries RPC
	// (default 64).
	MaxEntriesPerAppend int
}

func (c Config) withDefaults() Config {
	if c.ElectionTimeoutMin <= 0 {
		c.ElectionTimeoutMin = 150 * time.Millisecond
	}
	if c.ElectionTimeoutMax <= c.ElectionTimeoutMin {
		c.ElectionTimeoutMax = 2 * c.ElectionTimeoutMin
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = c.ElectionTimeoutMin / 3
	}
	if c.MaxEntriesPerAppend <= 0 {
		c.MaxEntriesPerAppend = 64
	}
	return c
}

// Status is a snapshot of a node's protocol state.
type Status struct {
	ID          string
	Role        Role
	Term        uint64
	Leader      string
	CommitIndex uint64
	LastApplied uint64
	Peers       []string
}

type applyResult struct {
	result []byte
	term   uint64
}

type raftRegistry struct {
	mu    sync.Mutex
	nodes map[string]*Node
}

var raftRegistries sync.Map // *margo.Instance -> *raftRegistry

func raftRegistryFor(inst *margo.Instance) (*raftRegistry, error) {
	if r, ok := raftRegistries.Load(inst); ok {
		return r.(*raftRegistry), nil
	}
	r := &raftRegistry{nodes: map[string]*Node{}}
	actual, loaded := raftRegistries.LoadOrStore(inst, r)
	reg := actual.(*raftRegistry)
	if !loaded {
		handlers := map[string]margo.Handler{
			rpcRequestVote:     reg.handleRequestVote,
			rpcAppendEntries:   reg.handleAppendEntries,
			rpcInstallSnapshot: reg.handleInstallSnapshot,
			rpcApply:           reg.handleApply,
			rpcConfigChange:    reg.handleConfigChange,
			rpcStatus:          reg.handleStatus,
		}
		for name, h := range handlers {
			if _, err := inst.Register(name, h); err != nil {
				return nil, err
			}
		}
	}
	return reg, nil
}

func (r *raftRegistry) lookup(group string) *Node {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nodes[group]
}

// Node is one member of a Raft group.
type Node struct {
	inst  *margo.Instance
	clk   clock.Clock
	group string
	id    string
	store Store
	fsm   FSM
	cfg   Config

	mu               sync.Mutex
	role             Role
	term             uint64
	votedFor         string
	leader           string
	peers            []string
	commitIndex      uint64
	lastApplied      uint64
	nextIndex        map[string]uint64
	matchIndex       map[string]uint64
	waiters          map[uint64]chan applyResult
	pendingConfig    uint64 // index of uncommitted config entry, 0 if none
	appliedSinceSnap uint64
	stopped          bool
	leaderGen        uint64 // increments on every leadership change

	electionReset chan struct{}
	applyNotify   chan struct{}
	replNotify    map[string]chan struct{}

	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	rng   *rand.Rand
	rngMu sync.Mutex
}

// NewNode creates and starts a Raft member. peers is the initial
// configuration (must be identical on every member and include this
// node's address). A store with existing state resumes from it.
func NewNode(inst *margo.Instance, group string, peers []string, store Store, fsm FSM, cfg Config) (*Node, error) {
	reg, err := raftRegistryFor(inst)
	if err != nil {
		return nil, err
	}
	n := &Node{
		inst:          inst,
		clk:           inst.Clock(),
		group:         group,
		id:            inst.Addr(),
		store:         store,
		fsm:           fsm,
		cfg:           cfg.withDefaults(),
		role:          Follower,
		peers:         append([]string(nil), peers...),
		waiters:       map[uint64]chan applyResult{},
		nextIndex:     map[string]uint64{},
		matchIndex:    map[string]uint64{},
		electionReset: make(chan struct{}, 1),
		applyNotify:   make(chan struct{}, 1),
		replNotify:    map[string]chan struct{}{},
		stopCh:        make(chan struct{}),
		rng:           rand.New(rand.NewSource(int64(mercury.NameToID(inst.Addr() + "/" + group)))),
	}
	// Recover persistent state.
	term, voted, err := store.State()
	if err != nil {
		return nil, err
	}
	n.term, n.votedFor = term, voted
	if data, idx, _, err := store.Snapshot(); err == nil && idx > 0 {
		var env snapshotEnvelope
		if err := codec.Unmarshal(data, &env); err != nil {
			return nil, fmt.Errorf("raft: corrupt snapshot: %w", err)
		}
		if err := fsm.Restore(env.FSM); err != nil {
			return nil, err
		}
		n.peers = env.Peers
		n.commitIndex, n.lastApplied = idx, idx
	}
	// Replay configuration entries from the log.
	first, last := store.FirstIndex(), store.LastIndex()
	for i := first; i <= last && i >= first; i++ {
		e, err := store.Entry(i)
		if err != nil {
			break
		}
		if e.Type == EntryConfig {
			var ps []string
			if json.Unmarshal(e.Data, &ps) == nil {
				n.peers = ps
			}
		}
	}

	reg.mu.Lock()
	if _, dup := reg.nodes[group]; dup {
		reg.mu.Unlock()
		return nil, fmt.Errorf("raft: group %q already exists on %s", group, n.id)
	}
	reg.nodes[group] = n
	reg.mu.Unlock()

	n.wg.Add(2)
	go n.electionLoop()
	go n.applier()
	return n, nil
}

// ID returns this node's address.
func (n *Node) ID() string { return n.id }

// Group returns the group name.
func (n *Node) Group() string { return n.group }

// Status returns a snapshot of protocol state.
func (n *Node) Status() Status {
	n.mu.Lock()
	defer n.mu.Unlock()
	return Status{
		ID:          n.id,
		Role:        n.role,
		Term:        n.term,
		Leader:      n.leader,
		CommitIndex: n.commitIndex,
		LastApplied: n.lastApplied,
		Peers:       append([]string(nil), n.peers...),
	}
}

// Leader returns the current leader hint ("" if unknown).
func (n *Node) Leader() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.leader
}

// IsLeader reports whether this node currently leads.
func (n *Node) IsLeader() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role == Leader
}

// Stop halts the node. The store is not closed.
func (n *Node) Stop() {
	n.stopOnce.Do(func() {
		n.mu.Lock()
		n.stopped = true
		n.leaderGen++ // terminates replicators
		for idx, ch := range n.waiters {
			close(ch)
			delete(n.waiters, idx)
		}
		n.mu.Unlock()
		close(n.stopCh)
	})
	n.wg.Wait()
	if r, ok := raftRegistries.Load(n.inst); ok {
		reg := r.(*raftRegistry)
		reg.mu.Lock()
		if reg.nodes[n.group] == n {
			delete(reg.nodes, n.group)
		}
		reg.mu.Unlock()
	}
}

// --- election ---

func (n *Node) electionTimeout() time.Duration {
	n.rngMu.Lock()
	defer n.rngMu.Unlock()
	span := n.cfg.ElectionTimeoutMax - n.cfg.ElectionTimeoutMin
	return n.cfg.ElectionTimeoutMin + time.Duration(n.rng.Int63n(int64(span)+1))
}

func (n *Node) electionLoop() {
	defer n.wg.Done()
	for {
		timer := n.clk.NewTimer(n.electionTimeout())
		select {
		case <-n.stopCh:
			timer.Stop()
			return
		case <-n.electionReset:
			timer.Stop()
			continue
		case <-timer.C():
			n.maybeStartElection()
		}
	}
}

func (n *Node) resetElectionTimer() {
	select {
	case n.electionReset <- struct{}{}:
	default:
	}
}

func (n *Node) inConfigLocked() bool {
	for _, p := range n.peers {
		if p == n.id {
			return true
		}
	}
	return false
}

func (n *Node) maybeStartElection() {
	n.mu.Lock()
	if n.stopped || n.role == Leader || !n.inConfigLocked() {
		n.mu.Unlock()
		return
	}
	n.role = Candidate
	n.term++
	n.votedFor = n.id
	n.leader = ""
	term := n.term
	if err := n.store.SetState(n.term, n.votedFor); err != nil {
		n.mu.Unlock()
		return
	}
	lastIdx := n.store.LastIndex()
	lastTerm, _ := n.store.Term(lastIdx)
	peers := append([]string(nil), n.peers...)
	n.mu.Unlock()

	votes := 1 // self
	needed := len(peers)/2 + 1
	var voteMu sync.Mutex
	won := make(chan struct{}, 1)
	if votes >= needed {
		n.becomeLeader(term)
		return
	}
	args := requestVoteArgs{
		Group:        n.group,
		Term:         term,
		Candidate:    n.id,
		LastLogIndex: lastIdx,
		LastLogTerm:  lastTerm,
	}
	payload := codec.Marshal(&args)
	for _, p := range peers {
		if p == n.id {
			continue
		}
		go func(p string) {
			ctx, cancel := context.WithTimeout(context.Background(), n.cfg.ElectionTimeoutMin)
			defer cancel()
			out, err := n.inst.Forward(ctx, p, rpcRequestVote, payload)
			if err != nil {
				return
			}
			var reply requestVoteReply
			if err := codec.Unmarshal(out, &reply); err != nil {
				return
			}
			if reply.Term > term {
				n.stepDown(reply.Term, "")
				return
			}
			if reply.Granted {
				voteMu.Lock()
				votes++
				reached := votes == needed
				voteMu.Unlock()
				if reached {
					select {
					case won <- struct{}{}:
					default:
					}
				}
			}
		}(p)
	}
	// Wait for a majority within the election timeout; otherwise a
	// new election fires from the loop.
	timer := n.clk.NewTimer(n.cfg.ElectionTimeoutMin)
	defer timer.Stop()
	select {
	case <-won:
		n.becomeLeader(term)
	case <-timer.C():
	case <-n.stopCh:
	}
}

func (n *Node) becomeLeader(term uint64) {
	n.mu.Lock()
	if n.stopped || n.term != term || n.role != Candidate {
		n.mu.Unlock()
		return
	}
	n.role = Leader
	n.leader = n.id
	n.leaderGen++
	gen := n.leaderGen
	last := n.store.LastIndex()
	for _, p := range n.peers {
		n.nextIndex[p] = last + 1
		n.matchIndex[p] = 0
	}
	peers := append([]string(nil), n.peers...)
	n.mu.Unlock()

	// Commit entries from previous terms by appending a no-op at the
	// current term (§5.4.2 of the Raft paper).
	n.appendLocal(LogEntry{Type: EntryNoop})

	for _, p := range peers {
		if p != n.id {
			n.startReplicator(p, term, gen)
		}
	}
	// Single-node groups commit immediately.
	n.advanceCommit()
}

// stepDown transitions to follower at the given (higher) term.
func (n *Node) stepDown(term uint64, leader string) {
	n.mu.Lock()
	if term > n.term {
		n.term = term
		n.votedFor = ""
		_ = n.store.SetState(n.term, n.votedFor)
	}
	if n.role == Leader {
		n.leaderGen++
	}
	n.role = Follower
	if leader != "" {
		n.leader = leader
	}
	n.mu.Unlock()
	n.resetElectionTimer()
}

// --- log append / replication ---

// appendLocal appends an entry at the leader and returns its index.
func (n *Node) appendLocal(e LogEntry) uint64 {
	n.mu.Lock()
	e.Index = n.store.LastIndex() + 1
	e.Term = n.term
	if err := n.store.Append([]LogEntry{e}); err != nil {
		n.mu.Unlock()
		return 0
	}
	n.matchIndex[n.id] = e.Index
	if e.Type == EntryConfig {
		var ps []string
		if json.Unmarshal(e.Data, &ps) == nil {
			n.applyConfigLocked(ps, e.Index)
		}
	}
	n.mu.Unlock()
	n.notifyReplicators()
	return e.Index
}

// applyConfigLocked switches to a new peer set immediately (Raft uses
// the latest config in the log, committed or not).
func (n *Node) applyConfigLocked(ps []string, index uint64) {
	old := n.peers
	n.peers = append([]string(nil), ps...)
	n.pendingConfig = index
	if n.role == Leader {
		last := n.store.LastIndex()
		for _, p := range ps {
			if _, ok := n.nextIndex[p]; !ok {
				n.nextIndex[p] = last + 1
				n.matchIndex[p] = 0
			}
		}
		gen := n.leaderGen
		term := n.term
		for _, p := range ps {
			if p == n.id {
				continue
			}
			found := false
			for _, o := range old {
				if o == p {
					found = true
				}
			}
			if !found {
				go n.startReplicator(p, term, gen)
			}
		}
	}
}

func (n *Node) notifyReplicators() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, ch := range n.replNotify {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

func (n *Node) startReplicator(peer string, term uint64, gen uint64) {
	n.mu.Lock()
	if _, ok := n.replNotify[peer]; ok {
		n.mu.Unlock()
		return
	}
	ch := make(chan struct{}, 1)
	n.replNotify[peer] = ch
	n.mu.Unlock()
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		defer func() {
			n.mu.Lock()
			if n.replNotify[peer] == ch {
				delete(n.replNotify, peer)
			}
			n.mu.Unlock()
		}()
		tick := n.clk.NewTicker(n.cfg.HeartbeatInterval)
		defer tick.Stop()
		for {
			n.mu.Lock()
			live := !n.stopped && n.role == Leader && n.term == term && n.leaderGen == gen
			inCfg := false
			for _, p := range n.peers {
				if p == peer {
					inCfg = true
				}
			}
			n.mu.Unlock()
			if !live || !inCfg {
				return
			}
			n.replicateOnce(peer, term)
			select {
			case <-tick.C():
			case <-ch:
			case <-n.stopCh:
				return
			}
		}
	}()
}

// replicateOnce sends one AppendEntries (or InstallSnapshot) to peer.
func (n *Node) replicateOnce(peer string, term uint64) {
	n.mu.Lock()
	if n.role != Leader || n.term != term {
		n.mu.Unlock()
		return
	}
	next := n.nextIndex[peer]
	if next == 0 {
		next = n.store.LastIndex() + 1
		n.nextIndex[peer] = next
	}
	first := n.store.FirstIndex()
	if next < first {
		// Peer is too far behind: ship the snapshot.
		data, sidx, sterm, err := n.store.Snapshot()
		if err != nil || sidx == 0 {
			n.mu.Unlock()
			return
		}
		var env snapshotEnvelope
		if codec.Unmarshal(data, &env) != nil {
			n.mu.Unlock()
			return
		}
		args := installSnapshotArgs{
			Group:     n.group,
			Term:      term,
			Leader:    n.id,
			LastIndex: sidx,
			LastTerm:  sterm,
			Peers:     env.Peers,
			Data:      data,
		}
		n.mu.Unlock()
		ctx, cancel := context.WithTimeout(context.Background(), 4*n.cfg.HeartbeatInterval)
		defer cancel()
		out, err := n.inst.Forward(ctx, peer, rpcInstallSnapshot, codec.Marshal(&args))
		if err != nil {
			return
		}
		var reply appendEntriesReply
		if codec.Unmarshal(out, &reply) != nil {
			return
		}
		if reply.Term > term {
			n.stepDown(reply.Term, "")
			return
		}
		n.mu.Lock()
		if n.role == Leader && n.term == term {
			n.nextIndex[peer] = sidx + 1
			if sidx > n.matchIndex[peer] {
				n.matchIndex[peer] = sidx
			}
		}
		n.mu.Unlock()
		return
	}
	prev := next - 1
	prevTerm, err := n.store.Term(prev)
	if err != nil {
		n.mu.Unlock()
		return
	}
	last := n.store.LastIndex()
	hi := last
	if hi >= next+uint64(n.cfg.MaxEntriesPerAppend) {
		hi = next + uint64(n.cfg.MaxEntriesPerAppend) - 1
	}
	var entries []LogEntry
	if hi >= next {
		entries, err = n.store.Entries(next, hi)
		if err != nil {
			n.mu.Unlock()
			return
		}
	}
	args := appendEntriesArgs{
		Group:        n.group,
		Term:         term,
		Leader:       n.id,
		PrevLogIndex: prev,
		PrevLogTerm:  prevTerm,
		Entries:      entries,
		LeaderCommit: n.commitIndex,
	}
	n.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), 2*n.cfg.HeartbeatInterval)
	defer cancel()
	out, err := n.inst.Forward(ctx, peer, rpcAppendEntries, codec.Marshal(&args))
	if err != nil {
		return
	}
	var reply appendEntriesReply
	if codec.Unmarshal(out, &reply) != nil {
		return
	}
	if reply.Term > term {
		n.stepDown(reply.Term, "")
		return
	}
	n.mu.Lock()
	if n.role != Leader || n.term != term {
		n.mu.Unlock()
		return
	}
	if reply.Success {
		newMatch := prev + uint64(len(entries))
		if newMatch > n.matchIndex[peer] {
			n.matchIndex[peer] = newMatch
		}
		n.nextIndex[peer] = newMatch + 1
		more := n.store.LastIndex() > newMatch
		n.mu.Unlock()
		n.advanceCommit()
		if more {
			n.mu.Lock()
			if ch, ok := n.replNotify[peer]; ok {
				select {
				case ch <- struct{}{}:
				default:
				}
			}
			n.mu.Unlock()
		}
		return
	}
	// Conflict: back off using the follower's hint.
	ni := reply.ConflictIndex
	if ni == 0 {
		ni = 1
	}
	if ni < n.nextIndex[peer] {
		n.nextIndex[peer] = ni
	} else if n.nextIndex[peer] > 1 {
		n.nextIndex[peer]--
	}
	if ch, ok := n.replNotify[peer]; ok {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	n.mu.Unlock()
}

// advanceCommit moves commitIndex to the highest majority-replicated
// index of the current term.
func (n *Node) advanceCommit() {
	n.mu.Lock()
	if n.role != Leader {
		n.mu.Unlock()
		return
	}
	matches := make([]uint64, 0, len(n.peers))
	for _, p := range n.peers {
		if p == n.id {
			matches = append(matches, n.store.LastIndex())
		} else {
			matches = append(matches, n.matchIndex[p])
		}
	}
	sort.Slice(matches, func(i, j int) bool { return matches[i] > matches[j] })
	if len(matches) == 0 {
		n.mu.Unlock()
		return
	}
	candidate := matches[len(matches)/2]
	changed := false
	if candidate > n.commitIndex {
		t, err := n.store.Term(candidate)
		if err == nil && t == n.term {
			n.commitIndex = candidate
			changed = true
		}
	}
	if changed && n.pendingConfig > 0 && n.commitIndex >= n.pendingConfig {
		n.pendingConfig = 0
		// If we were removed by the committed config, step down.
		if !n.inConfigLocked() {
			n.role = Follower
			n.leaderGen++
		}
	}
	n.mu.Unlock()
	if changed {
		select {
		case n.applyNotify <- struct{}{}:
		default:
		}
		n.notifyReplicators() // propagate the new commit index promptly
	}
}

// --- apply path ---

func (n *Node) applier() {
	defer n.wg.Done()
	for {
		select {
		case <-n.stopCh:
			return
		case <-n.applyNotify:
			n.applyCommitted()
		}
	}
}

func (n *Node) applyCommitted() {
	for {
		n.mu.Lock()
		if n.lastApplied >= n.commitIndex {
			n.mu.Unlock()
			return
		}
		idx := n.lastApplied + 1
		e, err := n.store.Entry(idx)
		if err != nil {
			n.mu.Unlock()
			return
		}
		n.mu.Unlock()

		var result []byte
		if e.Type == EntryCommand {
			result = n.fsm.Apply(e.Index, e.Data)
		}

		n.mu.Lock()
		n.lastApplied = idx
		n.appliedSinceSnap++
		ch, ok := n.waiters[idx]
		if ok {
			delete(n.waiters, idx)
		}
		needSnap := n.cfg.SnapshotThreshold > 0 && n.appliedSinceSnap >= n.cfg.SnapshotThreshold
		term := e.Term
		n.mu.Unlock()
		if ok {
			ch <- applyResult{result: result, term: term}
		}
		if needSnap {
			_ = n.TakeSnapshot()
		}
	}
}

// Apply submits a command locally; the caller must be talking to the
// leader (use Client.Apply for automatic forwarding).
func (n *Node) Apply(ctx context.Context, cmd []byte) ([]byte, error) {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return nil, ErrStopped
	}
	if n.role != Leader {
		leader := n.leader
		n.mu.Unlock()
		return nil, leaderError(leader)
	}
	term := n.term
	n.mu.Unlock()

	idx := n.appendLocal(LogEntry{Type: EntryCommand, Data: cmd})
	if idx == 0 {
		return nil, fmt.Errorf("raft: append failed")
	}
	ch := make(chan applyResult, 1)
	n.mu.Lock()
	n.waiters[idx] = ch
	n.mu.Unlock()
	n.advanceCommit() // single-node fast path
	select {
	case res, ok := <-ch:
		if !ok {
			return nil, ErrStopped
		}
		if res.term != term {
			return nil, ErrNotLeader // overwritten by a newer leader
		}
		return res.result, nil
	case <-ctx.Done():
		n.mu.Lock()
		delete(n.waiters, idx)
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: %v", ErrTimeout, ctx.Err())
	case <-n.stopCh:
		return nil, ErrStopped
	}
}

func leaderError(hint string) error {
	if hint == "" {
		return ErrNoLeader
	}
	return fmt.Errorf("%w (leader: %s)", ErrNotLeader, hint)
}

// AddServer adds a member via a single-server configuration change.
func (n *Node) AddServer(ctx context.Context, addr string) error {
	return n.changeConfig(ctx, addr, false)
}

// RemoveServer removes a member.
func (n *Node) RemoveServer(ctx context.Context, addr string) error {
	return n.changeConfig(ctx, addr, true)
}

func (n *Node) changeConfig(ctx context.Context, addr string, remove bool) error {
	n.mu.Lock()
	if n.role != Leader {
		leader := n.leader
		n.mu.Unlock()
		return leaderError(leader)
	}
	if n.pendingConfig > 0 {
		n.mu.Unlock()
		return ErrInProgress
	}
	var newPeers []string
	found := false
	for _, p := range n.peers {
		if p == addr {
			found = true
			if remove {
				continue
			}
		}
		newPeers = append(newPeers, p)
	}
	if remove && !found {
		n.mu.Unlock()
		return fmt.Errorf("%w: %s not a member", ErrBadConfig, addr)
	}
	if !remove {
		if found {
			n.mu.Unlock()
			return fmt.Errorf("%w: %s already a member", ErrBadConfig, addr)
		}
		newPeers = append(newPeers, addr)
	}
	data, err := json.Marshal(newPeers)
	if err != nil {
		n.mu.Unlock()
		return err
	}
	term := n.term
	n.mu.Unlock()

	idx := n.appendLocal(LogEntry{Type: EntryConfig, Data: data})
	if idx == 0 {
		return fmt.Errorf("raft: config append failed")
	}
	n.advanceCommit()
	// Wait for commitment.
	tick := n.clk.NewTicker(n.cfg.HeartbeatInterval / 2)
	defer tick.Stop()
	for {
		n.mu.Lock()
		committed := n.commitIndex >= idx
		stillLeader := n.role == Leader && n.term == term
		n.mu.Unlock()
		if committed {
			return nil
		}
		if !stillLeader {
			return ErrNotLeader
		}
		select {
		case <-tick.C():
		case <-ctx.Done():
			return fmt.Errorf("%w: %v", ErrTimeout, ctx.Err())
		case <-n.stopCh:
			return ErrStopped
		}
	}
}

// TakeSnapshot compacts the log through the last applied entry.
func (n *Node) TakeSnapshot() error {
	n.mu.Lock()
	idx := n.lastApplied
	if idx == 0 || idx < n.store.FirstIndex() {
		n.mu.Unlock()
		return nil
	}
	term, err := n.store.Term(idx)
	if err != nil {
		n.mu.Unlock()
		return err
	}
	peers := append([]string(nil), n.peers...)
	n.mu.Unlock()

	fsmData, err := n.fsm.Snapshot()
	if err != nil {
		return err
	}
	env := snapshotEnvelope{Peers: peers, FSM: fsmData}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.lastApplied != idx {
		// State moved on while snapshotting; snapshot at idx is still
		// valid only if the FSM didn't change. Be conservative.
		return nil
	}
	if err := n.store.SaveSnapshot(idx, term, codec.Marshal(&env)); err != nil {
		return err
	}
	n.appliedSinceSnap = 0
	return nil
}

// --- RPC handlers ---

func (r *raftRegistry) handleRequestVote(_ context.Context, h *mercury.Handle) {
	var args requestVoteArgs
	if err := codec.Unmarshal(h.Input(), &args); err != nil {
		_ = h.RespondError(err)
		return
	}
	n := r.lookup(args.Group)
	if n == nil {
		_ = h.RespondError(fmt.Errorf("raft: unknown group %q", args.Group))
		return
	}
	_ = h.Respond(codec.Marshal(n.onRequestVote(&args)))
}

func (n *Node) onRequestVote(args *requestVoteArgs) *requestVoteReply {
	n.mu.Lock()
	defer n.mu.Unlock()
	reply := &requestVoteReply{Term: n.term}
	if args.Term < n.term {
		return reply
	}
	if args.Term > n.term {
		n.term = args.Term
		n.votedFor = ""
		if n.role == Leader {
			n.leaderGen++
		}
		n.role = Follower
		_ = n.store.SetState(n.term, n.votedFor)
		reply.Term = n.term
	}
	lastIdx := n.store.LastIndex()
	lastTerm, _ := n.store.Term(lastIdx)
	upToDate := args.LastLogTerm > lastTerm ||
		(args.LastLogTerm == lastTerm && args.LastLogIndex >= lastIdx)
	if (n.votedFor == "" || n.votedFor == args.Candidate) && upToDate {
		n.votedFor = args.Candidate
		_ = n.store.SetState(n.term, n.votedFor)
		reply.Granted = true
		n.resetElectionTimer()
	}
	return reply
}

func (r *raftRegistry) handleAppendEntries(_ context.Context, h *mercury.Handle) {
	var args appendEntriesArgs
	if err := codec.Unmarshal(h.Input(), &args); err != nil {
		_ = h.RespondError(err)
		return
	}
	n := r.lookup(args.Group)
	if n == nil {
		_ = h.RespondError(fmt.Errorf("raft: unknown group %q", args.Group))
		return
	}
	_ = h.Respond(codec.Marshal(n.onAppendEntries(&args)))
}

func (n *Node) onAppendEntries(args *appendEntriesArgs) *appendEntriesReply {
	n.mu.Lock()
	reply := &appendEntriesReply{Term: n.term}
	if args.Term < n.term {
		n.mu.Unlock()
		return reply
	}
	if args.Term > n.term {
		n.term = args.Term
		n.votedFor = ""
		_ = n.store.SetState(n.term, n.votedFor)
	}
	if n.role == Leader {
		n.leaderGen++
	}
	n.role = Follower
	n.leader = args.Leader
	reply.Term = n.term
	n.resetElectionTimer()

	// Log consistency check.
	first := n.store.FirstIndex()
	last := n.store.LastIndex()
	if args.PrevLogIndex > last {
		reply.ConflictIndex = last + 1
		n.mu.Unlock()
		return reply
	}
	if args.PrevLogIndex >= first || args.PrevLogIndex == first-1 {
		pt, err := n.store.Term(args.PrevLogIndex)
		if err == nil && pt != args.PrevLogTerm {
			// Find the first index of the conflicting term.
			ci := args.PrevLogIndex
			for ci > first {
				t, err := n.store.Term(ci - 1)
				if err != nil || t != pt {
					break
				}
				ci--
			}
			reply.ConflictIndex = ci
			n.mu.Unlock()
			return reply
		}
		if err != nil {
			reply.ConflictIndex = first
			n.mu.Unlock()
			return reply
		}
	} else {
		// PrevLogIndex is inside our snapshot: it is committed, so it
		// matches by definition.
		if args.PrevLogIndex < first-1 {
			reply.ConflictIndex = n.store.LastIndex() + 1
			n.mu.Unlock()
			return reply
		}
	}

	// Append, resolving conflicts.
	for _, e := range args.Entries {
		if e.Index < first {
			continue // covered by snapshot
		}
		if e.Index <= n.store.LastIndex() {
			t, err := n.store.Term(e.Index)
			if err == nil && t == e.Term {
				continue // already have it
			}
			if err := n.store.TruncateFrom(e.Index); err != nil {
				n.mu.Unlock()
				return reply
			}
		}
		if err := n.store.Append([]LogEntry{e}); err != nil {
			n.mu.Unlock()
			return reply
		}
		if e.Type == EntryConfig {
			var ps []string
			if json.Unmarshal(e.Data, &ps) == nil {
				n.peers = append([]string(nil), ps...)
				n.pendingConfig = e.Index
			}
		}
	}
	reply.Success = true
	// Advance commit.
	lastNew := args.PrevLogIndex + uint64(len(args.Entries))
	if args.LeaderCommit > n.commitIndex {
		nc := args.LeaderCommit
		if lastNew < nc && lastNew >= args.PrevLogIndex {
			nc = lastNew
		}
		if nc > n.commitIndex {
			n.commitIndex = nc
		}
		if n.pendingConfig > 0 && n.commitIndex >= n.pendingConfig {
			n.pendingConfig = 0
		}
	}
	n.mu.Unlock()
	select {
	case n.applyNotify <- struct{}{}:
	default:
	}
	return reply
}

func (r *raftRegistry) handleInstallSnapshot(_ context.Context, h *mercury.Handle) {
	var args installSnapshotArgs
	if err := codec.Unmarshal(h.Input(), &args); err != nil {
		_ = h.RespondError(err)
		return
	}
	n := r.lookup(args.Group)
	if n == nil {
		_ = h.RespondError(fmt.Errorf("raft: unknown group %q", args.Group))
		return
	}
	_ = h.Respond(codec.Marshal(n.onInstallSnapshot(&args)))
}

func (n *Node) onInstallSnapshot(args *installSnapshotArgs) *appendEntriesReply {
	n.mu.Lock()
	reply := &appendEntriesReply{Term: n.term}
	if args.Term < n.term {
		n.mu.Unlock()
		return reply
	}
	if args.Term > n.term {
		n.term = args.Term
		n.votedFor = ""
		_ = n.store.SetState(n.term, n.votedFor)
		reply.Term = n.term
	}
	n.role = Follower
	n.leader = args.Leader
	n.resetElectionTimer()
	if args.LastIndex <= n.commitIndex {
		reply.Success = true
		n.mu.Unlock()
		return reply
	}
	var env snapshotEnvelope
	if err := codec.Unmarshal(args.Data, &env); err != nil {
		n.mu.Unlock()
		return reply
	}
	if err := n.fsm.Restore(env.FSM); err != nil {
		n.mu.Unlock()
		return reply
	}
	if err := n.store.SaveSnapshot(args.LastIndex, args.LastTerm, args.Data); err != nil {
		n.mu.Unlock()
		return reply
	}
	n.peers = append([]string(nil), env.Peers...)
	n.commitIndex = args.LastIndex
	n.lastApplied = args.LastIndex
	reply.Success = true
	n.mu.Unlock()
	return reply
}

func (r *raftRegistry) handleApply(_ context.Context, h *mercury.Handle) {
	var args applyArgs
	if err := codec.Unmarshal(h.Input(), &args); err != nil {
		_ = h.RespondError(err)
		return
	}
	n := r.lookup(args.Group)
	if n == nil {
		_ = h.Respond(codec.Marshal(&applyReply{Err: "unknown group"}))
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*n.cfg.ElectionTimeoutMax)
	defer cancel()
	result, err := n.Apply(ctx, args.Cmd)
	reply := applyReply{}
	if err != nil {
		reply.Err = err.Error()
		reply.LeaderHint = n.Leader()
	} else {
		reply.OK = true
		reply.Result = result
	}
	_ = h.Respond(codec.Marshal(&reply))
}

func (r *raftRegistry) handleConfigChange(_ context.Context, h *mercury.Handle) {
	var args configChangeArgs
	if err := codec.Unmarshal(h.Input(), &args); err != nil {
		_ = h.RespondError(err)
		return
	}
	n := r.lookup(args.Group)
	if n == nil {
		_ = h.Respond(codec.Marshal(&applyReply{Err: "unknown group"}))
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*n.cfg.ElectionTimeoutMax)
	defer cancel()
	err := n.changeConfig(ctx, args.Addr, args.Remove)
	reply := applyReply{}
	if err != nil {
		reply.Err = err.Error()
		reply.LeaderHint = n.Leader()
	} else {
		reply.OK = true
	}
	_ = h.Respond(codec.Marshal(&reply))
}

func (r *raftRegistry) handleStatus(_ context.Context, h *mercury.Handle) {
	var args statusArgs
	if err := codec.Unmarshal(h.Input(), &args); err != nil {
		_ = h.RespondError(err)
		return
	}
	n := r.lookup(args.Group)
	if n == nil {
		_ = h.Respond(codec.Marshal(&statusReply{}))
		return
	}
	st := n.Status()
	_ = h.Respond(codec.Marshal(&statusReply{
		OK:          true,
		Role:        uint8(st.Role),
		Term:        st.Term,
		Leader:      st.Leader,
		CommitIndex: st.CommitIndex,
		LastApplied: st.LastApplied,
		Peers:       st.Peers,
	}))
}
