package raft

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"mochi/internal/clock"
	"mochi/internal/codec"
	"mochi/internal/margo"
	"mochi/internal/mercury"
)

// Config tunes protocol timing.
type Config struct {
	// ElectionTimeoutMin/Max bound the randomized election timeout
	// (defaults 150ms/300ms).
	ElectionTimeoutMin time.Duration
	ElectionTimeoutMax time.Duration
	// HeartbeatInterval is the leader's idle append cadence (default
	// ElectionTimeoutMin/3).
	HeartbeatInterval time.Duration
	// SnapshotThreshold triggers automatic compaction after this many
	// applied entries since the last snapshot (0 disables).
	SnapshotThreshold uint64
	// MaxEntriesPerAppend caps entries per AppendEntries RPC
	// (default 64).
	MaxEntriesPerAppend int
	// MaxBatchEntries caps how many concurrent proposals coalesce into
	// one leader group commit — one store.Append (one fsync on
	// FileStore) and one waiter registration pass (default 64). It
	// also caps the committed run the applier drains per wakeup.
	// 1 restores the pre-batching behavior (every proposal pays its
	// own append), kept as the A/B baseline for the E15 tables.
	MaxBatchEntries int
	// BatchWindow makes a group-commit leader linger before appending
	// so more concurrent proposals can join its batch (default 0:
	// batches still form naturally while an earlier append holds the
	// node mutex). Wall-clock, like logdb's batch_window — it
	// amortizes real fsync latency, not protocol time.
	BatchWindow time.Duration
	// UnsafeLocalReads skips the ReadIndex leadership-confirmation
	// quorum round, so a leader answers reads from local state alone
	// and a deposed leader serves stale reads — a real
	// linearizability violation. The knob exists so the simulation
	// harness can prove its checker rejects exactly that history
	// (internal/core TestBrokenReadIndexStaleReadsRejected); never
	// enable it in production.
	UnsafeLocalReads bool
}

func (c Config) withDefaults() Config {
	if c.ElectionTimeoutMin <= 0 {
		c.ElectionTimeoutMin = 150 * time.Millisecond
	}
	if c.ElectionTimeoutMax <= c.ElectionTimeoutMin {
		c.ElectionTimeoutMax = 2 * c.ElectionTimeoutMin
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = c.ElectionTimeoutMin / 3
	}
	if c.MaxEntriesPerAppend <= 0 {
		c.MaxEntriesPerAppend = 64
	}
	if c.MaxBatchEntries <= 0 {
		c.MaxBatchEntries = 64
	}
	return c
}

// Status is a snapshot of a node's protocol state.
type Status struct {
	ID          string
	Role        Role
	Term        uint64
	Leader      string
	CommitIndex uint64
	LastApplied uint64
	Peers       []string
}

type applyResult struct {
	result []byte
	term   uint64
}

// proposal is one command queued for the leader group commit. resCh
// receives the apply result once the entry commits and applies; term
// is the term the entry was appended at.
type proposal struct {
	entry LogEntry
	idx   uint64
	term  uint64
	err   error
	resCh chan applyResult
}

// proposalBatch is one group commit in formation. The first proposer
// becomes the batch leader: it appends every queued entry with one
// store.Append (one fsync on FileStore), registers every waiter under
// one mutex acquisition, then closes done to release the followers —
// the same leader/follower shape as logdb's group commit.
type proposalBatch struct {
	props []*proposal
	done  chan struct{}
}

// readBatch is one ReadIndex confirmation in formation: every read
// pending when the round starts rides the same leadership-confirmation
// heartbeat quorum round.
type readBatch struct {
	term uint64
	n    int
	err  error
	done chan struct{}
}

// applyWaiter parks a ReadIndex read until lastApplied reaches index.
type applyWaiter struct {
	index uint64
	ch    chan struct{}
}

type raftRegistry struct {
	mu    sync.Mutex
	nodes map[string]*Node
}

var raftRegistries sync.Map // *margo.Instance -> *raftRegistry

func raftRegistryFor(inst *margo.Instance) (*raftRegistry, error) {
	if r, ok := raftRegistries.Load(inst); ok {
		return r.(*raftRegistry), nil
	}
	r := &raftRegistry{nodes: map[string]*Node{}}
	actual, loaded := raftRegistries.LoadOrStore(inst, r)
	reg := actual.(*raftRegistry)
	if !loaded {
		handlers := map[string]margo.Handler{
			rpcRequestVote:     reg.handleRequestVote,
			rpcAppendEntries:   reg.handleAppendEntries,
			rpcInstallSnapshot: reg.handleInstallSnapshot,
			rpcApply:           reg.handleApply,
			rpcRead:            reg.handleRead,
			rpcConfigChange:    reg.handleConfigChange,
			rpcStatus:          reg.handleStatus,
		}
		for name, h := range handlers {
			if _, err := inst.Register(name, h); err != nil {
				return nil, err
			}
		}
	}
	return reg, nil
}

func (r *raftRegistry) lookup(group string) *Node {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.nodes[group]
}

// Node is one member of a Raft group.
type Node struct {
	inst  *margo.Instance
	clk   clock.Clock
	group string
	id    string
	store Store
	fsm   FSM
	cfg   Config

	mu               sync.Mutex
	role             Role
	term             uint64
	votedFor         string
	leader           string
	peers            []string
	commitIndex      uint64
	lastApplied      uint64
	nextIndex        map[string]uint64
	matchIndex       map[string]uint64
	waiters          map[uint64]chan applyResult
	pendingConfig    uint64 // index of uncommitted config entry, 0 if none
	appliedSinceSnap uint64
	stopped          bool
	leaderGen        uint64 // increments on every leadership change

	electionReset chan struct{}
	applyNotify   chan struct{}
	replNotify    map[string]chan struct{}

	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	rng   *rand.Rand
	rngMu sync.Mutex

	met *nodeMetrics

	// Group-commit proposal path: propMu guards only the forming
	// batch, never held across I/O or n.mu. commitMu serializes batch
	// leaders; a leader detaches its batch only after acquiring it, so
	// the forming batch keeps absorbing proposals for as long as the
	// previous batch's append (and fsync) is in flight — that window,
	// not the optional BatchWindow linger, is what grows batches under
	// load.
	propMu      sync.Mutex
	propPending *proposalBatch
	commitMu    sync.Mutex

	// ReadIndex path: readMu guards the forming read batch; roundMu
	// serializes confirmation rounds, so a batch formed while a round
	// is in flight waits for the next one. That ordering matters for
	// safety: every member of a batch recorded its read index before
	// the round that confirms it sends a single RPC.
	readMu      sync.Mutex
	readPending *readBatch
	roundMu     sync.Mutex

	// applyWaiters are ReadIndex reads parked until lastApplied
	// reaches their index; guarded by mu, signaled by the applier.
	applyWaiters []applyWaiter
}

// NewNode creates and starts a Raft member. peers is the initial
// configuration (must be identical on every member and include this
// node's address). A store with existing state resumes from it.
func NewNode(inst *margo.Instance, group string, peers []string, store Store, fsm FSM, cfg Config) (*Node, error) {
	reg, err := raftRegistryFor(inst)
	if err != nil {
		return nil, err
	}
	n := &Node{
		inst:          inst,
		clk:           inst.Clock(),
		group:         group,
		id:            inst.Addr(),
		store:         store,
		fsm:           fsm,
		cfg:           cfg.withDefaults(),
		role:          Follower,
		peers:         append([]string(nil), peers...),
		waiters:       map[uint64]chan applyResult{},
		nextIndex:     map[string]uint64{},
		matchIndex:    map[string]uint64{},
		electionReset: make(chan struct{}, 1),
		applyNotify:   make(chan struct{}, 1),
		replNotify:    map[string]chan struct{}{},
		stopCh:        make(chan struct{}),
		rng:           rand.New(rand.NewSource(int64(mercury.NameToID(inst.Addr() + "/" + group)))),
		met:           newNodeMetrics(inst.Metrics(), group),
	}
	// Recover persistent state.
	term, voted, err := store.State()
	if err != nil {
		return nil, err
	}
	n.term, n.votedFor = term, voted
	if data, idx, _, err := store.Snapshot(); err == nil && idx > 0 {
		var env snapshotEnvelope
		if err := codec.Unmarshal(data, &env); err != nil {
			return nil, fmt.Errorf("raft: corrupt snapshot: %w", err)
		}
		if err := fsm.Restore(env.FSM); err != nil {
			return nil, err
		}
		n.peers = env.Peers
		n.commitIndex, n.lastApplied = idx, idx
	}
	// Replay configuration entries from the log.
	first, last := store.FirstIndex(), store.LastIndex()
	for i := first; i <= last && i >= first; i++ {
		e, err := store.Entry(i)
		if err != nil {
			break
		}
		if e.Type == EntryConfig {
			var ps []string
			if json.Unmarshal(e.Data, &ps) == nil {
				n.peers = ps
			}
		}
	}

	reg.mu.Lock()
	if _, dup := reg.nodes[group]; dup {
		reg.mu.Unlock()
		return nil, fmt.Errorf("raft: group %q already exists on %s", group, n.id)
	}
	reg.nodes[group] = n
	reg.mu.Unlock()

	n.wg.Add(2)
	go n.electionLoop()
	go n.applier()
	return n, nil
}

// ID returns this node's address.
func (n *Node) ID() string { return n.id }

// Group returns the group name.
func (n *Node) Group() string { return n.group }

// Status returns a snapshot of protocol state.
func (n *Node) Status() Status {
	n.mu.Lock()
	defer n.mu.Unlock()
	return Status{
		ID:          n.id,
		Role:        n.role,
		Term:        n.term,
		Leader:      n.leader,
		CommitIndex: n.commitIndex,
		LastApplied: n.lastApplied,
		Peers:       append([]string(nil), n.peers...),
	}
}

// Leader returns the current leader hint ("" if unknown).
func (n *Node) Leader() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.leader
}

// IsLeader reports whether this node currently leads.
func (n *Node) IsLeader() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.role == Leader
}

// Stop halts the node. The store is not closed.
func (n *Node) Stop() {
	n.stopOnce.Do(func() {
		n.mu.Lock()
		n.stopped = true
		n.leaderGen++ // terminates replicators
		for idx, ch := range n.waiters {
			close(ch)
			delete(n.waiters, idx)
		}
		for _, w := range n.applyWaiters {
			close(w.ch)
		}
		n.applyWaiters = nil
		n.mu.Unlock()
		close(n.stopCh)
	})
	n.wg.Wait()
	if r, ok := raftRegistries.Load(n.inst); ok {
		reg := r.(*raftRegistry)
		reg.mu.Lock()
		if reg.nodes[n.group] == n {
			delete(reg.nodes, n.group)
		}
		reg.mu.Unlock()
	}
}

// --- election ---

func (n *Node) electionTimeout() time.Duration {
	n.rngMu.Lock()
	defer n.rngMu.Unlock()
	span := n.cfg.ElectionTimeoutMax - n.cfg.ElectionTimeoutMin
	return n.cfg.ElectionTimeoutMin + time.Duration(n.rng.Int63n(int64(span)+1))
}

func (n *Node) electionLoop() {
	defer n.wg.Done()
	for {
		timer := n.clk.NewTimer(n.electionTimeout())
		select {
		case <-n.stopCh:
			timer.Stop()
			return
		case <-n.electionReset:
			timer.Stop()
			continue
		case <-timer.C():
			n.maybeStartElection()
		}
	}
}

func (n *Node) resetElectionTimer() {
	select {
	case n.electionReset <- struct{}{}:
	default:
	}
}

func (n *Node) inConfigLocked() bool {
	for _, p := range n.peers {
		if p == n.id {
			return true
		}
	}
	return false
}

func (n *Node) maybeStartElection() {
	n.mu.Lock()
	if n.stopped || n.role == Leader || !n.inConfigLocked() {
		n.mu.Unlock()
		return
	}
	n.role = Candidate
	n.term++
	n.votedFor = n.id
	n.leader = ""
	term := n.term
	if err := n.store.SetState(n.term, n.votedFor); err != nil {
		n.mu.Unlock()
		return
	}
	lastIdx := n.store.LastIndex()
	lastTerm, _ := n.store.Term(lastIdx)
	peers := append([]string(nil), n.peers...)
	n.mu.Unlock()

	votes := 1 // self
	needed := len(peers)/2 + 1
	var voteMu sync.Mutex
	won := make(chan struct{}, 1)
	if votes >= needed {
		n.becomeLeader(term)
		return
	}
	args := requestVoteArgs{
		Group:        n.group,
		Term:         term,
		Candidate:    n.id,
		LastLogIndex: lastIdx,
		LastLogTerm:  lastTerm,
	}
	payload := codec.Marshal(&args)
	for _, p := range peers {
		if p == n.id {
			continue
		}
		go func(p string) {
			ctx, cancel := context.WithTimeout(context.Background(), n.cfg.ElectionTimeoutMin)
			defer cancel()
			out, err := n.inst.Forward(ctx, p, rpcRequestVote, payload)
			if err != nil {
				return
			}
			var reply requestVoteReply
			if err := codec.Unmarshal(out, &reply); err != nil {
				return
			}
			if reply.Term > term {
				n.stepDown(reply.Term, "")
				return
			}
			if reply.Granted {
				voteMu.Lock()
				votes++
				reached := votes == needed
				voteMu.Unlock()
				if reached {
					select {
					case won <- struct{}{}:
					default:
					}
				}
			}
		}(p)
	}
	// Wait for a majority within the election timeout; otherwise a
	// new election fires from the loop.
	timer := n.clk.NewTimer(n.cfg.ElectionTimeoutMin)
	defer timer.Stop()
	select {
	case <-won:
		n.becomeLeader(term)
	case <-timer.C():
	case <-n.stopCh:
	}
}

func (n *Node) becomeLeader(term uint64) {
	n.mu.Lock()
	if n.stopped || n.term != term || n.role != Candidate {
		n.mu.Unlock()
		return
	}
	n.role = Leader
	n.leader = n.id
	n.leaderGen++
	gen := n.leaderGen
	last := n.store.LastIndex()
	for _, p := range n.peers {
		n.nextIndex[p] = last + 1
		n.matchIndex[p] = 0
	}
	peers := append([]string(nil), n.peers...)
	n.mu.Unlock()

	// Commit entries from previous terms by appending a no-op at the
	// current term (§5.4.2 of the Raft paper). An append failure has
	// already stepped us back down; nothing more to do here.
	if _, err := n.appendLocal(LogEntry{Type: EntryNoop}); err != nil {
		return
	}

	for _, p := range peers {
		if p != n.id {
			n.startReplicator(p, term, gen)
		}
	}
	// Single-node groups commit immediately.
	n.advanceCommit()
}

// stepDown transitions to follower at the given (higher) term.
func (n *Node) stepDown(term uint64, leader string) {
	n.mu.Lock()
	if term > n.term {
		n.term = term
		n.votedFor = ""
		_ = n.store.SetState(n.term, n.votedFor)
	}
	if n.role == Leader {
		n.leaderGen++
	}
	n.role = Follower
	if leader != "" {
		n.leader = leader
	}
	n.mu.Unlock()
	n.resetElectionTimer()
}

// --- log append / replication ---

// appendLocal appends a single protocol entry (no-op, config) at the
// leader and returns its index. A persistent-store failure surfaces
// the error and steps the leader down: a leader that cannot write its
// own log must not keep acking commands it will never replicate.
func (n *Node) appendLocal(e LogEntry) (uint64, error) {
	n.mu.Lock()
	e.Index = n.store.LastIndex() + 1
	e.Term = n.term
	if err := n.store.Append([]LogEntry{e}); err != nil {
		n.met.appendErrors.Inc()
		if n.role == Leader {
			n.role = Follower
			n.leaderGen++
		}
		n.mu.Unlock()
		n.resetElectionTimer()
		return 0, fmt.Errorf("raft: leader store append: %w", err)
	}
	n.matchIndex[n.id] = e.Index
	if e.Type == EntryConfig {
		var ps []string
		if json.Unmarshal(e.Data, &ps) == nil {
			n.applyConfigLocked(ps, e.Index)
		}
	}
	n.mu.Unlock()
	n.notifyReplicators()
	return e.Index, nil
}

// applyConfigLocked switches to a new peer set immediately (Raft uses
// the latest config in the log, committed or not).
func (n *Node) applyConfigLocked(ps []string, index uint64) {
	old := n.peers
	n.peers = append([]string(nil), ps...)
	n.pendingConfig = index
	if n.role == Leader {
		last := n.store.LastIndex()
		for _, p := range ps {
			if _, ok := n.nextIndex[p]; !ok {
				n.nextIndex[p] = last + 1
				n.matchIndex[p] = 0
			}
		}
		gen := n.leaderGen
		term := n.term
		for _, p := range ps {
			if p == n.id {
				continue
			}
			found := false
			for _, o := range old {
				if o == p {
					found = true
				}
			}
			if !found {
				go n.startReplicator(p, term, gen)
			}
		}
	}
}

func (n *Node) notifyReplicators() {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, ch := range n.replNotify {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

func (n *Node) startReplicator(peer string, term uint64, gen uint64) {
	n.mu.Lock()
	if _, ok := n.replNotify[peer]; ok {
		n.mu.Unlock()
		return
	}
	ch := make(chan struct{}, 1)
	n.replNotify[peer] = ch
	n.mu.Unlock()
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		defer func() {
			n.mu.Lock()
			if n.replNotify[peer] == ch {
				delete(n.replNotify, peer)
			}
			n.mu.Unlock()
		}()
		tick := n.clk.NewTicker(n.cfg.HeartbeatInterval)
		defer tick.Stop()
		for {
			n.mu.Lock()
			live := !n.stopped && n.role == Leader && n.term == term && n.leaderGen == gen
			inCfg := false
			for _, p := range n.peers {
				if p == peer {
					inCfg = true
				}
			}
			n.mu.Unlock()
			if !live || !inCfg {
				return
			}
			n.replicateOnce(peer, term)
			select {
			case <-tick.C():
			case <-ch:
			case <-n.stopCh:
				return
			}
		}
	}()
}

// replicateOnce sends one AppendEntries (or InstallSnapshot) to peer.
func (n *Node) replicateOnce(peer string, term uint64) {
	n.mu.Lock()
	if n.role != Leader || n.term != term {
		n.mu.Unlock()
		return
	}
	next := n.nextIndex[peer]
	if next == 0 {
		next = n.store.LastIndex() + 1
		n.nextIndex[peer] = next
	}
	first := n.store.FirstIndex()
	if next < first {
		// Peer is too far behind: ship the snapshot.
		data, sidx, sterm, err := n.store.Snapshot()
		if err != nil || sidx == 0 {
			n.mu.Unlock()
			return
		}
		var env snapshotEnvelope
		if codec.Unmarshal(data, &env) != nil {
			n.mu.Unlock()
			return
		}
		args := installSnapshotArgs{
			Group:     n.group,
			Term:      term,
			Leader:    n.id,
			LastIndex: sidx,
			LastTerm:  sterm,
			Peers:     env.Peers,
			Data:      data,
		}
		n.mu.Unlock()
		ctx, cancel := context.WithTimeout(context.Background(), 4*n.cfg.HeartbeatInterval)
		defer cancel()
		out, err := n.inst.Forward(ctx, peer, rpcInstallSnapshot, codec.Marshal(&args))
		if err != nil {
			return
		}
		var reply appendEntriesReply
		if codec.Unmarshal(out, &reply) != nil {
			return
		}
		if reply.Term > term {
			n.stepDown(reply.Term, "")
			return
		}
		n.mu.Lock()
		if n.role == Leader && n.term == term {
			n.nextIndex[peer] = sidx + 1
			if sidx > n.matchIndex[peer] {
				n.matchIndex[peer] = sidx
			}
		}
		n.mu.Unlock()
		return
	}
	prev := next - 1
	prevTerm, err := n.store.Term(prev)
	if err != nil {
		n.mu.Unlock()
		return
	}
	last := n.store.LastIndex()
	hi := last
	if hi >= next+uint64(n.cfg.MaxEntriesPerAppend) {
		hi = next + uint64(n.cfg.MaxEntriesPerAppend) - 1
	}
	var entries []LogEntry
	if hi >= next {
		entries, err = n.store.Entries(next, hi)
		if err != nil {
			n.mu.Unlock()
			return
		}
	}
	args := appendEntriesArgs{
		Group:        n.group,
		Term:         term,
		Leader:       n.id,
		PrevLogIndex: prev,
		PrevLogTerm:  prevTerm,
		Entries:      entries,
		LeaderCommit: n.commitIndex,
	}
	n.mu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), 2*n.cfg.HeartbeatInterval)
	defer cancel()
	out, err := n.inst.Forward(ctx, peer, rpcAppendEntries, codec.Marshal(&args))
	if err != nil {
		return
	}
	var reply appendEntriesReply
	if codec.Unmarshal(out, &reply) != nil {
		return
	}
	if reply.Term > term {
		n.stepDown(reply.Term, "")
		return
	}
	n.mu.Lock()
	if n.role != Leader || n.term != term {
		n.mu.Unlock()
		return
	}
	if reply.Success {
		newMatch := prev + uint64(len(entries))
		if newMatch > n.matchIndex[peer] {
			n.matchIndex[peer] = newMatch
		}
		n.nextIndex[peer] = newMatch + 1
		more := n.store.LastIndex() > newMatch
		n.mu.Unlock()
		n.advanceCommit()
		if more {
			n.mu.Lock()
			if ch, ok := n.replNotify[peer]; ok {
				select {
				case ch <- struct{}{}:
				default:
				}
			}
			n.mu.Unlock()
		}
		return
	}
	// Conflict: back off using the follower's hint.
	ni := reply.ConflictIndex
	if ni == 0 {
		ni = 1
	}
	if ni < n.nextIndex[peer] {
		n.nextIndex[peer] = ni
	} else if n.nextIndex[peer] > 1 {
		n.nextIndex[peer]--
	}
	if ch, ok := n.replNotify[peer]; ok {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	n.mu.Unlock()
}

// advanceCommit moves commitIndex to the highest majority-replicated
// index of the current term.
func (n *Node) advanceCommit() {
	n.mu.Lock()
	if n.role != Leader {
		n.mu.Unlock()
		return
	}
	matches := make([]uint64, 0, len(n.peers))
	for _, p := range n.peers {
		if p == n.id {
			matches = append(matches, n.store.LastIndex())
		} else {
			matches = append(matches, n.matchIndex[p])
		}
	}
	sort.Slice(matches, func(i, j int) bool { return matches[i] > matches[j] })
	if len(matches) == 0 {
		n.mu.Unlock()
		return
	}
	candidate := matches[len(matches)/2]
	changed := false
	if candidate > n.commitIndex {
		t, err := n.store.Term(candidate)
		if err == nil && t == n.term {
			n.commitIndex = candidate
			changed = true
		}
	}
	if changed && n.pendingConfig > 0 && n.commitIndex >= n.pendingConfig {
		n.pendingConfig = 0
		// If we were removed by the committed config, step down.
		if !n.inConfigLocked() {
			n.role = Follower
			n.leaderGen++
		}
	}
	n.mu.Unlock()
	if changed {
		select {
		case n.applyNotify <- struct{}{}:
		default:
		}
		n.notifyReplicators() // propagate the new commit index promptly
	}
}

// --- apply path ---

func (n *Node) applier() {
	defer n.wg.Done()
	for {
		select {
		case <-n.stopCh:
			return
		case <-n.applyNotify:
			n.applyCommitted()
		}
	}
}

// applyCommitted drains the committed range in runs of up to
// MaxBatchEntries: one mutex acquisition reads the run, the FSM
// applies it outside the lock (through ApplyBatch when supported), and
// one re-acquisition advances lastApplied, collects every waiter, and
// releases ReadIndex reads that the run satisfied.
func (n *Node) applyCommitted() {
	for {
		n.mu.Lock()
		if n.lastApplied >= n.commitIndex {
			n.mu.Unlock()
			return
		}
		lo := n.lastApplied + 1
		hi := n.commitIndex
		if span := uint64(n.cfg.MaxBatchEntries); hi-lo+1 > span {
			hi = lo + span - 1
		}
		entries, err := n.store.Entries(lo, hi)
		n.mu.Unlock()
		if err != nil || len(entries) == 0 {
			return
		}

		results := make([][]byte, len(entries))
		if bf, ok := n.fsm.(BatchFSM); ok {
			cmds := make([]Command, 0, len(entries))
			pos := make([]int, 0, len(entries))
			for i, e := range entries {
				if e.Type == EntryCommand {
					cmds = append(cmds, Command{Index: e.Index, Data: e.Data})
					pos = append(pos, i)
				}
			}
			if len(cmds) > 0 {
				for i, r := range bf.ApplyBatch(cmds) {
					if i < len(pos) {
						results[pos[i]] = r
					}
				}
			}
		} else {
			for i, e := range entries {
				if e.Type == EntryCommand {
					results[i] = n.fsm.Apply(e.Index, e.Data)
				}
			}
		}

		type wake struct {
			ch  chan applyResult
			res applyResult
		}
		var wakes []wake
		n.mu.Lock()
		if n.lastApplied+1 != lo {
			// A snapshot install moved lastApplied underneath us (it
			// only ever jumps forward over committed, applied state);
			// this run is stale, drop it.
			n.mu.Unlock()
			return
		}
		n.lastApplied = hi
		n.appliedSinceSnap += uint64(len(entries))
		for i, e := range entries {
			if ch, ok := n.waiters[e.Index]; ok {
				delete(n.waiters, e.Index)
				wakes = append(wakes, wake{ch: ch, res: applyResult{result: results[i], term: e.Term}})
			}
		}
		n.signalAppliedLocked()
		needSnap := n.cfg.SnapshotThreshold > 0 && n.appliedSinceSnap >= n.cfg.SnapshotThreshold
		n.mu.Unlock()
		n.met.applyEntries.Observe(float64(len(entries)))
		for _, w := range wakes {
			w.ch <- w.res
		}
		if needSnap {
			_ = n.TakeSnapshot()
		}
	}
}

// signalAppliedLocked releases ReadIndex waiters whose target index
// has been applied. Caller holds mu.
func (n *Node) signalAppliedLocked() {
	if len(n.applyWaiters) == 0 {
		return
	}
	kept := n.applyWaiters[:0]
	for _, w := range n.applyWaiters {
		if w.index <= n.lastApplied {
			close(w.ch)
		} else {
			kept = append(kept, w)
		}
	}
	n.applyWaiters = kept
}

// Apply submits a command locally; the caller must be talking to the
// leader (use Client.Apply for automatic forwarding).
//
// Concurrent Apply calls coalesce: the first proposer of a batch
// becomes its leader and performs one store.Append (one fsync on
// FileStore) and one waiter-registration pass for every queued
// command; the rest just wait on the batch. Replicators then ship the
// whole run in one AppendEntries round.
func (n *Node) Apply(ctx context.Context, cmd []byte) ([]byte, error) {
	// No leadership pre-check here: it would need n.mu, which an
	// in-flight group commit holds across its fsync — exactly the
	// window in which new proposals must keep enqueueing for batches
	// to form. The batch leader performs the authoritative role check
	// under n.mu and fails the whole batch with the same leaderError.
	start := time.Now()
	p := &proposal{
		entry: LogEntry{Type: EntryCommand, Data: cmd},
		resCh: make(chan applyResult, 1),
	}
	b, lead := n.enqueueProposal(p)
	if lead {
		n.leadProposals(b)
	} else {
		// Bounded wait: the batch leader always closes done, even on
		// stop or step-down.
		<-b.done
	}
	if p.err != nil {
		return nil, p.err
	}
	select {
	case res, ok := <-p.resCh:
		if !ok {
			return nil, ErrStopped
		}
		if res.term != p.term {
			return nil, ErrNotLeader // overwritten by a newer leader
		}
		n.met.commitLatency.Observe(time.Since(start).Seconds())
		return res.result, nil
	case <-ctx.Done():
		n.mu.Lock()
		if ch, ok := n.waiters[p.idx]; ok && ch == p.resCh {
			delete(n.waiters, p.idx)
		}
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: %v", ErrTimeout, ctx.Err())
	case <-n.stopCh:
		return nil, ErrStopped
	}
}

// enqueueProposal adds p to the forming batch, starting a fresh one if
// none is pending or the pending one is full. Returns the batch and
// whether the caller became its leader.
func (n *Node) enqueueProposal(p *proposal) (*proposalBatch, bool) {
	n.propMu.Lock()
	b := n.propPending
	lead := b == nil || len(b.props) >= n.cfg.MaxBatchEntries
	if lead {
		b = &proposalBatch{done: make(chan struct{})}
		n.propPending = b
	}
	b.props = append(b.props, p)
	n.propMu.Unlock()
	return b, lead
}

// leadProposals runs one group commit: optionally linger so more
// proposals join, wait for the previous batch leader to finish, detach
// the batch, then assign contiguous indexes and persist every entry
// with a single store.Append under one node-mutex acquisition.
//
// The detach happens only after commitMu is held: while an earlier
// batch's fsync is in flight, this batch stays pending and keeps
// absorbing concurrent proposals, which is where multi-entry batches
// come from even with BatchWindow 0.
func (n *Node) leadProposals(b *proposalBatch) {
	if n.cfg.BatchWindow > 0 {
		// Wall-clock on purpose (like logdb's batch window): the
		// linger amortizes real fsync latency, which the simulated
		// clock does not model.
		time.Sleep(n.cfg.BatchWindow)
	}
	n.commitMu.Lock()
	defer n.commitMu.Unlock()
	if n.cfg.BatchWindow == 0 {
		// Adaptive linger: while earlier entries are appended but not
		// yet applied, hold off detaching — commit latency is gated on
		// their replication anyway, and every proposal arriving in the
		// meantime joins this batch. Without this gate the group is
		// metastable: once proposals start arriving one replication
		// round apart, each finds the pipeline idle, appends alone, and
		// keeps the one-fsync-per-op lockstep going. The wait is
		// bounded so a stalled pipeline (lost leadership mid-wait)
		// degrades to the role check below instead of hanging.
		n.mu.Lock()
		if last := n.store.LastIndex(); last > n.lastApplied && !n.stopped && n.role == Leader {
			ch := make(chan struct{})
			n.applyWaiters = append(n.applyWaiters, applyWaiter{index: last, ch: ch})
			n.mu.Unlock()
			t := n.clk.NewTimer(n.cfg.HeartbeatInterval)
			select {
			case <-ch:
			case <-t.C():
			case <-n.stopCh:
			}
			t.Stop()
		} else {
			n.mu.Unlock()
		}
	}
	n.propMu.Lock()
	if n.propPending == b {
		n.propPending = nil
	}
	n.propMu.Unlock()

	n.mu.Lock()
	if n.stopped {
		failProposals(b, ErrStopped)
		n.mu.Unlock()
		close(b.done)
		return
	}
	if n.role != Leader {
		err := leaderError(n.leader)
		failProposals(b, err)
		n.mu.Unlock()
		close(b.done)
		return
	}
	base := n.store.LastIndex()
	term := n.term
	entries := make([]LogEntry, len(b.props))
	for i, p := range b.props {
		p.entry.Index = base + 1 + uint64(i)
		p.entry.Term = term
		entries[i] = p.entry
	}
	if err := n.store.Append(entries); err != nil {
		// The leader cannot persist its own log: step down and
		// surface the store error to every caller in the batch
		// instead of silently dropping the commands.
		n.met.appendErrors.Inc()
		n.role = Follower
		n.leaderGen++
		failProposals(b, fmt.Errorf("raft: leader store append: %w", err))
		n.mu.Unlock()
		n.resetElectionTimer()
		close(b.done)
		return
	}
	last := base + uint64(len(b.props))
	n.matchIndex[n.id] = last
	for _, p := range b.props {
		p.idx = p.entry.Index
		p.term = term
		n.waiters[p.idx] = p.resCh
	}
	n.mu.Unlock()
	n.met.batchEntries.Observe(float64(len(b.props)))
	close(b.done)
	n.notifyReplicators()
	n.advanceCommit() // single-node fast path
}

func failProposals(b *proposalBatch, err error) {
	for _, p := range b.props {
		p.err = err
	}
}

// --- ReadIndex ---

// Read answers a read-only query linearizably without writing a log
// entry (the ReadIndex protocol): record commitIndex as the read
// index, confirm leadership with one heartbeat quorum round shared by
// every pending read, wait until the read index has been applied, then
// query the FSM. The caller must be talking to the leader (use
// Client.Read for automatic forwarding). The FSM must implement
// ReaderFSM.
//
// Safety does not need a leader lease: once the quorum round confirms
// the term, every write that completed before this read began is
// covered by the recorded read index (a later leader needs a quorum at
// a higher term, which the round would have observed), so serving the
// query is linearizable even if this node is deposed right after.
func (n *Node) Read(ctx context.Context, query []byte) ([]byte, error) {
	rf, ok := n.fsm.(ReaderFSM)
	if !ok {
		return nil, ErrNoReader
	}
	for {
		n.mu.Lock()
		if n.stopped {
			n.mu.Unlock()
			return nil, ErrStopped
		}
		if n.role != Leader {
			leader := n.leader
			n.mu.Unlock()
			return nil, leaderError(leader)
		}
		term := n.term
		readIndex := n.commitIndex
		commitTerm, terr := n.store.Term(readIndex)
		n.mu.Unlock()
		if terr == nil && commitTerm == term {
			// ReadIndex precondition holds: an entry of the current
			// term is committed (the no-op appended at election
			// guarantees this happens promptly), so commitIndex covers
			// everything committed by earlier leaders.
			if !n.cfg.UnsafeLocalReads {
				if err := n.confirmLeadership(ctx, term); err != nil {
					return nil, err
				}
			}
			if err := n.waitApplied(ctx, readIndex); err != nil {
				return nil, err
			}
			return rf.Read(query), nil
		}
		// The current term's no-op has not committed yet: wait a beat
		// and retry.
		t := n.clk.NewTimer(n.cfg.HeartbeatInterval / 2)
		select {
		case <-t.C():
		case <-ctx.Done():
			t.Stop()
			return nil, fmt.Errorf("%w: %v", ErrTimeout, ctx.Err())
		case <-n.stopCh:
			t.Stop()
			return nil, ErrStopped
		}
		t.Stop()
	}
}

// confirmLeadership establishes that this node still led term by
// completing one heartbeat quorum round. Concurrent reads batch: the
// first pending read becomes the round leader and one round serves
// every read queued behind it. Reads arriving while a round is in
// flight form the next batch — they must not ride the current one,
// because the safety argument needs every member's read index recorded
// before the round's replies arrive, and roundMu enforces exactly
// that by detaching the batch before the round starts.
func (n *Node) confirmLeadership(ctx context.Context, term uint64) error {
	n.readMu.Lock()
	if b := n.readPending; b != nil && b.term == term {
		b.n++
		n.readMu.Unlock()
		select {
		case <-b.done:
			return b.err
		case <-ctx.Done():
			return fmt.Errorf("%w: %v", ErrTimeout, ctx.Err())
		case <-n.stopCh:
			return ErrStopped
		}
	}
	b := &readBatch{term: term, n: 1, done: make(chan struct{})}
	n.readPending = b
	n.readMu.Unlock()

	n.roundMu.Lock()
	n.readMu.Lock()
	if n.readPending == b {
		n.readPending = nil
	}
	n.readMu.Unlock()
	b.err = n.heartbeatQuorum(ctx, term)
	n.roundMu.Unlock()
	n.met.readRounds.Inc()
	n.met.readBatch.Observe(float64(b.n))
	close(b.done)
	return b.err
}

// heartbeatQuorum sends one empty AppendEntries to every peer and
// waits for a majority (counting self) to acknowledge the term. The
// empty heartbeat carries LeaderCommit 0, so it cannot move follower
// state; only the reply term matters. A reply carrying a higher term
// steps this node down and fails the round.
func (n *Node) heartbeatQuorum(ctx context.Context, term uint64) error {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return ErrStopped
	}
	if n.role != Leader || n.term != term {
		leader := n.leader
		n.mu.Unlock()
		return leaderError(leader)
	}
	peers := append([]string(nil), n.peers...)
	n.mu.Unlock()

	needed := len(peers)/2 + 1
	acks := 0
	for _, p := range peers {
		if p == n.id {
			acks++
		}
	}
	if acks >= needed {
		return nil // single-node group
	}
	args := appendEntriesArgs{Group: n.group, Term: term, Leader: n.id}
	payload := codec.Marshal(&args)
	rctx, cancel := context.WithTimeout(ctx, n.cfg.ElectionTimeoutMin)
	defer cancel()
	replies := make(chan uint64, len(peers))
	for _, p := range peers {
		if p == n.id {
			continue
		}
		go func(p string) {
			out, err := n.inst.Forward(rctx, p, rpcAppendEntries, payload)
			if err != nil {
				return
			}
			var reply appendEntriesReply
			if codec.Unmarshal(out, &reply) != nil {
				return
			}
			replies <- reply.Term
		}(p)
	}
	for {
		select {
		case rt := <-replies:
			if rt > term {
				n.stepDown(rt, "")
				return ErrNotLeader
			}
			acks++
			if acks >= needed {
				return nil
			}
		case <-rctx.Done():
			return fmt.Errorf("%w: readindex quorum: %v", ErrTimeout, rctx.Err())
		case <-n.stopCh:
			return ErrStopped
		}
	}
}

// waitApplied blocks until lastApplied >= index, i.e. the effects at
// the read index are visible in the FSM.
func (n *Node) waitApplied(ctx context.Context, index uint64) error {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return ErrStopped
	}
	if n.lastApplied >= index {
		n.mu.Unlock()
		return nil
	}
	ch := make(chan struct{})
	n.applyWaiters = append(n.applyWaiters, applyWaiter{index: index, ch: ch})
	n.mu.Unlock()
	select {
	case <-ch:
		n.mu.Lock()
		stopped := n.stopped
		n.mu.Unlock()
		if stopped {
			return ErrStopped
		}
		return nil
	case <-ctx.Done():
		return fmt.Errorf("%w: %v", ErrTimeout, ctx.Err())
	case <-n.stopCh:
		return ErrStopped
	}
}

func leaderError(hint string) error {
	if hint == "" {
		return ErrNoLeader
	}
	return fmt.Errorf("%w (leader: %s)", ErrNotLeader, hint)
}

// AddServer adds a member via a single-server configuration change.
func (n *Node) AddServer(ctx context.Context, addr string) error {
	return n.changeConfig(ctx, addr, false)
}

// RemoveServer removes a member.
func (n *Node) RemoveServer(ctx context.Context, addr string) error {
	return n.changeConfig(ctx, addr, true)
}

func (n *Node) changeConfig(ctx context.Context, addr string, remove bool) error {
	n.mu.Lock()
	if n.role != Leader {
		leader := n.leader
		n.mu.Unlock()
		return leaderError(leader)
	}
	if n.pendingConfig > 0 {
		n.mu.Unlock()
		return ErrInProgress
	}
	var newPeers []string
	found := false
	for _, p := range n.peers {
		if p == addr {
			found = true
			if remove {
				continue
			}
		}
		newPeers = append(newPeers, p)
	}
	if remove && !found {
		n.mu.Unlock()
		return fmt.Errorf("%w: %s not a member", ErrBadConfig, addr)
	}
	if !remove {
		if found {
			n.mu.Unlock()
			return fmt.Errorf("%w: %s already a member", ErrBadConfig, addr)
		}
		newPeers = append(newPeers, addr)
	}
	data, err := json.Marshal(newPeers)
	if err != nil {
		n.mu.Unlock()
		return err
	}
	term := n.term
	n.mu.Unlock()

	idx, err := n.appendLocal(LogEntry{Type: EntryConfig, Data: data})
	if err != nil {
		return err
	}
	n.advanceCommit()
	// Wait for commitment.
	tick := n.clk.NewTicker(n.cfg.HeartbeatInterval / 2)
	defer tick.Stop()
	for {
		n.mu.Lock()
		committed := n.commitIndex >= idx
		stillLeader := n.role == Leader && n.term == term
		n.mu.Unlock()
		if committed {
			return nil
		}
		if !stillLeader {
			return ErrNotLeader
		}
		select {
		case <-tick.C():
		case <-ctx.Done():
			return fmt.Errorf("%w: %v", ErrTimeout, ctx.Err())
		case <-n.stopCh:
			return ErrStopped
		}
	}
}

// TakeSnapshot compacts the log through the last applied entry.
func (n *Node) TakeSnapshot() error {
	n.mu.Lock()
	idx := n.lastApplied
	if idx == 0 || idx < n.store.FirstIndex() {
		n.mu.Unlock()
		return nil
	}
	term, err := n.store.Term(idx)
	if err != nil {
		n.mu.Unlock()
		return err
	}
	peers := append([]string(nil), n.peers...)
	n.mu.Unlock()

	fsmData, err := n.fsm.Snapshot()
	if err != nil {
		return err
	}
	env := snapshotEnvelope{Peers: peers, FSM: fsmData}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.lastApplied != idx {
		// State moved on while snapshotting; snapshot at idx is still
		// valid only if the FSM didn't change. Be conservative.
		return nil
	}
	if err := n.store.SaveSnapshot(idx, term, codec.Marshal(&env)); err != nil {
		return err
	}
	n.appliedSinceSnap = 0
	return nil
}

// --- RPC handlers ---

func (r *raftRegistry) handleRequestVote(_ context.Context, h *mercury.Handle) {
	var args requestVoteArgs
	if err := codec.Unmarshal(h.Input(), &args); err != nil {
		_ = h.RespondError(err)
		return
	}
	n := r.lookup(args.Group)
	if n == nil {
		_ = h.RespondError(fmt.Errorf("raft: unknown group %q", args.Group))
		return
	}
	_ = h.Respond(codec.Marshal(n.onRequestVote(&args)))
}

func (n *Node) onRequestVote(args *requestVoteArgs) *requestVoteReply {
	n.mu.Lock()
	defer n.mu.Unlock()
	reply := &requestVoteReply{Term: n.term}
	if args.Term < n.term {
		return reply
	}
	if args.Term > n.term {
		n.term = args.Term
		n.votedFor = ""
		if n.role == Leader {
			n.leaderGen++
		}
		n.role = Follower
		_ = n.store.SetState(n.term, n.votedFor)
		reply.Term = n.term
	}
	lastIdx := n.store.LastIndex()
	lastTerm, _ := n.store.Term(lastIdx)
	upToDate := args.LastLogTerm > lastTerm ||
		(args.LastLogTerm == lastTerm && args.LastLogIndex >= lastIdx)
	if (n.votedFor == "" || n.votedFor == args.Candidate) && upToDate {
		n.votedFor = args.Candidate
		_ = n.store.SetState(n.term, n.votedFor)
		reply.Granted = true
		n.resetElectionTimer()
	}
	return reply
}

func (r *raftRegistry) handleAppendEntries(_ context.Context, h *mercury.Handle) {
	var args appendEntriesArgs
	if err := codec.Unmarshal(h.Input(), &args); err != nil {
		_ = h.RespondError(err)
		return
	}
	n := r.lookup(args.Group)
	if n == nil {
		_ = h.RespondError(fmt.Errorf("raft: unknown group %q", args.Group))
		return
	}
	_ = h.Respond(codec.Marshal(n.onAppendEntries(&args)))
}

func (n *Node) onAppendEntries(args *appendEntriesArgs) *appendEntriesReply {
	n.mu.Lock()
	reply := &appendEntriesReply{Term: n.term}
	if args.Term < n.term {
		n.mu.Unlock()
		return reply
	}
	if args.Term > n.term {
		n.term = args.Term
		n.votedFor = ""
		_ = n.store.SetState(n.term, n.votedFor)
	}
	if n.role == Leader {
		n.leaderGen++
	}
	n.role = Follower
	n.leader = args.Leader
	reply.Term = n.term
	n.resetElectionTimer()

	// Log consistency check.
	first := n.store.FirstIndex()
	last := n.store.LastIndex()
	if args.PrevLogIndex > last {
		reply.ConflictIndex = last + 1
		n.mu.Unlock()
		return reply
	}
	if args.PrevLogIndex >= first || args.PrevLogIndex == first-1 {
		pt, err := n.store.Term(args.PrevLogIndex)
		if err == nil && pt != args.PrevLogTerm {
			// Find the first index of the conflicting term.
			ci := args.PrevLogIndex
			for ci > first {
				t, err := n.store.Term(ci - 1)
				if err != nil || t != pt {
					break
				}
				ci--
			}
			reply.ConflictIndex = ci
			n.mu.Unlock()
			return reply
		}
		if err != nil {
			reply.ConflictIndex = first
			n.mu.Unlock()
			return reply
		}
	} else {
		// PrevLogIndex is inside our snapshot: it is committed, so it
		// matches by definition.
		if args.PrevLogIndex < first-1 {
			reply.ConflictIndex = n.store.LastIndex() + 1
			n.mu.Unlock()
			return reply
		}
	}

	// Resolve conflicts, then append all new entries with a single
	// store.Append — one fsync per RPC instead of one per entry.
	toAppend := args.Entries[:0:0]
	for _, e := range args.Entries {
		if e.Index < first {
			continue // covered by snapshot
		}
		if len(toAppend) == 0 && e.Index <= n.store.LastIndex() {
			t, err := n.store.Term(e.Index)
			if err == nil && t == e.Term {
				continue // already have it
			}
			if err := n.store.TruncateFrom(e.Index); err != nil {
				n.mu.Unlock()
				return reply
			}
		}
		toAppend = append(toAppend, e)
	}
	if len(toAppend) > 0 {
		if err := n.store.Append(toAppend); err != nil {
			n.met.appendErrors.Inc()
			n.mu.Unlock()
			return reply
		}
		for _, e := range toAppend {
			if e.Type == EntryConfig {
				var ps []string
				if json.Unmarshal(e.Data, &ps) == nil {
					n.peers = append([]string(nil), ps...)
					n.pendingConfig = e.Index
				}
			}
		}
	}
	reply.Success = true
	// Advance commit.
	lastNew := args.PrevLogIndex + uint64(len(args.Entries))
	if args.LeaderCommit > n.commitIndex {
		nc := args.LeaderCommit
		if lastNew < nc && lastNew >= args.PrevLogIndex {
			nc = lastNew
		}
		if nc > n.commitIndex {
			n.commitIndex = nc
		}
		if n.pendingConfig > 0 && n.commitIndex >= n.pendingConfig {
			n.pendingConfig = 0
		}
	}
	n.mu.Unlock()
	select {
	case n.applyNotify <- struct{}{}:
	default:
	}
	return reply
}

func (r *raftRegistry) handleInstallSnapshot(_ context.Context, h *mercury.Handle) {
	var args installSnapshotArgs
	if err := codec.Unmarshal(h.Input(), &args); err != nil {
		_ = h.RespondError(err)
		return
	}
	n := r.lookup(args.Group)
	if n == nil {
		_ = h.RespondError(fmt.Errorf("raft: unknown group %q", args.Group))
		return
	}
	_ = h.Respond(codec.Marshal(n.onInstallSnapshot(&args)))
}

func (n *Node) onInstallSnapshot(args *installSnapshotArgs) *appendEntriesReply {
	n.mu.Lock()
	reply := &appendEntriesReply{Term: n.term}
	if args.Term < n.term {
		n.mu.Unlock()
		return reply
	}
	if args.Term > n.term {
		n.term = args.Term
		n.votedFor = ""
		_ = n.store.SetState(n.term, n.votedFor)
		reply.Term = n.term
	}
	n.role = Follower
	n.leader = args.Leader
	n.resetElectionTimer()
	if args.LastIndex <= n.commitIndex {
		reply.Success = true
		n.mu.Unlock()
		return reply
	}
	var env snapshotEnvelope
	if err := codec.Unmarshal(args.Data, &env); err != nil {
		n.mu.Unlock()
		return reply
	}
	if err := n.fsm.Restore(env.FSM); err != nil {
		n.mu.Unlock()
		return reply
	}
	if err := n.store.SaveSnapshot(args.LastIndex, args.LastTerm, args.Data); err != nil {
		n.mu.Unlock()
		return reply
	}
	n.peers = append([]string(nil), env.Peers...)
	n.commitIndex = args.LastIndex
	n.lastApplied = args.LastIndex
	n.signalAppliedLocked()
	reply.Success = true
	n.mu.Unlock()
	return reply
}

func (r *raftRegistry) handleApply(_ context.Context, h *mercury.Handle) {
	var args applyArgs
	if err := codec.Unmarshal(h.Input(), &args); err != nil {
		_ = h.RespondError(err)
		return
	}
	n := r.lookup(args.Group)
	if n == nil {
		_ = h.Respond(codec.Marshal(&applyReply{Err: "unknown group"}))
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*n.cfg.ElectionTimeoutMax)
	defer cancel()
	result, err := n.Apply(ctx, args.Cmd)
	reply := applyReply{}
	if err != nil {
		reply.Err = err.Error()
		reply.LeaderHint = n.Leader()
	} else {
		reply.OK = true
		reply.Result = result
	}
	_ = h.Respond(codec.Marshal(&reply))
}

func (r *raftRegistry) handleRead(_ context.Context, h *mercury.Handle) {
	var args readArgs
	if err := codec.Unmarshal(h.Input(), &args); err != nil {
		_ = h.RespondError(err)
		return
	}
	n := r.lookup(args.Group)
	if n == nil {
		_ = h.Respond(codec.Marshal(&applyReply{Err: "unknown group"}))
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*n.cfg.ElectionTimeoutMax)
	defer cancel()
	result, err := n.Read(ctx, args.Query)
	reply := applyReply{}
	if err != nil {
		reply.Err = err.Error()
		reply.LeaderHint = n.Leader()
	} else {
		reply.OK = true
		reply.Result = result
	}
	_ = h.Respond(codec.Marshal(&reply))
}

func (r *raftRegistry) handleConfigChange(_ context.Context, h *mercury.Handle) {
	var args configChangeArgs
	if err := codec.Unmarshal(h.Input(), &args); err != nil {
		_ = h.RespondError(err)
		return
	}
	n := r.lookup(args.Group)
	if n == nil {
		_ = h.Respond(codec.Marshal(&applyReply{Err: "unknown group"}))
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*n.cfg.ElectionTimeoutMax)
	defer cancel()
	err := n.changeConfig(ctx, args.Addr, args.Remove)
	reply := applyReply{}
	if err != nil {
		reply.Err = err.Error()
		reply.LeaderHint = n.Leader()
	} else {
		reply.OK = true
	}
	_ = h.Respond(codec.Marshal(&reply))
}

func (r *raftRegistry) handleStatus(_ context.Context, h *mercury.Handle) {
	var args statusArgs
	if err := codec.Unmarshal(h.Input(), &args); err != nil {
		_ = h.RespondError(err)
		return
	}
	n := r.lookup(args.Group)
	if n == nil {
		_ = h.Respond(codec.Marshal(&statusReply{}))
		return
	}
	st := n.Status()
	_ = h.Respond(codec.Marshal(&statusReply{
		OK:          true,
		Role:        uint8(st.Role),
		Term:        st.Term,
		Leader:      st.Leader,
		CommitIndex: st.CommitIndex,
		LastApplied: st.LastApplied,
		Peers:       st.Peers,
	}))
}
