//go:build !race

package raft

// raceEnabled reports whether the race detector is compiled in.
//
// Allocation-pinning tests skip under the race detector: its
// instrumentation allocates shadow state that would fail any pin.
const raceEnabled = false
