package raft

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// TestFollowerLogRepair drives the Log Matching machinery explicitly:
// a follower accumulates conflicting uncommitted entries while
// partitioned as a minority leader, then must truncate and adopt the
// real leader's log after healing.
func TestFollowerLogRepair(t *testing.T) {
	c := newRaftCluster(t, 5, fastRaftCfg())
	leader := c.waitLeader()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := leader.Apply(ctx, []byte("set base 0")); err != nil {
		t.Fatal(err)
	}

	// Partition the leader with one follower (minority of 5): it can
	// append but never commit.
	minority := []string{leader.ID()}
	var majority []string
	for _, a := range c.addrs {
		if a != leader.ID() && len(minority) < 2 {
			minority = append(minority, a)
			continue
		}
		if a != leader.ID() {
			majority = append(majority, a)
		}
	}
	c.fabric.Partition(minority, majority)
	for i := 0; i < 5; i++ {
		sctx, scancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
		_, _ = leader.Apply(sctx, []byte(fmt.Sprintf("set doomed %d", i)))
		scancel()
	}
	doomedLast := c.stores[leader.ID()].LastIndex()
	if doomedLast < 2 {
		t.Fatalf("minority leader appended nothing (last=%d)", doomedLast)
	}

	// The majority elects a new leader and commits real entries.
	var newLeader *Node
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) && newLeader == nil {
		for _, a := range majority {
			if c.nodes[a].IsLeader() {
				newLeader = c.nodes[a]
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if newLeader == nil {
		t.Fatal("majority has no leader")
	}
	for i := 0; i < 5; i++ {
		if _, err := newLeader.Apply(ctx, []byte(fmt.Sprintf("set real %d", i))); err != nil {
			t.Fatal(err)
		}
	}

	// Heal: the deposed nodes must truncate their doomed entries and
	// adopt the committed log.
	c.fabric.Heal()
	deadline = time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if c.fsms[leader.ID()].get("real") == "4" && c.fsms[leader.ID()].get("doomed") == "" {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := c.fsms[leader.ID()].get("real"); got != "4" {
		t.Fatalf("deposed leader never repaired: real=%q", got)
	}
	if got := c.fsms[leader.ID()].get("doomed"); got != "" {
		t.Fatalf("doomed entry applied: %q", got)
	}
	// Log terms at every overlapping index agree with the new leader
	// (the Log Matching property).
	ref := c.stores[newLeader.ID()]
	st := c.stores[leader.ID()]
	last := st.LastIndex()
	if ref.LastIndex() < last {
		last = ref.LastIndex()
	}
	for i := st.FirstIndex(); i <= last; i++ {
		a, errA := st.Term(i)
		b, errB := ref.Term(i)
		if errA != nil || errB != nil {
			continue
		}
		if a != b {
			t.Fatalf("log mismatch at %d: term %d vs %d", i, a, b)
		}
	}
}

func TestApplyOnStoppedNode(t *testing.T) {
	c := newRaftCluster(t, 1, fastRaftCfg())
	leader := c.waitLeader()
	leader.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := leader.Apply(ctx, []byte("x")); err != ErrStopped {
		t.Fatalf("err = %v", err)
	}
}

func TestConfigChangeRejectedOnFollower(t *testing.T) {
	c := newRaftCluster(t, 3, fastRaftCfg())
	leader := c.waitLeader()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	for _, n := range c.nodes {
		if n.ID() == leader.ID() {
			continue
		}
		if err := n.AddServer(ctx, "sm://nobody"); err == nil {
			t.Fatal("follower accepted config change")
		}
		break
	}
}

func TestTakeSnapshotIsIdempotent(t *testing.T) {
	c := newRaftCluster(t, 1, fastRaftCfg())
	leader := c.waitLeader()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < 5; i++ {
		if _, err := leader.Apply(ctx, []byte(fmt.Sprintf("set s%d v", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := leader.TakeSnapshot(); err != nil {
		t.Fatal(err)
	}
	first := c.stores[leader.ID()].FirstIndex()
	if first == 1 {
		t.Fatal("snapshot did not compact")
	}
	if err := leader.TakeSnapshot(); err != nil {
		t.Fatal(err)
	}
	// The node keeps working after compaction.
	if _, err := leader.Apply(ctx, []byte("set post snap")); err != nil {
		t.Fatal(err)
	}
}
