// Package raft implements Mochi-RAFT (paper §7, Observation 11):
// state-machine replication over the margo RPC layer, usable both
// bottom-up (replicating one component's state, e.g. a set of Yokan
// databases behind a virtual resource) and top-down (a replicated
// controller applying commands to non-resilient components).
//
// The implementation follows Ongaro & Ousterhout's Raft: randomized
// leader election, log replication with the Log Matching property,
// commitment only of current-term entries, snapshot-based log
// compaction with InstallSnapshot for lagging followers, and
// single-server membership changes.
package raft

import (
	"errors"

	"mochi/internal/codec"
)

// Errors returned by nodes.
var (
	ErrNotLeader  = errors.New("raft: not the leader")
	ErrNoLeader   = errors.New("raft: no known leader")
	ErrStopped    = errors.New("raft: node stopped")
	ErrTimeout    = errors.New("raft: commit timed out")
	ErrBadConfig  = errors.New("raft: invalid configuration change")
	ErrCompacted  = errors.New("raft: index compacted into snapshot")
	ErrInProgress = errors.New("raft: configuration change in progress")
	ErrNoReader   = errors.New("raft: fsm does not support read-only queries")
)

// FSM is the replicated state machine. Apply is invoked exactly once
// per committed entry, in index order, on a single goroutine.
type FSM interface {
	// Apply executes a committed command and returns its result.
	Apply(index uint64, cmd []byte) []byte
	// Snapshot captures the full state for log compaction.
	Snapshot() ([]byte, error)
	// Restore replaces the state from a snapshot.
	Restore(snapshot []byte) error
}

// Command is one committed command handed to BatchFSM.ApplyBatch.
type Command struct {
	Index uint64
	Data  []byte
}

// BatchFSM is an optional FSM extension: the applier drains the whole
// committed range per wakeup and, when the FSM implements it, hands
// the run of commands over in one call so the FSM can apply them under
// one internal lock acquisition instead of one per command. Results
// must be returned positionally (len(results) == len(cmds)); ordering
// and exactly-once semantics are unchanged from Apply.
type BatchFSM interface {
	FSM
	ApplyBatch(cmds []Command) [][]byte
}

// ReaderFSM is an optional FSM extension for the ReadIndex path: Read
// answers a read-only query from current state without writing a log
// entry. Unlike Apply, Read is called from RPC handler goroutines
// concurrently with the applier, so implementations must synchronize
// reads against Apply/ApplyBatch internally.
type ReaderFSM interface {
	Read(query []byte) []byte
}

// EntryType distinguishes log entry kinds.
type EntryType uint8

const (
	// EntryCommand carries an FSM command.
	EntryCommand EntryType = iota
	// EntryNoop is appended by a new leader to commit prior terms.
	EntryNoop
	// EntryConfig carries a membership change (the new peer set).
	EntryConfig
)

// LogEntry is one replicated log record.
type LogEntry struct {
	Index uint64
	Term  uint64
	Type  EntryType
	Data  []byte
}

// MarshalMochi implements codec.Marshaler.
func (e *LogEntry) MarshalMochi(enc *codec.Encoder) {
	enc.Uint64(e.Index)
	enc.Uint64(e.Term)
	enc.Uint8(uint8(e.Type))
	enc.BytesField(e.Data)
}

// UnmarshalMochi implements codec.Unmarshaler.
func (e *LogEntry) UnmarshalMochi(d *codec.Decoder) {
	e.Index = d.Uint64()
	e.Term = d.Uint64()
	e.Type = EntryType(d.Uint8())
	e.Data = append([]byte(nil), d.BytesField()...)
}

// Role is a node's current protocol role.
type Role uint8

const (
	Follower Role = iota
	Candidate
	Leader
)

func (r Role) String() string {
	switch r {
	case Follower:
		return "follower"
	case Candidate:
		return "candidate"
	case Leader:
		return "leader"
	}
	return "unknown"
}

// Store is the persistence layer: term/vote metadata, the log, and
// the most recent snapshot. Implementations must be safe for use from
// one goroutine (the node serializes access).
type Store interface {
	// SetState durably records the current term and vote.
	SetState(term uint64, votedFor string) error
	// State returns the recorded term and vote (zero values if none).
	State() (term uint64, votedFor string, err error)
	// Append adds entries at the end of the log.
	Append(entries []LogEntry) error
	// Entry returns the entry at index (ErrCompacted if discarded,
	// ok=false if beyond the log).
	Entry(index uint64) (LogEntry, error)
	// Entries returns entries in [lo, hi] inclusive.
	Entries(lo, hi uint64) ([]LogEntry, error)
	// FirstIndex is the lowest index still in the log (snapshot
	// index + 1 after compaction); 1 for a fresh log.
	FirstIndex() uint64
	// LastIndex is the highest appended index (or the snapshot index
	// if the log is empty); 0 for a fresh log.
	LastIndex() uint64
	// Term returns the term of the entry at index, handling the
	// snapshot boundary.
	Term(index uint64) (uint64, error)
	// TruncateFrom removes all entries with index >= index.
	TruncateFrom(index uint64) error
	// SaveSnapshot stores a snapshot covering entries up to and
	// including index (with the given term) and discards them.
	SaveSnapshot(index, term uint64, data []byte) error
	// Snapshot returns the stored snapshot (index 0 when none).
	Snapshot() (data []byte, index, term uint64, err error)
	// Close releases resources.
	Close() error
}
