package raft

import "mochi/internal/codec"

// RPC names; groups are multiplexed by name in the payload.
const (
	rpcRequestVote     = "raft_request_vote"
	rpcAppendEntries   = "raft_append_entries"
	rpcInstallSnapshot = "raft_install_snapshot"
	rpcApply           = "raft_apply"
	rpcRead            = "raft_read"
	rpcConfigChange    = "raft_config_change"
	rpcStatus          = "raft_status"
)

type requestVoteArgs struct {
	Group        string
	Term         uint64
	Candidate    string
	LastLogIndex uint64
	LastLogTerm  uint64
}

func (a *requestVoteArgs) MarshalMochi(e *codec.Encoder) {
	e.String(a.Group)
	e.Uint64(a.Term)
	e.String(a.Candidate)
	e.Uint64(a.LastLogIndex)
	e.Uint64(a.LastLogTerm)
}

func (a *requestVoteArgs) UnmarshalMochi(d *codec.Decoder) {
	a.Group = d.String()
	a.Term = d.Uint64()
	a.Candidate = d.String()
	a.LastLogIndex = d.Uint64()
	a.LastLogTerm = d.Uint64()
}

type requestVoteReply struct {
	Term    uint64
	Granted bool
}

func (r *requestVoteReply) MarshalMochi(e *codec.Encoder) {
	e.Uint64(r.Term)
	e.Bool(r.Granted)
}

func (r *requestVoteReply) UnmarshalMochi(d *codec.Decoder) {
	r.Term = d.Uint64()
	r.Granted = d.Bool()
}

type appendEntriesArgs struct {
	Group        string
	Term         uint64
	Leader       string
	PrevLogIndex uint64
	PrevLogTerm  uint64
	Entries      []LogEntry
	LeaderCommit uint64
}

func (a *appendEntriesArgs) MarshalMochi(e *codec.Encoder) {
	e.String(a.Group)
	e.Uint64(a.Term)
	e.String(a.Leader)
	e.Uint64(a.PrevLogIndex)
	e.Uint64(a.PrevLogTerm)
	e.Uvarint(uint64(len(a.Entries)))
	for i := range a.Entries {
		a.Entries[i].MarshalMochi(e)
	}
	e.Uint64(a.LeaderCommit)
}

func (a *appendEntriesArgs) UnmarshalMochi(d *codec.Decoder) {
	a.Group = d.String()
	a.Term = d.Uint64()
	a.Leader = d.String()
	a.PrevLogIndex = d.Uint64()
	a.PrevLogTerm = d.Uint64()
	n := d.Uvarint()
	if n > uint64(d.Remaining())+1 {
		return
	}
	a.Entries = make([]LogEntry, 0, n)
	for i := uint64(0); i < n; i++ {
		var le LogEntry
		le.UnmarshalMochi(d)
		if d.Err() != nil {
			return
		}
		a.Entries = append(a.Entries, le)
	}
	a.LeaderCommit = d.Uint64()
}

type appendEntriesReply struct {
	Term    uint64
	Success bool
	// ConflictIndex accelerates nextIndex backtracking.
	ConflictIndex uint64
}

func (r *appendEntriesReply) MarshalMochi(e *codec.Encoder) {
	e.Uint64(r.Term)
	e.Bool(r.Success)
	e.Uint64(r.ConflictIndex)
}

func (r *appendEntriesReply) UnmarshalMochi(d *codec.Decoder) {
	r.Term = d.Uint64()
	r.Success = d.Bool()
	r.ConflictIndex = d.Uint64()
}

type installSnapshotArgs struct {
	Group     string
	Term      uint64
	Leader    string
	LastIndex uint64
	LastTerm  uint64
	Peers     []string
	Data      []byte
}

func (a *installSnapshotArgs) MarshalMochi(e *codec.Encoder) {
	e.String(a.Group)
	e.Uint64(a.Term)
	e.String(a.Leader)
	e.Uint64(a.LastIndex)
	e.Uint64(a.LastTerm)
	e.StringSlice(a.Peers)
	e.BytesField(a.Data)
}

func (a *installSnapshotArgs) UnmarshalMochi(d *codec.Decoder) {
	a.Group = d.String()
	a.Term = d.Uint64()
	a.Leader = d.String()
	a.LastIndex = d.Uint64()
	a.LastTerm = d.Uint64()
	a.Peers = d.StringSlice()
	a.Data = append([]byte(nil), d.BytesField()...)
}

type applyArgs struct {
	Group string
	Cmd   []byte
}

func (a *applyArgs) MarshalMochi(e *codec.Encoder) {
	e.String(a.Group)
	e.BytesField(a.Cmd)
}

func (a *applyArgs) UnmarshalMochi(d *codec.Decoder) {
	a.Group = d.String()
	a.Cmd = append([]byte(nil), d.BytesField()...)
}

// readArgs carries a ReadIndex query; the reply reuses applyReply.
type readArgs struct {
	Group string
	Query []byte
}

func (a *readArgs) MarshalMochi(e *codec.Encoder) {
	e.String(a.Group)
	e.BytesField(a.Query)
}

func (a *readArgs) UnmarshalMochi(d *codec.Decoder) {
	a.Group = d.String()
	a.Query = append([]byte(nil), d.BytesField()...)
}

type applyReply struct {
	OK         bool
	Err        string
	Result     []byte
	LeaderHint string
}

func (r *applyReply) MarshalMochi(e *codec.Encoder) {
	e.Bool(r.OK)
	e.String(r.Err)
	e.BytesField(r.Result)
	e.String(r.LeaderHint)
}

func (r *applyReply) UnmarshalMochi(d *codec.Decoder) {
	r.OK = d.Bool()
	r.Err = d.String()
	r.Result = append([]byte(nil), d.BytesField()...)
	r.LeaderHint = d.String()
}

type configChangeArgs struct {
	Group  string
	Addr   string
	Remove bool
}

func (a *configChangeArgs) MarshalMochi(e *codec.Encoder) {
	e.String(a.Group)
	e.String(a.Addr)
	e.Bool(a.Remove)
}

func (a *configChangeArgs) UnmarshalMochi(d *codec.Decoder) {
	a.Group = d.String()
	a.Addr = d.String()
	a.Remove = d.Bool()
}

type statusArgs struct {
	Group string
}

func (a *statusArgs) MarshalMochi(e *codec.Encoder) { e.String(a.Group) }

func (a *statusArgs) UnmarshalMochi(d *codec.Decoder) { a.Group = d.String() }

type statusReply struct {
	OK          bool
	Role        uint8
	Term        uint64
	Leader      string
	CommitIndex uint64
	LastApplied uint64
	Peers       []string
}

func (r *statusReply) MarshalMochi(e *codec.Encoder) {
	e.Bool(r.OK)
	e.Uint8(r.Role)
	e.Uint64(r.Term)
	e.String(r.Leader)
	e.Uint64(r.CommitIndex)
	e.Uint64(r.LastApplied)
	e.StringSlice(r.Peers)
}

func (r *statusReply) UnmarshalMochi(d *codec.Decoder) {
	r.OK = d.Bool()
	r.Role = d.Uint8()
	r.Term = d.Uint64()
	r.Leader = d.String()
	r.CommitIndex = d.Uint64()
	r.LastApplied = d.Uint64()
	r.Peers = d.StringSlice()
}

// snapshotEnvelope wraps an FSM snapshot with the peer configuration
// current at the snapshot index.
type snapshotEnvelope struct {
	Peers []string
	FSM   []byte
}

func (s *snapshotEnvelope) MarshalMochi(e *codec.Encoder) {
	e.StringSlice(s.Peers)
	e.BytesField(s.FSM)
}

func (s *snapshotEnvelope) UnmarshalMochi(d *codec.Decoder) {
	s.Peers = d.StringSlice()
	s.FSM = append([]byte(nil), d.BytesField()...)
}
