package raft

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mochi/internal/margo"
	"mochi/internal/mercury"
)

// ApplyBatch implements BatchFSM for the test kvFSM: the node hands a
// whole committed run over in one call.
func (f *kvFSM) ApplyBatch(cmds []Command) [][]byte {
	f.mu.Lock()
	f.batchSizes = append(f.batchSizes, len(cmds))
	f.mu.Unlock()
	out := make([][]byte, len(cmds))
	for i, c := range cmds {
		out[i] = f.Apply(c.Index, c.Data)
	}
	return out
}

// Read implements ReaderFSM for the test kvFSM: "get k" queries.
func (f *kvFSM) Read(query []byte) []byte {
	parts := bytes.SplitN(query, []byte(" "), 2)
	if len(parts) == 2 && string(parts[0]) == "get" {
		f.mu.Lock()
		defer f.mu.Unlock()
		return []byte(f.m[string(parts[1])])
	}
	return nil
}

func (f *kvFSM) maxBatch() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	max := 0
	for _, n := range f.batchSizes {
		if n > max {
			max = n
		}
	}
	return max
}

// singleNode builds a one-member group on its own fabric with the
// given store, returning the node once it leads.
func singleNode(t *testing.T, store Store, fsm FSM, cfg Config) *Node {
	t.Helper()
	fabric := mercury.NewFabric()
	cls, err := fabric.NewClass("raft-single")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := margo.New(cls, nil)
	if err != nil {
		t.Fatal(err)
	}
	node, err := NewNode(inst, "g", []string{inst.Addr()}, store, fsm, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		node.Stop()
		inst.Finalize()
	})
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		if node.IsLeader() {
			return node
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("single node never became leader")
	return nil
}

// TestApplyGroupCommitBatches proves the tentpole's fsync claim at the
// store level: N concurrent proposals on a sync-enabled FileStore must
// complete with fewer than N fsyncs, because the group-commit leader
// persists whole batches with one Append.
func TestApplyGroupCommitBatches(t *testing.T) {
	fs, err := NewFileStore(t.TempDir(), false) // sync enabled
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	cfg := fastRaftCfg()
	cfg.BatchWindow = 2 * time.Millisecond
	fsm := newKVFSM()
	node := singleNode(t, fs, fsm, cfg)

	const ops = 64
	base := fs.Syncs() // election no-op etc.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make(chan error, ops)
	for i := 0; i < ops; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := node.Apply(ctx, []byte(fmt.Sprintf("set k%d v%d", i, i))); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	syncs := fs.Syncs() - base
	if syncs >= ops {
		t.Fatalf("%d fsyncs for %d concurrent applies; group commit should need fewer than one per op", syncs, ops)
	}
	if fsm.get("k63") != "v63" {
		t.Fatal("command not applied")
	}
	if fsm.maxBatch() < 2 {
		t.Fatalf("largest ApplyBatch run = %d; batched apply never coalesced", fsm.maxBatch())
	}
}

// failingStore wraps a Store and fails Append on demand.
type failingStore struct {
	Store
	fail atomic.Bool
}

func (s *failingStore) Append(entries []LogEntry) error {
	if s.fail.Load() {
		return errors.New("injected disk failure")
	}
	return s.Store.Append(entries)
}

// TestAppendLocalSurfacesStoreError covers the satellite fix: a
// persistent-store write failure on the leader must surface the store
// error to the caller and step the leader down — not return a generic
// "append failed" while staying leader.
func TestAppendLocalSurfacesStoreError(t *testing.T) {
	fs := &failingStore{Store: NewMemoryStore()}
	node := singleNode(t, fs, newKVFSM(), fastRaftCfg())

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := node.Apply(ctx, []byte("set a 1")); err != nil {
		t.Fatal(err)
	}

	fs.fail.Store(true)
	_, err := node.Apply(ctx, []byte("set b 2"))
	if err == nil {
		t.Fatal("Apply succeeded with a failing store")
	}
	if !strings.Contains(err.Error(), "injected disk failure") {
		t.Fatalf("store error swallowed: %v", err)
	}
	if node.IsLeader() {
		t.Fatal("leader kept leading after a persistent-store append failure")
	}

	// Once the store recovers, the node wins its next election and
	// accepts commands again.
	fs.fail.Store(false)
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) && !node.IsLeader() {
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := node.Apply(ctx, []byte("set c 3")); err != nil {
		t.Fatalf("apply after store recovery: %v", err)
	}
}

// TestReadIndexServesReads: linearizable reads answer from the FSM
// without growing the log, and only the leader serves them.
func TestReadIndexServesReads(t *testing.T) {
	c := newRaftCluster(t, 3, fastRaftCfg())
	leader := c.waitLeader()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if _, err := c.apply(ctx, []byte("set ri v1")); err != nil {
		t.Fatal(err)
	}

	leader = c.waitLeader()
	before := c.stores[leader.ID()].LastIndex()
	for i := 0; i < 10; i++ {
		out, err := leader.Read(ctx, []byte("get ri"))
		if err != nil {
			t.Fatal(err)
		}
		if string(out) != "v1" {
			t.Fatalf("read = %q", out)
		}
	}
	if after := c.stores[leader.ID()].LastIndex(); after != before {
		t.Fatalf("log grew from %d to %d across reads; ReadIndex must not append", before, after)
	}

	// Followers refuse and point at the leader.
	for _, n := range c.nodes {
		if n.ID() == leader.ID() {
			continue
		}
		if _, err := n.Read(ctx, []byte("get ri")); err == nil {
			t.Fatal("follower served a ReadIndex get")
		}
		break
	}

	// A write observed through Read immediately after Apply returns.
	if _, err := leader.Apply(ctx, []byte("set ri v2")); err == nil {
		out, err := leader.Read(ctx, []byte("get ri"))
		if err != nil {
			t.Fatal(err)
		}
		if string(out) != "v2" {
			t.Fatalf("stale read %q after acknowledged write", out)
		}
	}
}

// plainFSM deliberately does not implement ReaderFSM.
type plainFSM struct {
	mu sync.Mutex
	m  map[string][]byte
}

func (f *plainFSM) Apply(_ uint64, cmd []byte) []byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.m == nil {
		f.m = map[string][]byte{}
	}
	f.m[string(cmd)] = cmd
	return cmd
}
func (f *plainFSM) Snapshot() ([]byte, error) { return nil, nil }
func (f *plainFSM) Restore([]byte) error      { return nil }

// TestReadRequiresReaderFSM: a group whose FSM lacks Read reports
// ErrNoReader instead of hanging or panicking.
func TestReadRequiresReaderFSM(t *testing.T) {
	node := singleNode(t, NewMemoryStore(), &plainFSM{}, fastRaftCfg())
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := node.Read(ctx, []byte("q")); !errors.Is(err, ErrNoReader) {
		t.Fatalf("err = %v, want ErrNoReader", err)
	}
}

// TestClientReadFollowsLeader: the client Read RPC forwards to the
// leader via hints, like Apply.
func TestClientReadFollowsLeader(t *testing.T) {
	c := newRaftCluster(t, 3, fastRaftCfg())
	c.waitLeader()
	cls, _ := c.fabric.NewClass("raft-read-client")
	inst, err := margo.New(cls, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Finalize()
	client := NewClient(inst, "g", c.addrs)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if _, err := client.Apply(ctx, []byte("set cr v")); err != nil {
		t.Fatal(err)
	}
	out, err := client.Read(ctx, []byte("get cr"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "v" {
		t.Fatalf("client read = %q", out)
	}
}

// TestApplyBatchedAllocsPinned pins the per-proposal allocation budget
// of the batched hot path (single-node MemoryStore, so no RPC or disk
// in the loop): proposal + batch bookkeeping + waiter wakeup + FSM
// apply. The pin has headroom for scheduler jitter; blowing past it
// means a per-entry copy or per-wakeup slice crept into the path.
func TestApplyBatchedAllocsPinned(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc pinning is meaningless under the race detector")
	}
	node := singleNode(t, NewMemoryStore(), newKVFSM(), fastRaftCfg())
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	cmd := []byte("set pin v")
	if _, err := node.Apply(ctx, cmd); err != nil {
		t.Fatal(err)
	}
	per := testing.AllocsPerRun(200, func() {
		if _, err := node.Apply(ctx, cmd); err != nil {
			t.Fatal(err)
		}
	})
	// Serial applies are worst-case: every proposal is its own batch,
	// so the whole batch overhead lands on one op. Measured ~30;
	// pinned at 48 for headroom.
	if per > 48 {
		t.Fatalf("Apply allocates %.1f per op; pin is 48 (batch bookkeeping regressed)", per)
	}
}
