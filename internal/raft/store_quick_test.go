package raft

import (
	"fmt"
	"testing"
	"testing/quick"
)

// storeOp drives the property test below.
type storeOp struct {
	Kind     uint8 // 0 append, 1 truncate, 2 snapshot
	Arg      uint8
	TermBump bool
}

// applyOps replays a random op sequence against a Store and an
// in-test reference model, checking agreement after every step.
func applyOps(t *testing.T, mk func() Store, ops []storeOp) bool {
	t.Helper()
	s := mk()
	defer s.Close()
	type ref struct {
		term uint64
	}
	model := map[uint64]ref{} // index -> term of live entries
	var snapIdx uint64
	term := uint64(1)
	for _, op := range ops {
		if op.TermBump {
			term++
		}
		switch op.Kind % 3 {
		case 0: // append 1..4 entries
			n := int(op.Arg%4) + 1
			for i := 0; i < n; i++ {
				idx := s.LastIndex() + 1
				if err := s.Append([]LogEntry{{Index: idx, Term: term, Type: EntryCommand, Data: []byte{byte(idx)}}}); err != nil {
					t.Logf("append: %v", err)
					return false
				}
				model[idx] = ref{term: term}
			}
		case 1: // truncate from a live index
			if s.LastIndex() < s.FirstIndex() {
				continue
			}
			span := s.LastIndex() - s.FirstIndex() + 1
			idx := s.FirstIndex() + uint64(op.Arg)%span
			if err := s.TruncateFrom(idx); err != nil {
				t.Logf("truncate: %v", err)
				return false
			}
			for i := idx; i <= idx+span; i++ {
				delete(model, i)
			}
		case 2: // snapshot up to a live index
			if s.LastIndex() == 0 || s.LastIndex() < s.FirstIndex() {
				continue
			}
			span := s.LastIndex() - s.FirstIndex() + 1
			idx := s.FirstIndex() + uint64(op.Arg)%span
			tm, err := s.Term(idx)
			if err != nil {
				t.Logf("term: %v", err)
				return false
			}
			if err := s.SaveSnapshot(idx, tm, []byte("snap")); err != nil {
				t.Logf("snapshot: %v", err)
				return false
			}
			if idx > snapIdx {
				snapIdx = idx
			}
			for i := range model {
				if i <= snapIdx {
					delete(model, i)
				}
			}
		}
		// Invariants after every operation.
		if s.FirstIndex() != snapIdx+1 {
			t.Logf("first=%d snap=%d", s.FirstIndex(), snapIdx)
			return false
		}
		for i := s.FirstIndex(); i <= s.LastIndex(); i++ {
			e, err := s.Entry(i)
			if err != nil {
				t.Logf("entry(%d): %v", i, err)
				return false
			}
			m, ok := model[i]
			if !ok || e.Term != m.term || e.Index != i {
				t.Logf("mismatch at %d: %+v vs %+v (ok=%v)", i, e, m, ok)
				return false
			}
		}
		// Model has nothing beyond the store.
		for i := range model {
			if i > s.LastIndex() || i < s.FirstIndex() {
				t.Logf("model leak at %d (range %d..%d)", i, s.FirstIndex(), s.LastIndex())
				return false
			}
		}
	}
	return true
}

func TestQuickMemoryStoreModel(t *testing.T) {
	f := func(ops []storeOp) bool {
		if len(ops) > 60 {
			ops = ops[:60]
		}
		return applyOps(t, func() Store { return NewMemoryStore() }, ops)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFileStoreModel(t *testing.T) {
	count := 0
	f := func(ops []storeOp) bool {
		if len(ops) > 40 {
			ops = ops[:40]
		}
		count++
		dir := t.TempDir() + fmt.Sprintf("/s%d", count)
		return applyOps(t, func() Store {
			s, err := NewFileStore(dir, true)
			if err != nil {
				t.Fatal(err)
			}
			return s
		}, ops)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestFileStoreReopenAfterRandomOps: the durable store reloads to the
// same state it had before closing.
func TestFileStoreReopenAfterRandomOps(t *testing.T) {
	dir := t.TempDir()
	s, err := NewFileStore(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 20; i++ {
		if err := s.Append([]LogEntry{{Index: i, Term: 1 + i/7, Type: EntryCommand, Data: []byte{byte(i)}}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.SaveSnapshot(8, 2, []byte("mid")); err != nil {
		t.Fatal(err)
	}
	if err := s.TruncateFrom(17); err != nil {
		t.Fatal(err)
	}
	wantFirst, wantLast := s.FirstIndex(), s.LastIndex()
	s.Close()

	s2, err := NewFileStore(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.FirstIndex() != wantFirst || s2.LastIndex() != wantLast {
		t.Fatalf("range [%d,%d], want [%d,%d]", s2.FirstIndex(), s2.LastIndex(), wantFirst, wantLast)
	}
	for i := s2.FirstIndex(); i <= s2.LastIndex(); i++ {
		e, err := s2.Entry(i)
		if err != nil || e.Data[0] != byte(i) {
			t.Fatalf("entry %d: %+v %v", i, e, err)
		}
	}
}
