package raft

import (
	"testing"

	"mochi/internal/codec"
)

// FuzzWireMessages decodes every Raft wire message type from
// arbitrary bytes: hostile inputs from a compromised or corrupted
// peer must produce decode errors, never panics or runaway
// allocations.
func FuzzWireMessages(f *testing.F) {
	seed := func(sel uint8, m codec.Marshaler) { f.Add(sel, codec.Marshal(m)) }
	seed(0, &requestVoteArgs{Group: "g", Term: 3, Candidate: "sm://a", LastLogIndex: 9, LastLogTerm: 2})
	seed(1, &requestVoteReply{Term: 3, Granted: true})
	seed(2, &appendEntriesArgs{
		Group: "g", Term: 3, Leader: "sm://a", PrevLogIndex: 8, PrevLogTerm: 2,
		Entries:      []LogEntry{{Index: 9, Term: 3, Data: []byte("set x 1")}},
		LeaderCommit: 8,
	})
	seed(3, &appendEntriesReply{Term: 3, Success: true, ConflictIndex: 4})
	seed(4, &installSnapshotArgs{Group: "g", Term: 3, Leader: "sm://a", LastIndex: 9, LastTerm: 2, Peers: []string{"sm://a", "sm://b"}, Data: []byte("snap")})
	seed(5, &applyArgs{Group: "g", Cmd: []byte("set k v")})
	seed(6, &applyReply{OK: true, Result: []byte("ok"), LeaderHint: "sm://a"})
	seed(7, &configChangeArgs{Group: "g", Addr: "sm://c", Remove: true})
	seed(8, &statusReply{OK: true, Role: 2, Term: 3, Leader: "sm://a", Peers: []string{"sm://a"}})
	seed(9, &snapshotEnvelope{Peers: []string{"sm://a"}, FSM: []byte("state")})
	seed(10, &readArgs{Group: "g", Query: []byte("get k")})
	f.Add(uint8(2), []byte{0x01, 0x61, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, sel uint8, data []byte) {
		switch sel % 11 {
		case 0:
			var v requestVoteArgs
			_ = codec.Unmarshal(data, &v)
		case 1:
			var v requestVoteReply
			_ = codec.Unmarshal(data, &v)
		case 2:
			var v appendEntriesArgs
			_ = codec.Unmarshal(data, &v)
		case 3:
			var v appendEntriesReply
			_ = codec.Unmarshal(data, &v)
		case 4:
			var v installSnapshotArgs
			_ = codec.Unmarshal(data, &v)
		case 5:
			var v applyArgs
			_ = codec.Unmarshal(data, &v)
		case 6:
			var v applyReply
			_ = codec.Unmarshal(data, &v)
		case 7:
			var v configChangeArgs
			_ = codec.Unmarshal(data, &v)
		case 8:
			var v statusReply
			_ = codec.Unmarshal(data, &v)
		case 9:
			var v snapshotEnvelope
			_ = codec.Unmarshal(data, &v)
		case 10:
			var v readArgs
			_ = codec.Unmarshal(data, &v)
		}
	})
}
