package warabi

import (
	"bytes"
	"sync/atomic"
	"testing"

	"mochi/internal/mercury"
)

// bulkCounter counts bulk operations so tests can assert which I/O
// path (eager RPC vs bulk transfer) a request took.
type bulkCounter struct {
	bulks atomic.Int64
}

func (m *bulkCounter) SentRequest(mercury.RPCID, uint16, string, int)      {}
func (m *bulkCounter) ReceivedRequest(mercury.RPCID, uint16, string, int)  {}
func (m *bulkCounter) SentResponse(mercury.RPCID, uint16, string, int)     {}
func (m *bulkCounter) ReceivedResponse(mercury.RPCID, uint16, string, int) {}
func (m *bulkCounter) BulkTransferred(mercury.BulkOp, string, int)         { m.bulks.Add(1) }

// TestEagerBulkThreshold: writes and reads at the threshold stay on
// the eager path; one byte over switches to the bulk path — the
// Mercury eager/rendezvous split the cost model reasons about.
func TestEagerBulkThreshold(t *testing.T) {
	env := newRemoteEnv(t, Config{Type: "memory"})
	counter := &bulkCounter{}
	env.server.Class().SetMonitor(counter)
	ctx := rctx(t)

	id, err := env.h.Create(ctx, 2*EagerThreshold+2)
	if err != nil {
		t.Fatal(err)
	}

	atLimit := bytes.Repeat([]byte{7}, EagerThreshold)
	if err := env.h.Write(ctx, id, 0, atLimit); err != nil {
		t.Fatal(err)
	}
	if got, err := env.h.Read(ctx, id, 0, EagerThreshold); err != nil || !bytes.Equal(got, atLimit) {
		t.Fatalf("eager read: %v", err)
	}
	if n := counter.bulks.Load(); n != 0 {
		t.Fatalf("threshold-sized I/O used %d bulk ops", n)
	}

	overLimit := bytes.Repeat([]byte{9}, EagerThreshold+1)
	if err := env.h.Write(ctx, id, 0, overLimit); err != nil {
		t.Fatal(err)
	}
	if n := counter.bulks.Load(); n != 1 {
		t.Fatalf("over-threshold write used %d bulk ops, want 1", n)
	}
	got, err := env.h.Read(ctx, id, 0, EagerThreshold+1)
	if err != nil || !bytes.Equal(got, overLimit) {
		t.Fatalf("bulk read: %v", err)
	}
	if n := counter.bulks.Load(); n != 2 {
		t.Fatalf("over-threshold read used %d bulk ops, want 2", n)
	}
}
