// Package warabi is the blob-storage component (paper §3.2: datasets'
// "data in a blob storage target (managed by the Warabi component)").
// A provider manages a Target — a collection of fixed-size regions —
// behind an abstract interface with in-memory and file backends.
//
// Small reads and writes travel inline in RPCs (Mercury's eager path);
// large ones use the bulk-transfer API: the client exposes its buffer
// and the provider pulls or pushes it in one RDMA-like operation.
package warabi

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// Errors returned by targets and clients.
var (
	ErrRegionNotFound = errors.New("warabi: region not found")
	ErrOutOfBounds    = errors.New("warabi: access out of region bounds")
	ErrClosed         = errors.New("warabi: target closed")
	ErrBadConfig      = errors.New("warabi: invalid configuration")
)

// RegionID names one region within a target.
type RegionID uint64

// Target is the abstract blob resource.
type Target interface {
	// Create allocates a zero-filled region of the given size.
	Create(size int64) (RegionID, error)
	// Write stores data at offset within the region.
	Write(id RegionID, offset int64, data []byte) error
	// Read returns size bytes at offset within the region.
	Read(id RegionID, offset int64, size int64) ([]byte, error)
	// Size returns the region's length.
	Size(id RegionID) (int64, error)
	// Persist flushes the region to durable storage (no-op in memory).
	Persist(id RegionID) error
	// Erase removes the region.
	Erase(id RegionID) error
	// List returns all region IDs, ascending.
	List() ([]RegionID, error)
	// Files returns backing file paths (for REMI migration).
	Files() []string
	Close() error
	Destroy() error
}

// Config selects a backend.
type Config struct {
	Type string `json:"type"`
	// Dir is the directory holding region files for the "file" backend.
	Dir string `json:"dir,omitempty"`
}

// Open creates a target from a config.
func Open(cfg Config) (Target, error) {
	switch cfg.Type {
	case "", "memory":
		return newMemTarget(), nil
	case "file":
		if cfg.Dir == "" {
			return nil, fmt.Errorf("%w: file backend needs a dir", ErrBadConfig)
		}
		return openFileTarget(cfg.Dir)
	default:
		return nil, fmt.Errorf("%w: unknown backend %q", ErrBadConfig, cfg.Type)
	}
}

// OpenJSON creates a target from JSON configuration.
func OpenJSON(raw []byte) (Target, error) {
	var cfg Config
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &cfg); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
	}
	return Open(cfg)
}

// memTarget keeps regions in RAM.
type memTarget struct {
	mu      sync.RWMutex
	regions map[RegionID][]byte
	next    RegionID
	closed  bool
}

func newMemTarget() *memTarget {
	return &memTarget{regions: map[RegionID][]byte{}}
}

func (t *memTarget) Create(size int64) (RegionID, error) {
	if size < 0 {
		return 0, ErrOutOfBounds
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return 0, ErrClosed
	}
	t.next++
	t.regions[t.next] = make([]byte, size)
	return t.next, nil
}

func (t *memTarget) Write(id RegionID, offset int64, data []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrClosed
	}
	r, ok := t.regions[id]
	if !ok {
		return ErrRegionNotFound
	}
	if offset < 0 || offset+int64(len(data)) > int64(len(r)) {
		return ErrOutOfBounds
	}
	copy(r[offset:], data)
	return nil
}

func (t *memTarget) Read(id RegionID, offset, size int64) ([]byte, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.closed {
		return nil, ErrClosed
	}
	r, ok := t.regions[id]
	if !ok {
		return nil, ErrRegionNotFound
	}
	if offset < 0 || size < 0 || offset+size > int64(len(r)) {
		return nil, ErrOutOfBounds
	}
	return append([]byte(nil), r[offset:offset+size]...), nil
}

func (t *memTarget) Size(id RegionID) (int64, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.closed {
		return 0, ErrClosed
	}
	r, ok := t.regions[id]
	if !ok {
		return 0, ErrRegionNotFound
	}
	return int64(len(r)), nil
}

func (t *memTarget) Persist(RegionID) error { return nil }

func (t *memTarget) Erase(id RegionID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrClosed
	}
	if _, ok := t.regions[id]; !ok {
		return ErrRegionNotFound
	}
	delete(t.regions, id)
	return nil
}

func (t *memTarget) List() ([]RegionID, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.closed {
		return nil, ErrClosed
	}
	ids := make([]RegionID, 0, len(t.regions))
	for id := range t.regions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

func (t *memTarget) Files() []string { return nil }

func (t *memTarget) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closed = true
	t.regions = nil
	return nil
}

func (t *memTarget) Destroy() error { return t.Close() }

// fileTarget keeps one file per region inside a directory.
type fileTarget struct {
	mu     sync.Mutex
	dir    string
	next   RegionID
	closed bool
}

func openFileTarget(dir string) (*fileTarget, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	t := &fileTarget{dir: dir}
	// Resume the ID counter past existing regions.
	ids, err := t.List()
	if err != nil {
		return nil, err
	}
	for _, id := range ids {
		if id > t.next {
			t.next = id
		}
	}
	return t, nil
}

func (t *fileTarget) path(id RegionID) string {
	return filepath.Join(t.dir, fmt.Sprintf("region-%016x.blob", uint64(id)))
}

func (t *fileTarget) Create(size int64) (RegionID, error) {
	if size < 0 {
		return 0, ErrOutOfBounds
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return 0, ErrClosed
	}
	t.next++
	id := t.next
	f, err := os.Create(t.path(id))
	if err != nil {
		return 0, err
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return 0, err
	}
	return id, nil
}

func (t *fileTarget) open(id RegionID) (*os.File, error) {
	f, err := os.OpenFile(t.path(id), os.O_RDWR, 0o644)
	if os.IsNotExist(err) {
		return nil, ErrRegionNotFound
	}
	return f, err
}

func (t *fileTarget) Write(id RegionID, offset int64, data []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrClosed
	}
	f, err := t.open(id)
	if err != nil {
		return err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return err
	}
	if offset < 0 || offset+int64(len(data)) > fi.Size() {
		return ErrOutOfBounds
	}
	_, err = f.WriteAt(data, offset)
	return err
}

func (t *fileTarget) Read(id RegionID, offset, size int64) ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, ErrClosed
	}
	f, err := t.open(id)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if offset < 0 || size < 0 || offset+size > fi.Size() {
		return nil, ErrOutOfBounds
	}
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, offset); err != nil && err != io.EOF {
		return nil, err
	}
	return buf, nil
}

func (t *fileTarget) Size(id RegionID) (int64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return 0, ErrClosed
	}
	fi, err := os.Stat(t.path(id))
	if os.IsNotExist(err) {
		return 0, ErrRegionNotFound
	}
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

func (t *fileTarget) Persist(id RegionID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrClosed
	}
	f, err := t.open(id)
	if err != nil {
		return err
	}
	defer f.Close()
	return f.Sync()
}

func (t *fileTarget) Erase(id RegionID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrClosed
	}
	err := os.Remove(t.path(id))
	if os.IsNotExist(err) {
		return ErrRegionNotFound
	}
	return err
}

func (t *fileTarget) List() ([]RegionID, error) {
	entries, err := os.ReadDir(t.dir)
	if err != nil {
		return nil, err
	}
	var ids []RegionID
	for _, e := range entries {
		var raw uint64
		if n, _ := fmt.Sscanf(e.Name(), "region-%x.blob", &raw); n == 1 {
			ids = append(ids, RegionID(raw))
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids, nil
}

func (t *fileTarget) Files() []string {
	ids, err := t.List()
	if err != nil {
		return nil
	}
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = t.path(id)
	}
	return out
}

func (t *fileTarget) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closed = true
	return nil
}

func (t *fileTarget) Destroy() error {
	t.mu.Lock()
	t.closed = true
	dir := t.dir
	t.mu.Unlock()
	return os.RemoveAll(dir)
}
