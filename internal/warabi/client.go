package warabi

import (
	"context"

	"mochi/internal/codec"
	"mochi/internal/margo"
	"mochi/internal/mercury"
)

// Client is the component's client library.
type Client struct {
	inst *margo.Instance
}

// NewClient creates a client over a margo instance.
func NewClient(inst *margo.Instance) *Client {
	return &Client{inst: inst}
}

// TargetHandle maps to a remote target via (address, provider ID).
type TargetHandle struct {
	client   *Client
	addr     string
	provider uint16
}

// Handle returns a handle to the target at (addr, providerID).
func (c *Client) Handle(addr string, providerID uint16) *TargetHandle {
	return &TargetHandle{client: c, addr: addr, provider: providerID}
}

// Addr returns the provider's address.
func (h *TargetHandle) Addr() string { return h.addr }

// ProviderID returns the provider's ID.
func (h *TargetHandle) ProviderID() uint16 { return h.provider }

func (h *TargetHandle) call(ctx context.Context, rpc string, args *ioArgs) (*ioReply, error) {
	out, err := h.client.inst.ForwardProvider(ctx, h.addr, rpc, h.provider, codec.Marshal(args))
	if err != nil {
		return nil, err
	}
	var reply ioReply
	if err := codec.Unmarshal(out, &reply); err != nil {
		return nil, err
	}
	if err := statusErr(reply.Status, reply.Err); err != nil {
		return nil, err
	}
	return &reply, nil
}

// Create allocates a region of the given size.
func (h *TargetHandle) Create(ctx context.Context, size int64) (RegionID, error) {
	reply, err := h.call(ctx, RPCCreate, &ioArgs{Size: size})
	if err != nil {
		return 0, err
	}
	return reply.Region, nil
}

// Write stores data at offset. Data larger than EagerThreshold is
// transferred with one bulk pull rather than inline in the RPC.
func (h *TargetHandle) Write(ctx context.Context, id RegionID, offset int64, data []byte) error {
	if len(data) <= EagerThreshold {
		_, err := h.call(ctx, RPCWrite, &ioArgs{Region: id, Offset: offset, Data: data})
		return err
	}
	bulk := h.client.inst.Class().CreateBulk(data, mercury.BulkReadOnly)
	defer bulk.Free()
	_, err := h.call(ctx, RPCWriteBulk, &ioArgs{
		Region:  id,
		Offset:  offset,
		Size:    int64(len(data)),
		Bulk:    bulk.Descriptor(),
		HasBulk: true,
	})
	return err
}

// Read returns size bytes at offset, using a bulk push for large
// transfers.
func (h *TargetHandle) Read(ctx context.Context, id RegionID, offset, size int64) ([]byte, error) {
	if size <= EagerThreshold {
		reply, err := h.call(ctx, RPCRead, &ioArgs{Region: id, Offset: offset, Size: size})
		if err != nil {
			return nil, err
		}
		return reply.Data, nil
	}
	buf := make([]byte, size)
	bulk := h.client.inst.Class().CreateBulk(buf, mercury.BulkReadWrite)
	defer bulk.Free()
	_, err := h.call(ctx, RPCReadBulk, &ioArgs{
		Region:  id,
		Offset:  offset,
		Size:    size,
		Bulk:    bulk.Descriptor(),
		HasBulk: true,
	})
	if err != nil {
		return nil, err
	}
	return buf, nil
}

// Size returns the region's length.
func (h *TargetHandle) Size(ctx context.Context, id RegionID) (int64, error) {
	reply, err := h.call(ctx, RPCSize, &ioArgs{Region: id})
	if err != nil {
		return 0, err
	}
	return reply.Size, nil
}

// Persist flushes the region to durable storage.
func (h *TargetHandle) Persist(ctx context.Context, id RegionID) error {
	_, err := h.call(ctx, RPCPersist, &ioArgs{Region: id})
	return err
}

// Erase removes the region.
func (h *TargetHandle) Erase(ctx context.Context, id RegionID) error {
	_, err := h.call(ctx, RPCErase, &ioArgs{Region: id})
	return err
}

// List returns all region IDs.
func (h *TargetHandle) List(ctx context.Context) ([]RegionID, error) {
	reply, err := h.call(ctx, RPCList, &ioArgs{})
	if err != nil {
		return nil, err
	}
	return reply.IDs, nil
}
