package warabi

import (
	"bytes"
	"context"
	"os"
	"testing"
	"testing/quick"
	"time"

	"mochi/internal/margo"
	"mochi/internal/mercury"
)

func openTargets(t *testing.T) map[string]Target {
	t.Helper()
	out := map[string]Target{}
	for _, typ := range []string{"memory", "file"} {
		cfg := Config{Type: typ}
		if typ == "file" {
			cfg.Dir = t.TempDir()
		}
		tg, err := Open(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { tg.Close() })
		out[typ] = tg
	}
	return out
}

func TestCreateWriteReadAllBackends(t *testing.T) {
	for typ, tg := range openTargets(t) {
		t.Run(typ, func(t *testing.T) {
			id, err := tg.Create(64)
			if err != nil {
				t.Fatal(err)
			}
			if err := tg.Write(id, 8, []byte("hello")); err != nil {
				t.Fatal(err)
			}
			data, err := tg.Read(id, 8, 5)
			if err != nil || string(data) != "hello" {
				t.Fatalf("read = %q, %v", data, err)
			}
			// Unwritten bytes are zero.
			data, _ = tg.Read(id, 0, 8)
			if !bytes.Equal(data, make([]byte, 8)) {
				t.Fatalf("zero-fill violated: %v", data)
			}
			if sz, _ := tg.Size(id); sz != 64 {
				t.Fatalf("size = %d", sz)
			}
			if err := tg.Persist(id); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBoundsChecked(t *testing.T) {
	for typ, tg := range openTargets(t) {
		t.Run(typ, func(t *testing.T) {
			id, _ := tg.Create(16)
			if err := tg.Write(id, 12, []byte("too long")); err != ErrOutOfBounds {
				t.Fatalf("write: %v", err)
			}
			if _, err := tg.Read(id, 10, 10); err != ErrOutOfBounds {
				t.Fatalf("read: %v", err)
			}
			if err := tg.Write(id, -1, []byte("x")); err != ErrOutOfBounds {
				t.Fatalf("negative offset: %v", err)
			}
		})
	}
}

func TestEraseAndList(t *testing.T) {
	for typ, tg := range openTargets(t) {
		t.Run(typ, func(t *testing.T) {
			a, _ := tg.Create(8)
			b, _ := tg.Create(8)
			ids, err := tg.List()
			if err != nil || len(ids) != 2 {
				t.Fatalf("list = %v, %v", ids, err)
			}
			if err := tg.Erase(a); err != nil {
				t.Fatal(err)
			}
			if _, err := tg.Read(a, 0, 1); err != ErrRegionNotFound {
				t.Fatalf("read erased: %v", err)
			}
			ids, _ = tg.List()
			if len(ids) != 1 || ids[0] != b {
				t.Fatalf("list after erase = %v", ids)
			}
			if err := tg.Erase(a); err != ErrRegionNotFound {
				t.Fatalf("double erase: %v", err)
			}
		})
	}
}

func TestFileTargetPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	tg, err := Open(Config{Type: "file", Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	id, _ := tg.Create(32)
	if err := tg.Write(id, 0, []byte("durable")); err != nil {
		t.Fatal(err)
	}
	tg.Close()

	tg2, err := Open(Config{Type: "file", Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer tg2.Close()
	data, err := tg2.Read(id, 0, 7)
	if err != nil || string(data) != "durable" {
		t.Fatalf("read = %q, %v", data, err)
	}
	// New regions must not collide with recovered IDs.
	id2, _ := tg2.Create(8)
	if id2 == id {
		t.Fatal("region id reused after reopen")
	}
}

func TestFileTargetFilesAndDestroy(t *testing.T) {
	dir := t.TempDir()
	tg, _ := Open(Config{Type: "file", Dir: dir})
	tg.Create(8)
	tg.Create(8)
	if files := tg.Files(); len(files) != 2 {
		t.Fatalf("files = %v", files)
	}
	if err := tg.Destroy(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatal("dir survived Destroy")
	}
}

func TestOpenBadConfig(t *testing.T) {
	if _, err := Open(Config{Type: "s3"}); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if _, err := Open(Config{Type: "file"}); err == nil {
		t.Fatal("file without dir accepted")
	}
	if _, err := OpenJSON([]byte("{bad")); err == nil {
		t.Fatal("bad json accepted")
	}
}

// Property: write-then-read returns the written bytes for arbitrary
// offsets/lengths within bounds.
func TestQuickWriteRead(t *testing.T) {
	tg := newMemTarget()
	id, _ := tg.Create(4096)
	f := func(off uint16, data []byte) bool {
		o := int64(off) % 2048
		if len(data) > 2048 {
			data = data[:2048]
		}
		if err := tg.Write(id, o, data); err != nil {
			return false
		}
		got, err := tg.Read(id, o, int64(len(data)))
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Remote tests.

type remoteEnv struct {
	server *margo.Instance
	client *margo.Instance
	prov   *Provider
	h      *TargetHandle
}

func newRemoteEnv(t *testing.T, cfg Config) *remoteEnv {
	t.Helper()
	f := mercury.NewFabric()
	scls, _ := f.NewClass("wb-srv")
	ccls, _ := f.NewClass("wb-cli")
	server, err := margo.New(scls, nil)
	if err != nil {
		t.Fatal(err)
	}
	client, err := margo.New(ccls, nil)
	if err != nil {
		t.Fatal(err)
	}
	prov, err := NewProvider(server, 3, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		prov.Close()
		server.Finalize()
		client.Finalize()
	})
	return &remoteEnv{
		server: server,
		client: client,
		prov:   prov,
		h:      NewClient(client).Handle(server.Addr(), 3),
	}
}

func rctx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestRemoteSmallIO(t *testing.T) {
	env := newRemoteEnv(t, Config{Type: "memory"})
	ctx := rctx(t)
	id, err := env.h.Create(ctx, 128)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.h.Write(ctx, id, 4, []byte("inline")); err != nil {
		t.Fatal(err)
	}
	data, err := env.h.Read(ctx, id, 4, 6)
	if err != nil || string(data) != "inline" {
		t.Fatalf("read = %q, %v", data, err)
	}
	if sz, _ := env.h.Size(ctx, id); sz != 128 {
		t.Fatalf("size = %d", sz)
	}
	ids, _ := env.h.List(ctx)
	if len(ids) != 1 {
		t.Fatalf("list = %v", ids)
	}
	if err := env.h.Persist(ctx, id); err != nil {
		t.Fatal(err)
	}
	if err := env.h.Erase(ctx, id); err != nil {
		t.Fatal(err)
	}
	if _, err := env.h.Read(ctx, id, 0, 1); err != ErrRegionNotFound {
		t.Fatalf("read erased: %v", err)
	}
}

func TestRemoteBulkIO(t *testing.T) {
	env := newRemoteEnv(t, Config{Type: "memory"})
	ctx := rctx(t)
	const size = 256 * 1024 // forces the bulk path
	id, err := env.h.Create(ctx, size)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i * 31)
	}
	if err := env.h.Write(ctx, id, 0, data); err != nil {
		t.Fatal(err)
	}
	got, err := env.h.Read(ctx, id, 0, size)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("bulk round trip corrupted data")
	}
}

func TestRemoteErrorsPropagate(t *testing.T) {
	env := newRemoteEnv(t, Config{Type: "memory"})
	ctx := rctx(t)
	if _, err := env.h.Read(ctx, 999, 0, 1); err != ErrRegionNotFound {
		t.Fatalf("err = %v", err)
	}
	id, _ := env.h.Create(ctx, 8)
	if err := env.h.Write(ctx, id, 6, []byte("long")); err != ErrOutOfBounds {
		t.Fatalf("err = %v", err)
	}
}

func TestRemoteFileBackend(t *testing.T) {
	env := newRemoteEnv(t, Config{Type: "file", Dir: t.TempDir()})
	ctx := rctx(t)
	id, err := env.h.Create(ctx, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.h.Write(ctx, id, 0, []byte("on disk")); err != nil {
		t.Fatal(err)
	}
	if len(env.prov.Files()) != 1 {
		t.Fatalf("files = %v", env.prov.Files())
	}
	data, err := env.h.Read(ctx, id, 0, 7)
	if err != nil || string(data) != "on disk" {
		t.Fatalf("read = %q, %v", data, err)
	}
}
