package warabi

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"

	"mochi/internal/argobots"
	"mochi/internal/codec"
	"mochi/internal/margo"
	"mochi/internal/mercury"
)

// RPC names served by warabi providers.
const (
	RPCCreate    = "warabi_create"
	RPCWrite     = "warabi_write"      // inline data (eager)
	RPCWriteBulk = "warabi_write_bulk" // provider pulls from client bulk
	RPCRead      = "warabi_read"       // inline data (eager)
	RPCReadBulk  = "warabi_read_bulk"  // provider pushes into client bulk
	RPCSize      = "warabi_size"
	RPCPersist   = "warabi_persist"
	RPCErase     = "warabi_erase"
	RPCList      = "warabi_list"
	RPCGetConfig = "warabi_get_config"
)

// EagerThreshold is the size above which clients switch from inline
// RPC payloads to bulk transfers, mirroring Mercury's eager limit.
const EagerThreshold = 4096

type ioArgs struct {
	Region  RegionID
	Offset  int64
	Size    int64
	Data    []byte
	Bulk    mercury.BulkDescriptor
	HasBulk bool
}

func (a *ioArgs) MarshalMochi(e *codec.Encoder) {
	e.Uint64(uint64(a.Region))
	e.Int64(a.Offset)
	e.Int64(a.Size)
	e.BytesField(a.Data)
	e.Bool(a.HasBulk)
	a.Bulk.MarshalMochi(e)
}

func (a *ioArgs) UnmarshalMochi(d *codec.Decoder) {
	a.Region = RegionID(d.Uint64())
	a.Offset = d.Int64()
	a.Size = d.Int64()
	a.Data = append([]byte(nil), d.BytesField()...)
	a.HasBulk = d.Bool()
	a.Bulk.UnmarshalMochi(d)
}

type ioReply struct {
	Status uint8
	Err    string
	Region RegionID
	Size   int64
	Data   []byte
	IDs    []RegionID
}

func (r *ioReply) MarshalMochi(e *codec.Encoder) {
	e.Uint8(r.Status)
	e.String(r.Err)
	e.Uint64(uint64(r.Region))
	e.Int64(r.Size)
	e.BytesField(r.Data)
	e.Uvarint(uint64(len(r.IDs)))
	for _, id := range r.IDs {
		e.Uint64(uint64(id))
	}
}

func (r *ioReply) UnmarshalMochi(d *codec.Decoder) {
	r.Status = d.Uint8()
	r.Err = d.String()
	r.Region = RegionID(d.Uint64())
	r.Size = d.Int64()
	r.Data = append([]byte(nil), d.BytesField()...)
	n := d.Uvarint()
	if n > uint64(d.Remaining())/8+1 {
		return
	}
	r.IDs = make([]RegionID, 0, n)
	for i := uint64(0); i < n; i++ {
		r.IDs = append(r.IDs, RegionID(d.Uint64()))
	}
}

func errStatus(err error) (uint8, string) {
	switch err {
	case nil:
		return 0, ""
	case ErrRegionNotFound:
		return 1, err.Error()
	case ErrOutOfBounds:
		return 3, err.Error()
	default:
		return 2, err.Error()
	}
}

func statusErr(status uint8, msg string) error {
	switch status {
	case 0:
		return nil
	case 1:
		return ErrRegionNotFound
	case 3:
		return ErrOutOfBounds
	default:
		return fmt.Errorf("warabi: remote error: %s", msg)
	}
}

// Provider serves a Target over RPC.
type Provider struct {
	inst *margo.Instance
	id   uint16
	pool *argobots.Pool

	mu     sync.RWMutex
	target Target
	cfg    Config
	closed bool
}

// NewProvider creates a provider serving a target built from cfg.
func NewProvider(inst *margo.Instance, id uint16, pool *argobots.Pool, cfg Config) (*Provider, error) {
	target, err := Open(cfg)
	if err != nil {
		return nil, err
	}
	p := &Provider{inst: inst, id: id, pool: pool, target: target, cfg: cfg}
	names := map[string]margo.Handler{
		RPCCreate:    p.handleCreate,
		RPCWrite:     p.handleWrite,
		RPCWriteBulk: p.handleWriteBulk,
		RPCRead:      p.handleRead,
		RPCReadBulk:  p.handleReadBulk,
		RPCSize:      p.handleSize,
		RPCPersist:   p.handlePersist,
		RPCErase:     p.handleErase,
		RPCList:      p.handleList,
		RPCGetConfig: p.handleGetConfig,
	}
	var registered []string
	for name, h := range names {
		if _, err := inst.RegisterProvider(name, id, pool, h); err != nil {
			for _, r := range registered {
				inst.DeregisterProvider(r, id)
			}
			target.Close()
			return nil, err
		}
		registered = append(registered, name)
	}
	return p, nil
}

// ID returns the provider ID.
func (p *Provider) ID() uint16 { return p.id }

// Target returns the underlying resource.
func (p *Provider) Target() Target {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.target
}

// Files exposes the backing files for migration.
func (p *Provider) Files() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return nil
	}
	return p.target.Files()
}

// Config returns the provider configuration as JSON.
func (p *Provider) Config() ([]byte, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return json.Marshal(p.cfg)
}

// Close deregisters and closes the target.
func (p *Provider) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	t := p.target
	p.mu.Unlock()
	for _, name := range []string{RPCCreate, RPCWrite, RPCWriteBulk, RPCRead, RPCReadBulk, RPCSize, RPCPersist, RPCErase, RPCList, RPCGetConfig} {
		p.inst.DeregisterProvider(name, p.id)
	}
	return t.Close()
}

func (p *Provider) tgt() (Target, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return nil, ErrClosed
	}
	return p.target, nil
}

func (p *Provider) respond(h *mercury.Handle, reply *ioReply, err error) {
	reply.Status, reply.Err = errStatus(err)
	_ = h.Respond(codec.Marshal(reply))
}

func (p *Provider) handleCreate(_ context.Context, h *mercury.Handle) {
	var args ioArgs
	if err := codec.Unmarshal(h.Input(), &args); err != nil {
		_ = h.RespondError(err)
		return
	}
	var reply ioReply
	t, err := p.tgt()
	if err == nil {
		reply.Region, err = t.Create(args.Size)
	}
	p.respond(h, &reply, err)
}

func (p *Provider) handleWrite(_ context.Context, h *mercury.Handle) {
	var args ioArgs
	if err := codec.Unmarshal(h.Input(), &args); err != nil {
		_ = h.RespondError(err)
		return
	}
	var reply ioReply
	t, err := p.tgt()
	if err == nil {
		err = t.Write(args.Region, args.Offset, args.Data)
	}
	p.respond(h, &reply, err)
}

// handleWriteBulk pulls the client's exposed buffer, then writes it.
// The handler context flows into the bulk transfer so the pull records
// a bulk phase span under the surrounding trace (when sampled).
func (p *Provider) handleWriteBulk(ctx context.Context, h *mercury.Handle) {
	var args ioArgs
	if err := codec.Unmarshal(h.Input(), &args); err != nil {
		_ = h.RespondError(err)
		return
	}
	var reply ioReply
	t, err := p.tgt()
	if err == nil {
		buf := make([]byte, args.Size)
		local := h.Class().CreateBulk(buf, mercury.BulkReadWrite)
		err = h.Class().BulkTransfer(ctx, mercury.BulkPull, args.Bulk, 0, local, 0, uint64(args.Size))
		local.Free()
		if err == nil {
			err = t.Write(args.Region, args.Offset, buf)
		}
	}
	p.respond(h, &reply, err)
}

func (p *Provider) handleRead(_ context.Context, h *mercury.Handle) {
	var args ioArgs
	if err := codec.Unmarshal(h.Input(), &args); err != nil {
		_ = h.RespondError(err)
		return
	}
	var reply ioReply
	t, err := p.tgt()
	if err == nil {
		reply.Data, err = t.Read(args.Region, args.Offset, args.Size)
	}
	p.respond(h, &reply, err)
}

// handleReadBulk reads the region and pushes it into the client's
// exposed buffer.
func (p *Provider) handleReadBulk(ctx context.Context, h *mercury.Handle) {
	var args ioArgs
	if err := codec.Unmarshal(h.Input(), &args); err != nil {
		_ = h.RespondError(err)
		return
	}
	var reply ioReply
	t, err := p.tgt()
	var data []byte
	if err == nil {
		data, err = t.Read(args.Region, args.Offset, args.Size)
	}
	if err == nil {
		local := h.Class().CreateBulk(data, mercury.BulkReadOnly)
		err = h.Class().BulkTransfer(ctx, mercury.BulkPush, args.Bulk, 0, local, 0, uint64(len(data)))
		local.Free()
	}
	p.respond(h, &reply, err)
}

func (p *Provider) handleSize(_ context.Context, h *mercury.Handle) {
	var args ioArgs
	if err := codec.Unmarshal(h.Input(), &args); err != nil {
		_ = h.RespondError(err)
		return
	}
	var reply ioReply
	t, err := p.tgt()
	if err == nil {
		reply.Size, err = t.Size(args.Region)
	}
	p.respond(h, &reply, err)
}

func (p *Provider) handlePersist(_ context.Context, h *mercury.Handle) {
	var args ioArgs
	if err := codec.Unmarshal(h.Input(), &args); err != nil {
		_ = h.RespondError(err)
		return
	}
	var reply ioReply
	t, err := p.tgt()
	if err == nil {
		err = t.Persist(args.Region)
	}
	p.respond(h, &reply, err)
}

func (p *Provider) handleErase(_ context.Context, h *mercury.Handle) {
	var args ioArgs
	if err := codec.Unmarshal(h.Input(), &args); err != nil {
		_ = h.RespondError(err)
		return
	}
	var reply ioReply
	t, err := p.tgt()
	if err == nil {
		err = t.Erase(args.Region)
	}
	p.respond(h, &reply, err)
}

func (p *Provider) handleList(_ context.Context, h *mercury.Handle) {
	var reply ioReply
	t, err := p.tgt()
	if err == nil {
		reply.IDs, err = t.List()
	}
	p.respond(h, &reply, err)
}

func (p *Provider) handleGetConfig(_ context.Context, h *mercury.Handle) {
	raw, err := p.Config()
	if err != nil {
		_ = h.RespondError(err)
		return
	}
	_ = h.Respond(raw)
}
