package yokan

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// TestShardedListsMatchUnsharded is the striping correctness contract:
// for every ordered backend and every (fromKey, prefix, max) window —
// including prefixes that span shard boundaries — the merged sharded
// scan must be byte-identical to an unsharded database holding the
// same pairs.
func TestShardedListsMatchUnsharded(t *testing.T) {
	for _, typ := range []string{"map", "skiplist", "btree"} {
		t.Run(typ, func(t *testing.T) {
			ref, err := Open(Config{Type: typ, Shards: 1})
			if err != nil {
				t.Fatal(err)
			}
			defer ref.Close()
			sh, err := Open(Config{Type: typ, Shards: 5})
			if err != nil {
				t.Fatal(err)
			}
			defer sh.Close()
			if _, ok := sh.(*shardedDB); !ok {
				t.Fatalf("Shards:5 opened %T, want *shardedDB", sh)
			}

			rng := rand.New(rand.NewSource(42))
			var keys [][]byte
			for i := 0; i < 120; i++ {
				k := []byte(fmt.Sprintf("%c/%03d", 'a'+i%4, rng.Intn(500)))
				v := make([]byte, 1+rng.Intn(32))
				rng.Read(v)
				if err := ref.Put(k, v); err != nil {
					t.Fatal(err)
				}
				if err := sh.Put(k, v); err != nil {
					t.Fatal(err)
				}
				keys = append(keys, k)
			}
			// Binary keys too, so the merge is tested beyond ASCII.
			for i := 0; i < 30; i++ {
				k := make([]byte, 1+rng.Intn(12))
				rng.Read(k)
				if len(k) == 0 {
					continue
				}
				if err := ref.Put(k, k); err != nil {
					t.Fatal(err)
				}
				if err := sh.Put(k, k); err != nil {
					t.Fatal(err)
				}
				keys = append(keys, k)
			}

			windows := []struct {
				from, prefix []byte
				max          int
			}{
				{nil, nil, 0},
				{nil, nil, 7},
				{nil, []byte("a/"), 0}, // prefix confined to sorted range, spans all shards
				{nil, []byte("b/"), 5},
				{[]byte("b/"), nil, 0}, // resume point between prefixes
				{[]byte("a/250"), []byte("a/"), 0},
				{keys[3], nil, 11}, // resume from an existing key
				{keys[10], keys[10][:1], 0},
				{[]byte{0x00}, nil, 13},
				{nil, keys[len(keys)-1][:1], 0},
			}
			for wi, w := range windows {
				wantK, err := ref.ListKeys(w.from, w.prefix, w.max)
				if err != nil {
					t.Fatal(err)
				}
				gotK, err := sh.ListKeys(w.from, w.prefix, w.max)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(gotK, wantK) {
					t.Fatalf("window %d (from=%q prefix=%q max=%d): ListKeys diverged\n got %q\nwant %q",
						wi, w.from, w.prefix, w.max, gotK, wantK)
				}
				wantKV, err := ref.ListKeyValues(w.from, w.prefix, w.max)
				if err != nil {
					t.Fatal(err)
				}
				gotKV, err := sh.ListKeyValues(w.from, w.prefix, w.max)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(gotKV, wantKV) {
					t.Fatalf("window %d: ListKeyValues diverged (%d vs %d pairs)",
						wi, len(gotKV), len(wantKV))
				}
			}

			rn, _ := ref.Count()
			sn, _ := sh.Count()
			if rn != sn {
				t.Fatalf("count: sharded %d, unsharded %d", sn, rn)
			}
		})
	}
}

// TestShardedBatchOps pins the BatchWriter/BatchReader semantics on the
// sharded backends: within-batch order per key (later duplicate wins),
// missing keys reported through found[], and results aligned with the
// request regardless of which shard served each key.
func TestShardedBatchOps(t *testing.T) {
	for _, typ := range []string{"map", "skiplist", "btree"} {
		t.Run(typ, func(t *testing.T) {
			db, err := Open(Config{Type: typ, Shards: 4})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			bw, ok := db.(BatchWriter)
			if !ok {
				t.Fatalf("%T does not implement BatchWriter", db)
			}
			br, ok := db.(BatchReader)
			if !ok {
				t.Fatalf("%T does not implement BatchReader", db)
			}

			pairs := make([]KeyValue, 0, 40)
			for i := 0; i < 20; i++ {
				pairs = append(pairs, KeyValue{
					Key:   []byte(fmt.Sprintf("bk%02d", i)),
					Value: []byte(fmt.Sprintf("old%02d", i)),
				})
			}
			// Duplicate every key with a newer value in the same batch:
			// per-shard submission order must make the later one win.
			for i := 0; i < 20; i++ {
				pairs = append(pairs, KeyValue{
					Key:   []byte(fmt.Sprintf("bk%02d", i)),
					Value: []byte(fmt.Sprintf("new%02d", i)),
				})
			}
			if err := bw.PutMulti(pairs); err != nil {
				t.Fatal(err)
			}

			keys := [][]byte{[]byte("bk00"), []byte("missing"), []byte("bk19"), []byte("bk07")}
			values, found, err := br.GetMulti(keys)
			if err != nil {
				t.Fatal(err)
			}
			wantFound := []bool{true, false, true, true}
			wantVals := [][]byte{[]byte("new00"), nil, []byte("new19"), []byte("new07")}
			for i := range keys {
				if found[i] != wantFound[i] || !bytes.Equal(values[i], wantVals[i]) {
					t.Fatalf("GetMulti[%d] (%q) = %q/%v, want %q/%v",
						i, keys[i], values[i], found[i], wantVals[i], wantFound[i])
				}
			}

			// Empty batches are no-ops, not errors.
			if err := bw.PutMulti(nil); err != nil {
				t.Fatal(err)
			}
			if _, _, err := br.GetMulti(nil); err != nil {
				t.Fatal(err)
			}

			// An invalid pair fails the batch without corrupting others.
			err = bw.PutMulti([]KeyValue{
				{Key: []byte("ok"), Value: []byte("v")},
				{Key: nil, Value: []byte("v")},
			})
			if err != ErrEmptyKey {
				t.Fatalf("PutMulti with empty key: %v", err)
			}
		})
	}
}

// TestShardConfigValidation pins the config surface: Shards<0 is
// rejected, Shards:0 picks the core-scaled default, and the log
// backend rejects malformed batch windows.
func TestShardConfigValidation(t *testing.T) {
	if _, err := Open(Config{Type: "map", Shards: -1}); err == nil {
		t.Fatal("Shards:-1 accepted")
	}
	db, err := Open(Config{Type: "map"})
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
	if _, err := Open(Config{Type: "log", Path: t.TempDir() + "/x.log", BatchWindow: "bogus"}); err == nil {
		t.Fatal("bogus batch_window accepted")
	}
	if _, err := Open(Config{Type: "log", Path: t.TempDir() + "/y.log", BatchWindow: "-1ms"}); err == nil {
		t.Fatal("negative batch_window accepted")
	}
}
