// Package yokan is the key-value-store component, the running example
// of the paper's component anatomy (Figure 1): a server library whose
// providers manage a resource (a database) behind an abstract
// interface with interchangeable backends, and a client library whose
// database handles map to remote resources via (address, provider ID).
//
// Backends:
//
//   - "map":      unordered in-memory hash map (fastest point ops)
//   - "skiplist": ordered in-memory skip list (range scans), the
//     moral equivalent of an LSM memtable
//   - "btree":    ordered in-memory B-tree (Berkeley-DB-style node
//     structure, cache-friendlier scans)
//   - "log":      persistent append-only log + in-memory skip-list
//     index, with compaction; its files make providers
//     migratable via REMI and checkpointable to a PFS
package yokan

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"
)

// Errors returned by databases and clients.
var (
	ErrKeyNotFound = errors.New("yokan: key not found")
	ErrClosed      = errors.New("yokan: database closed")
	ErrBadConfig   = errors.New("yokan: invalid configuration")
	ErrEmptyKey    = errors.New("yokan: empty key")
)

// KeyValue pairs a key with its value in bulk operations.
type KeyValue struct {
	Key   []byte
	Value []byte
}

// Database is the abstract resource interface of the component
// (Figure 1: "Follows an abstract interface ... implemented in
// various ways"). Implementations must be safe for concurrent use,
// and must not retain the key/value slices passed to any method
// beyond the call (copy what they store): the provider's decode path
// aliases RPC input buffers that are recycled after the handler
// responds.
type Database interface {
	// Put stores value under key, replacing any existing value.
	Put(key, value []byte) error
	// Get returns the value stored under key, or ErrKeyNotFound.
	Get(key []byte) ([]byte, error)
	// Erase removes key; removing a missing key is ErrKeyNotFound.
	Erase(key []byte) error
	// Exists reports whether key is present.
	Exists(key []byte) (bool, error)
	// Count returns the number of stored pairs.
	Count() (int, error)
	// ListKeys returns up to max keys strictly greater than fromKey
	// (nil means from the start) that carry the given prefix, in
	// ascending order. Unordered backends sort on demand.
	ListKeys(fromKey, prefix []byte, max int) ([][]byte, error)
	// ListKeyValues is ListKeys but also returns values.
	ListKeyValues(fromKey, prefix []byte, max int) ([]KeyValue, error)
	// Flush persists pending state for durable backends (no-op for
	// in-memory ones).
	Flush() error
	// Files returns the paths backing this database (empty for
	// in-memory backends); these are what REMI migrates.
	Files() []string
	// Close releases resources; the database becomes unusable.
	Close() error
	// Destroy closes and removes any backing files.
	Destroy() error
}

// Config selects and parameterizes a backend.
type Config struct {
	Type string `json:"type"`
	// Path is the backing file for the "log" backend.
	Path string `json:"path,omitempty"`
	// NoSync disables fsync on the log backend (tests/benchmarks).
	NoSync bool `json:"no_sync,omitempty"`
	// Shards is the lock-stripe count for the in-memory backends
	// ("map", "skiplist", "btree"): the key space is hash-partitioned
	// into this many independently locked instances so concurrent
	// clients scale with cores. 0 picks a default sized to
	// GOMAXPROCS; 1 disables striping. Ordered iteration is
	// merge-sorted across stripes and byte-identical to an unsharded
	// database. Ignored by the "log" backend.
	Shards int `json:"shards,omitempty"`
	// BatchWindow is how long a group-commit leader of the "log"
	// backend lingers for more writers to join its batch before the
	// shared fsync, as a Go duration string (e.g. "200us"). Empty or
	// "0" commits as soon as the leader reaches the log, which still
	// batches whatever arrived while the previous commit was syncing.
	BatchWindow string `json:"batch_window,omitempty"`
	// DirectCommit restores the serial one-fsync-per-op write path of
	// the "log" backend; kept as the measured baseline for the
	// group-commit throughput experiments.
	DirectCommit bool `json:"direct_commit,omitempty"`
}

// Open creates a database from a config.
func Open(cfg Config) (Database, error) {
	shards := cfg.Shards
	if shards == 0 {
		shards = defaultShards()
	}
	if shards < 1 {
		return nil, fmt.Errorf("%w: shards must be >= 1, got %d", ErrBadConfig, cfg.Shards)
	}
	stripe := func(open func() Database) Database {
		if shards == 1 {
			return open()
		}
		return newShardedDB(shards, open)
	}
	switch cfg.Type {
	case "", "map":
		return stripe(func() Database { return newMapDB() }), nil
	case "skiplist":
		return stripe(func() Database { return newSkipDB() }), nil
	case "btree":
		return stripe(func() Database { return newBTreeDB() }), nil
	case "log":
		if cfg.Path == "" {
			return nil, fmt.Errorf("%w: log backend needs a path", ErrBadConfig)
		}
		var window time.Duration
		if cfg.BatchWindow != "" {
			var err error
			window, err = time.ParseDuration(cfg.BatchWindow)
			if err != nil || window < 0 {
				return nil, fmt.Errorf("%w: bad batch_window %q", ErrBadConfig, cfg.BatchWindow)
			}
		}
		return openLogDB(cfg.Path, cfg.NoSync, window, cfg.DirectCommit)
	default:
		return nil, fmt.Errorf("%w: unknown backend %q", ErrBadConfig, cfg.Type)
	}
}

// OpenJSON creates a database from a JSON configuration string, as a
// Bedrock module would receive it.
func OpenJSON(raw []byte) (Database, error) {
	var cfg Config
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &cfg); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
	}
	return Open(cfg)
}
