package yokan

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mochi/internal/margo"
	"mochi/internal/mercury"
)

type testService struct {
	fabric   *mercury.Fabric
	server   *margo.Instance
	client   *margo.Instance
	provider *Provider
	handle   *DatabaseHandle
}

func newTestService(t testing.TB, cfg Config) *testService {
	t.Helper()
	f := mercury.NewFabric()
	scls, err := f.NewClass("yk-srv")
	if err != nil {
		t.Fatal(err)
	}
	ccls, err := f.NewClass("yk-cli")
	if err != nil {
		t.Fatal(err)
	}
	server, err := margo.New(scls, nil)
	if err != nil {
		t.Fatal(err)
	}
	client, err := margo.New(ccls, nil)
	if err != nil {
		t.Fatal(err)
	}
	prov, err := NewProvider(server, 7, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := NewClient(client).Handle(server.Addr(), 7)
	t.Cleanup(func() {
		prov.Close()
		server.Finalize()
		client.Finalize()
	})
	return &testService{fabric: f, server: server, client: client, provider: prov, handle: h}
}

func tctx(t testing.TB) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestRemotePutGetErase(t *testing.T) {
	s := newTestService(t, Config{Type: "skiplist"})
	ctx := tctx(t)
	if err := s.handle.Put(ctx, []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, err := s.handle.Get(ctx, []byte("k"))
	if err != nil || string(v) != "v" {
		t.Fatalf("get = %q, %v", v, err)
	}
	ok, err := s.handle.Exists(ctx, []byte("k"))
	if err != nil || !ok {
		t.Fatalf("exists = %v, %v", ok, err)
	}
	if n, _ := s.handle.Count(ctx); n != 1 {
		t.Fatalf("count = %d", n)
	}
	if err := s.handle.Erase(ctx, []byte("k")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.handle.Get(ctx, []byte("k")); !IsNotFound(err) {
		t.Fatalf("err = %v, want not-found", err)
	}
	if err := s.handle.Erase(ctx, []byte("k")); !IsNotFound(err) {
		t.Fatalf("double erase err = %v", err)
	}
}

func TestRemoteMultiOps(t *testing.T) {
	s := newTestService(t, Config{Type: "map"})
	ctx := tctx(t)
	var pairs []KeyValue
	for i := 0; i < 20; i++ {
		pairs = append(pairs, KeyValue{
			Key:   []byte(fmt.Sprintf("k%02d", i)),
			Value: []byte(fmt.Sprintf("v%d", i)),
		})
	}
	if err := s.handle.PutMulti(ctx, pairs); err != nil {
		t.Fatal(err)
	}
	keys := [][]byte{[]byte("k05"), []byte("missing"), []byte("k19")}
	values, found, err := s.handle.GetMulti(ctx, keys)
	if err != nil {
		t.Fatal(err)
	}
	if !found[0] || found[1] || !found[2] {
		t.Fatalf("found = %v", found)
	}
	if string(values[0]) != "v5" || string(values[2]) != "v19" {
		t.Fatalf("values = %q", values)
	}
}

func TestRemoteListOps(t *testing.T) {
	s := newTestService(t, Config{Type: "skiplist"})
	ctx := tctx(t)
	for _, k := range []string{"a1", "a2", "b1"} {
		if err := s.handle.Put(ctx, []byte(k), []byte("v-"+k)); err != nil {
			t.Fatal(err)
		}
	}
	keys, err := s.handle.ListKeys(ctx, nil, []byte("a"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || string(keys[0]) != "a1" {
		t.Fatalf("keys = %q", keys)
	}
	kvs, err := s.handle.ListKeyValues(ctx, []byte("a1"), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 1 || string(kvs[0].Key) != "a2" || string(kvs[0].Value) != "v-a2" {
		t.Fatalf("kvs = %v", kvs)
	}
}

func TestRemoteConfig(t *testing.T) {
	s := newTestService(t, Config{Type: "skiplist"})
	cfg, err := s.handle.RemoteConfig(tctx(t))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Type != "skiplist" {
		t.Fatalf("cfg = %+v", cfg)
	}
}

func TestProviderMultiplexingTwoDatabases(t *testing.T) {
	// Figure 1: multiple providers in one process, distinguished by ID.
	s := newTestService(t, Config{Type: "map"})
	prov2, err := NewProvider(s.server, 8, nil, Config{Type: "skiplist"})
	if err != nil {
		t.Fatal(err)
	}
	defer prov2.Close()
	h2 := NewClient(s.client).Handle(s.server.Addr(), 8)
	ctx := tctx(t)
	if err := s.handle.Put(ctx, []byte("k"), []byte("db7")); err != nil {
		t.Fatal(err)
	}
	if err := h2.Put(ctx, []byte("k"), []byte("db8")); err != nil {
		t.Fatal(err)
	}
	v7, _ := s.handle.Get(ctx, []byte("k"))
	v8, _ := h2.Get(ctx, []byte("k"))
	if string(v7) != "db7" || string(v8) != "db8" {
		t.Fatalf("isolation broken: %q %q", v7, v8)
	}
}

func TestDuplicateProviderIDRejected(t *testing.T) {
	s := newTestService(t, Config{Type: "map"})
	if _, err := NewProvider(s.server, 7, nil, Config{Type: "map"}); err == nil {
		t.Fatal("duplicate provider id accepted")
	}
}

func TestProviderCloseStopsService(t *testing.T) {
	s := newTestService(t, Config{Type: "map"})
	ctx := tctx(t)
	if err := s.handle.Put(ctx, []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.provider.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.handle.Put(ctx, []byte("k2"), []byte("v")); err == nil {
		t.Fatal("put succeeded after provider close")
	}
	// A new provider with the same ID can take over (restart).
	prov, err := NewProvider(s.server, 7, nil, Config{Type: "map"})
	if err != nil {
		t.Fatal(err)
	}
	defer prov.Close()
	if err := s.handle.Put(ctx, []byte("k3"), []byte("v")); err != nil {
		t.Fatalf("put after provider restart: %v", err)
	}
}

func TestCheckpointRestore(t *testing.T) {
	// §7 Observation 9: checkpoint to a shared dir, restore in a fresh
	// provider (as if restarted on another node).
	dir := t.TempDir()
	s := newTestService(t, Config{Type: "map"})
	ctx := tctx(t)
	for i := 0; i < 25; i++ {
		if err := s.handle.Put(ctx, []byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.provider.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "yokan-7.ckpt")); err != nil {
		t.Fatal(err)
	}

	// "Another node": a second margo instance on the same fabric.
	cls2, err := s.fabric.NewClass("yk-srv2")
	if err != nil {
		t.Fatal(err)
	}
	server2, err := margo.New(cls2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer server2.Finalize()
	prov2, err := NewProvider(server2, 7, nil, Config{Type: "map"})
	if err != nil {
		t.Fatal(err)
	}
	defer prov2.Close()
	if err := prov2.Restore(dir); err != nil {
		t.Fatal(err)
	}
	h2 := NewClient(s.client).Handle(server2.Addr(), 7)
	if n, _ := h2.Count(ctx); n != 25 {
		t.Fatalf("restored count = %d", n)
	}
	v, err := h2.Get(ctx, []byte("k13"))
	if err != nil || string(v) != "v13" {
		t.Fatalf("restored get = %q, %v", v, err)
	}
}

func TestCheckpointOverwriteIsAtomic(t *testing.T) {
	dir := t.TempDir()
	s := newTestService(t, Config{Type: "map"})
	ctx := tctx(t)
	if err := s.handle.Put(ctx, []byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := s.provider.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	if err := s.handle.Put(ctx, []byte("k"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := s.provider.Checkpoint(dir); err != nil {
		t.Fatal(err)
	}
	// No stale tmp files, and the checkpoint holds the latest value.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".tmp" {
			t.Fatalf("leftover tmp file %s", e.Name())
		}
	}
}

func TestProviderFilesExposedForMigration(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mig.log")
	s := newTestService(t, Config{Type: "log", Path: path, NoSync: true})
	if err := s.handle.Put(tctx(t), []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	files := s.provider.Files()
	if len(files) != 1 || files[0] != path {
		t.Fatalf("files = %v", files)
	}
	if err := s.provider.Flush(); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRemotePut(b *testing.B) {
	f := mercury.NewFabric()
	scls, _ := f.NewClass("bp-srv")
	ccls, _ := f.NewClass("bp-cli")
	server, _ := margo.New(scls, nil)
	defer server.Finalize()
	client, _ := margo.New(ccls, nil)
	defer client.Finalize()
	prov, err := NewProvider(server, 1, nil, Config{Type: "map"})
	if err != nil {
		b.Fatal(err)
	}
	defer prov.Close()
	h := NewClient(client).Handle(server.Addr(), 1)
	ctx := context.Background()
	key := []byte("benchmark-key")
	val := make([]byte, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.Put(ctx, key, val); err != nil {
			b.Fatal(err)
		}
	}
}
