package yokan

import (
	"context"
	"fmt"
	"testing"
)

// The multi-op pins are differential in batch size: a whole RPC has a
// fixed allocation cost (handle, args struct, reply slices, fabric
// payload buffers) that does not scale with the number of keys, so the
// per-key cost is (allocs(K=64) - allocs(K=8)) / 56. Server-side
// argument decodes alias the request buffer and the in-memory backends
// overwrite values in place, so a steady-state PutMulti adds no
// allocations per key; GetMulti pays exactly one per found key (the
// value copy handed out by the backend, which becomes the reply
// payload) plus the aliased client-side reply slots.

const (
	smallBatch = 8
	largeBatch = 64
)

func multiPairs(n, valLen int) []KeyValue {
	pairs := make([]KeyValue, n)
	for i := range pairs {
		pairs[i] = KeyValue{
			Key:   []byte(fmt.Sprintf("alloc-key-%04d", i)),
			Value: make([]byte, valLen),
		}
	}
	return pairs
}

func measureMultiAllocs(t *testing.T, svc *testService, batch int, get bool) float64 {
	t.Helper()
	ctx := tctx(t)
	pairs := multiPairs(batch, 32)
	keys := make([][]byte, len(pairs))
	for i, kv := range pairs {
		keys[i] = kv.Key
	}
	// Warm up: populate every key so puts hit the in-place overwrite
	// path and gets find every key, and let the codec/fabric pools fill.
	for i := 0; i < 20; i++ {
		if err := svc.handle.PutMulti(ctx, pairs); err != nil {
			t.Fatal(err)
		}
		if _, _, err := svc.handle.GetMulti(ctx, keys); err != nil {
			t.Fatal(err)
		}
	}
	return testing.AllocsPerRun(200, func() {
		if get {
			values, found, err := svc.handle.GetMulti(ctx, keys)
			if err != nil {
				t.Fatal(err)
			}
			if len(values) != batch || !found[0] {
				t.Fatalf("bad reply: %d values, found[0]=%v", len(values), found[0])
			}
		} else {
			if err := svc.handle.PutMulti(ctx, pairs); err != nil {
				t.Fatal(err)
			}
		}
	})
}

// perKeyAllocs returns the marginal allocations per additional key in a
// multi-op batch over the sm transport.
func perKeyAllocs(t *testing.T, get bool) float64 {
	t.Helper()
	svc := newTestService(t, Config{Type: "map", Shards: 4})
	small := measureMultiAllocs(t, svc, smallBatch, get)
	large := measureMultiAllocs(t, svc, largeBatch, get)
	per := (large - small) / float64(largeBatch-smallBatch)
	t.Logf("allocs/op: K=%d %.1f, K=%d %.1f → %.3f per key", smallBatch, small, largeBatch, large, per)
	return per
}

func TestPutMultiAllocsPinned(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc pinning is meaningless under the race detector")
	}
	// Steady-state overwrites alias the decode buffer and reuse stored
	// value buffers: no per-key allocations at all. The 0.5 headroom
	// absorbs AllocsPerRun jitter (GC timing, map growth).
	if per := perKeyAllocs(t, false); per > 0.5 {
		t.Fatalf("PutMulti allocates %.3f per key; pin is 0.5 (decode aliasing or in-place overwrite regressed)", per)
	}
}

func TestGetMultiAllocsPinned(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc pinning is meaningless under the race detector")
	}
	// One allocation per key is the value copy the backend hands out —
	// it is the reply payload, so it is the permitted floor. Anything
	// past ~1.5 means a second per-key copy crept in somewhere.
	if per := perKeyAllocs(t, true); per > 1.5 {
		t.Fatalf("GetMulti allocates %.3f per key; pin is 1.5 (one value copy per key is the budget)", per)
	}
}

func benchMulti(b *testing.B, cfg Config, batch int, get bool) {
	svc := newTestService(b, cfg)
	ctx := context.Background()
	pairs := multiPairs(batch, 32)
	keys := make([][]byte, len(pairs))
	for i, kv := range pairs {
		keys[i] = kv.Key
	}
	if err := svc.handle.PutMulti(ctx, pairs); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if get {
			if _, _, err := svc.handle.GetMulti(ctx, keys); err != nil {
				b.Fatal(err)
			}
		} else {
			if err := svc.handle.PutMulti(ctx, pairs); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkMultiPut(b *testing.B) {
	benchMulti(b, Config{Type: "map", Shards: 4}, 64, false)
}

func BenchmarkMultiGet(b *testing.B) {
	benchMulti(b, Config{Type: "map", Shards: 4}, 64, true)
}
