package yokan

import (
	"bytes"
	"sort"
	"sync"
)

// mapDB is the unordered in-memory backend.
type mapDB struct {
	mu     sync.RWMutex
	m      map[string][]byte
	closed bool
}

func newMapDB() *mapDB {
	return &mapDB{m: map[string][]byte{}}
}

func (d *mapDB) Put(key, value []byte) error {
	if len(key) == 0 {
		return ErrEmptyKey
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	// Same-length overwrite reuses the stored buffer in place: Get
	// hands out copies, so nothing outside the lock aliases it, and
	// the steady-state overwrite path allocates nothing.
	if old, ok := d.m[string(key)]; ok && len(old) == len(value) {
		copy(old, value)
		return nil
	}
	d.m[string(key)] = append([]byte(nil), value...)
	return nil
}

func (d *mapDB) Get(key []byte) ([]byte, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return nil, ErrClosed
	}
	v, ok := d.m[string(key)]
	if !ok {
		return nil, ErrKeyNotFound
	}
	return append([]byte(nil), v...), nil
}

func (d *mapDB) Erase(key []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if _, ok := d.m[string(key)]; !ok {
		return ErrKeyNotFound
	}
	delete(d.m, string(key))
	return nil
}

func (d *mapDB) Exists(key []byte) (bool, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return false, ErrClosed
	}
	_, ok := d.m[string(key)]
	return ok, nil
}

func (d *mapDB) Count() (int, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return 0, ErrClosed
	}
	return len(d.m), nil
}

func (d *mapDB) sortedKeys(fromKey, prefix []byte) []string {
	keys := make([]string, 0, len(d.m))
	for k := range d.m {
		if len(prefix) > 0 && !bytes.HasPrefix([]byte(k), prefix) {
			continue
		}
		if fromKey != nil && k <= string(fromKey) {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func (d *mapDB) ListKeys(fromKey, prefix []byte, max int) ([][]byte, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return nil, ErrClosed
	}
	var out [][]byte
	for _, k := range d.sortedKeys(fromKey, prefix) {
		if max > 0 && len(out) >= max {
			break
		}
		out = append(out, []byte(k))
	}
	return out, nil
}

func (d *mapDB) ListKeyValues(fromKey, prefix []byte, max int) ([]KeyValue, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return nil, ErrClosed
	}
	var out []KeyValue
	for _, k := range d.sortedKeys(fromKey, prefix) {
		if max > 0 && len(out) >= max {
			break
		}
		out = append(out, KeyValue{Key: []byte(k), Value: append([]byte(nil), d.m[k]...)})
	}
	return out, nil
}

func (d *mapDB) Flush() error { return nil }

func (d *mapDB) Files() []string { return nil }

func (d *mapDB) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	d.m = nil
	return nil
}

func (d *mapDB) Destroy() error { return d.Close() }
