//go:build race

package yokan

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
