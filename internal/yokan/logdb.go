package yokan

import (
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"mochi/internal/codec"
)

// logDB is the persistent backend: an append-only log of put/erase
// records indexed by an in-memory skip list. Opening replays the log;
// Compact rewrites it to only live records. This is the backend whose
// files REMI migrates and whose checkpoints land on the "parallel
// file system" (§7, Observation 9).
//
// Writes go through group commit: concurrent writers enqueue their
// records into a shared batch and the first of them (the leader)
// writes every record with one file write and one fsync, then applies
// the index updates in enqueue order and wakes the batch. While a
// leader is inside the commit, later writers form the next batch, so
// under load the fsync cost is amortised over the whole convoy; an
// optional batch_window makes the leader linger to widen batches
// further. Reads never queue behind a commit — they go straight to
// the internally locked index.
type logDB struct {
	path   string
	noSync bool
	window time.Duration
	// direct restores the pre-group-commit serial path (one write +
	// one fsync per op under a lock); kept as an A/B baseline for the
	// throughput benchmarks.
	direct bool

	index  *skipDB
	closed atomic.Bool

	// batchMu guards the forming batch only; it is never held across
	// I/O.
	batchMu sync.Mutex
	pending *logBatch

	// commitMu serializes commits, compaction, flush, and file
	// lifecycle.
	commitMu sync.Mutex
	file     *os.File
	// garbage counts dead records; Compact resets it.
	garbage int
	// frame is the commit staging buffer, reused across batches.
	frame []byte
}

const (
	logOpPut   = 0
	logOpErase = 1
)

type logRecord struct {
	op    uint8 // 0 put, 1 erase
	key   []byte
	value []byte
}

func (r *logRecord) MarshalMochi(e *codec.Encoder) {
	e.Uint8(r.op)
	e.BytesField(r.key)
	e.BytesField(r.value)
}

func (r *logRecord) UnmarshalMochi(d *codec.Decoder) {
	r.op = d.Uint8()
	r.key = append([]byte(nil), d.BytesField()...)
	r.value = append([]byte(nil), d.BytesField()...)
}

// logOp is one queued mutation. The key/value slices are borrowed
// from the caller, which stays blocked until the batch commits, so
// the leader may read them without copying; the index copies on
// apply.
type logOp struct {
	op    uint8
	key   []byte
	value []byte
	err   error
}

// logBatch is one group commit in formation. done closes after the
// leader has written, synced, applied, and filled every op's err.
type logBatch struct {
	ops  []*logOp
	done chan struct{}
}

func openLogDB(path string, noSync bool, window time.Duration, direct bool) (*logDB, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("yokan: open log: %w", err)
	}
	// Group commit amortizes fsync; with syncing disabled and no
	// window requested there is nothing to amortize, so the leader/
	// follower machinery would be pure coordination overhead — take
	// the serial path (identical semantics, same commitLocked).
	if noSync && window == 0 {
		direct = true
	}
	d := &logDB{path: path, file: f, index: newSkipDB(), noSync: noSync, window: window, direct: direct}
	if err := d.replay(); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return d, nil
}

// replay rebuilds the index from the log. A truncated final record
// (torn write at crash) is tolerated and the file truncated to the
// last complete record.
func (d *logDB) replay() error {
	if _, err := d.file.Seek(0, io.SeekStart); err != nil {
		return err
	}
	var lastGood int64
	for {
		var lenBuf [4]byte
		if _, err := io.ReadFull(d.file, lenBuf[:]); err != nil {
			if err == io.EOF {
				break
			}
			// torn length prefix
			break
		}
		n := int(uint32(lenBuf[0]) | uint32(lenBuf[1])<<8 | uint32(lenBuf[2])<<16 | uint32(lenBuf[3])<<24)
		body := make([]byte, n)
		if _, err := io.ReadFull(d.file, body); err != nil {
			break // torn record
		}
		var rec logRecord
		if err := codec.Unmarshal(body, &rec); err != nil {
			break // corrupt tail
		}
		switch rec.op {
		case logOpPut:
			if ok, _ := d.index.Exists(rec.key); ok {
				d.garbage++
			}
			if err := d.index.Put(rec.key, rec.value); err != nil {
				return err
			}
		case logOpErase:
			if err := d.index.Erase(rec.key); err != nil && err != ErrKeyNotFound {
				return err
			}
			d.garbage += 2
		}
		pos, err := d.file.Seek(0, io.SeekCurrent)
		if err != nil {
			return err
		}
		lastGood = pos
	}
	return d.file.Truncate(lastGood)
}

// appendFrame encodes one record into the staging buffer with its
// length prefix.
func appendFrame(buf []byte, op uint8, key, value []byte) []byte {
	e := codec.GetEncoder()
	rec := logRecord{op: op, key: key, value: value}
	rec.MarshalMochi(e)
	body := e.Bytes()
	n := len(body)
	buf = append(buf, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
	buf = append(buf, body...)
	codec.PutEncoder(e)
	return buf
}

// enqueue joins ops to the forming batch, reporting whether the
// caller became its leader.
func (d *logDB) enqueue(ops ...*logOp) (*logBatch, bool) {
	d.batchMu.Lock()
	b := d.pending
	leader := b == nil
	if leader {
		b = &logBatch{done: make(chan struct{})}
		d.pending = b
	}
	b.ops = append(b.ops, ops...)
	d.batchMu.Unlock()
	return b, leader
}

// lead runs one group commit: optionally linger to let more writers
// join, detach the batch, then write + sync + apply under commitMu.
func (d *logDB) lead(b *logBatch) {
	if d.window > 0 {
		// wall-clock: the linger window is a storage-throughput knob
		// (batching real fsync latency), not a protocol timeout — it
		// stays on real time even inside simulations.
		time.Sleep(d.window)
	}
	d.commitMu.Lock()
	d.batchMu.Lock()
	if d.pending == b {
		d.pending = nil
	}
	d.batchMu.Unlock()
	d.commitLocked(b)
	d.commitMu.Unlock()
	close(b.done)
}

// commitLocked decides each op's outcome, writes all surviving
// records with one write + one fsync, and applies them to the index
// in enqueue order. Caller holds commitMu.
func (d *logDB) commitLocked(b *logBatch) {
	if d.closed.Load() {
		for _, op := range b.ops {
			op.err = ErrClosed
		}
		return
	}
	// overlay tracks presence changes made by earlier ops in this
	// batch, so within-batch sequences (put then erase of the same
	// key) resolve exactly as they would serially.
	var overlay map[string]bool
	exists := func(key []byte) bool {
		if overlay != nil {
			if present, ok := overlay[string(key)]; ok {
				return present
			}
		}
		ok, _ := d.index.Exists(key)
		return ok
	}
	note := func(key []byte, present bool) {
		if overlay == nil {
			overlay = make(map[string]bool, len(b.ops))
		}
		overlay[string(key)] = present
	}
	buf := d.frame[:0]
	accepted := 0
	for _, op := range b.ops {
		switch op.op {
		case logOpPut:
			if exists(op.key) {
				d.garbage++ // overwritten record becomes dead
			}
			note(op.key, true)
			buf = appendFrame(buf, logOpPut, op.key, op.value)
			accepted++
		case logOpErase:
			if !exists(op.key) {
				op.err = ErrKeyNotFound
				continue
			}
			note(op.key, false)
			d.garbage += 2 // the put and the tombstone
			buf = appendFrame(buf, logOpErase, op.key, nil)
			accepted++
		}
	}
	d.frame = buf[:0]
	if accepted == 0 {
		return
	}
	var ioErr error
	if _, err := d.file.Write(buf); err != nil {
		ioErr = fmt.Errorf("yokan: log append: %w", err)
	} else if !d.noSync {
		ioErr = d.file.Sync()
	}
	if ioErr != nil {
		for _, op := range b.ops {
			if op.err == nil {
				op.err = ioErr
			}
		}
		return
	}
	for _, op := range b.ops {
		if op.err != nil {
			continue
		}
		switch op.op {
		case logOpPut:
			op.err = d.index.Put(op.key, op.value)
		case logOpErase:
			if err := d.index.Erase(op.key); err != nil && err != ErrKeyNotFound {
				op.err = err
			}
		}
	}
}

// run pushes ops through a group commit (or the serial baseline) and
// returns the first op's error.
func (d *logDB) run(ops ...*logOp) error {
	if d.direct {
		d.commitMu.Lock()
		b := logBatch{ops: ops}
		d.commitLocked(&b)
		d.commitMu.Unlock()
	} else {
		b, leader := d.enqueue(ops...)
		if leader {
			d.lead(b)
		} else {
			<-b.done
		}
	}
	for _, op := range ops {
		if op.err != nil {
			return op.err
		}
	}
	return nil
}

func (d *logDB) Put(key, value []byte) error {
	if len(key) == 0 {
		return ErrEmptyKey
	}
	if d.closed.Load() {
		return ErrClosed
	}
	op := logOp{op: logOpPut, key: key, value: value}
	return d.run(&op)
}

// PutMulti implements BatchWriter: the whole batch rides one group
// commit — one log write, one fsync — instead of len(pairs) of each.
func (d *logDB) PutMulti(pairs []KeyValue) error {
	if len(pairs) == 0 {
		return nil
	}
	if d.closed.Load() {
		return ErrClosed
	}
	ops := make([]logOp, len(pairs))
	ptrs := make([]*logOp, len(pairs))
	for i, kv := range pairs {
		if len(kv.Key) == 0 {
			return ErrEmptyKey
		}
		ops[i] = logOp{op: logOpPut, key: kv.Key, value: kv.Value}
		ptrs[i] = &ops[i]
	}
	return d.run(ptrs...)
}

func (d *logDB) Erase(key []byte) error {
	if len(key) == 0 {
		return ErrKeyNotFound
	}
	if d.closed.Load() {
		return ErrClosed
	}
	op := logOp{op: logOpErase, key: key}
	return d.run(&op)
}

func (d *logDB) Get(key []byte) ([]byte, error) {
	if d.closed.Load() {
		return nil, ErrClosed
	}
	return d.index.Get(key)
}

func (d *logDB) Exists(key []byte) (bool, error) {
	if d.closed.Load() {
		return false, ErrClosed
	}
	return d.index.Exists(key)
}

func (d *logDB) Count() (int, error) {
	if d.closed.Load() {
		return 0, ErrClosed
	}
	return d.index.Count()
}

func (d *logDB) ListKeys(fromKey, prefix []byte, max int) ([][]byte, error) {
	if d.closed.Load() {
		return nil, ErrClosed
	}
	return d.index.ListKeys(fromKey, prefix, max)
}

func (d *logDB) ListKeyValues(fromKey, prefix []byte, max int) ([]KeyValue, error) {
	if d.closed.Load() {
		return nil, ErrClosed
	}
	return d.index.ListKeyValues(fromKey, prefix, max)
}

func (d *logDB) Flush() error {
	if d.closed.Load() {
		return ErrClosed
	}
	d.commitMu.Lock()
	defer d.commitMu.Unlock()
	if d.closed.Load() {
		return ErrClosed
	}
	return d.file.Sync()
}

// Garbage reports the number of dead records in the log.
func (d *logDB) Garbage() int {
	d.commitMu.Lock()
	defer d.commitMu.Unlock()
	return d.garbage
}

// Compact rewrites the log keeping only live pairs.
func (d *logDB) Compact() error {
	d.commitMu.Lock()
	defer d.commitMu.Unlock()
	if d.closed.Load() {
		return ErrClosed
	}
	tmpPath := d.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	kvs, err := d.index.ListKeyValues(nil, nil, 0)
	if err != nil {
		tmp.Close()
		return err
	}
	for _, kv := range kvs {
		frame := appendFrame(nil, logOpPut, kv.Key, kv.Value)
		if _, err := tmp.Write(frame); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return err
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	tmp.Close()
	d.file.Close()
	if err := os.Rename(tmpPath, d.path); err != nil {
		return err
	}
	f, err := os.OpenFile(d.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	d.file = f
	d.garbage = 0
	return nil
}

func (d *logDB) Files() []string {
	return []string{d.path}
}

func (d *logDB) Close() error {
	d.commitMu.Lock()
	defer d.commitMu.Unlock()
	if d.closed.Swap(true) {
		return nil
	}
	return d.file.Close()
}

func (d *logDB) Destroy() error {
	if err := d.Close(); err != nil {
		return err
	}
	return os.Remove(d.path)
}
