package yokan

import (
	"fmt"
	"io"
	"os"
	"sync"

	"mochi/internal/codec"
)

// logDB is the persistent backend: an append-only log of put/erase
// records indexed by an in-memory skip list. Opening replays the log;
// Compact rewrites it to only live records. This is the backend whose
// files REMI migrates and whose checkpoints land on the "parallel
// file system" (§7, Observation 9).
type logDB struct {
	mu     sync.Mutex
	path   string
	file   *os.File
	index  *skipDB
	noSync bool
	// garbage counts dead records; Compact resets it.
	garbage int
	closed  bool
}

type logRecord struct {
	op    uint8 // 0 put, 1 erase
	key   []byte
	value []byte
}

func (r *logRecord) MarshalMochi(e *codec.Encoder) {
	e.Uint8(r.op)
	e.BytesField(r.key)
	e.BytesField(r.value)
}

func (r *logRecord) UnmarshalMochi(d *codec.Decoder) {
	r.op = d.Uint8()
	r.key = append([]byte(nil), d.BytesField()...)
	r.value = append([]byte(nil), d.BytesField()...)
}

func openLogDB(path string, noSync bool) (*logDB, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("yokan: open log: %w", err)
	}
	d := &logDB{path: path, file: f, index: newSkipDB(), noSync: noSync}
	if err := d.replay(); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return d, nil
}

// replay rebuilds the index from the log. A truncated final record
// (torn write at crash) is tolerated and the file truncated to the
// last complete record.
func (d *logDB) replay() error {
	if _, err := d.file.Seek(0, io.SeekStart); err != nil {
		return err
	}
	var lastGood int64
	for {
		var lenBuf [4]byte
		if _, err := io.ReadFull(d.file, lenBuf[:]); err != nil {
			if err == io.EOF {
				break
			}
			// torn length prefix
			break
		}
		n := int(uint32(lenBuf[0]) | uint32(lenBuf[1])<<8 | uint32(lenBuf[2])<<16 | uint32(lenBuf[3])<<24)
		body := make([]byte, n)
		if _, err := io.ReadFull(d.file, body); err != nil {
			break // torn record
		}
		var rec logRecord
		if err := codec.Unmarshal(body, &rec); err != nil {
			break // corrupt tail
		}
		switch rec.op {
		case 0:
			if err := d.index.Put(rec.key, rec.value); err != nil {
				return err
			}
		case 1:
			if err := d.index.Erase(rec.key); err != nil && err != ErrKeyNotFound {
				return err
			}
			d.garbage++
		}
		pos, err := d.file.Seek(0, io.SeekCurrent)
		if err != nil {
			return err
		}
		lastGood = pos
	}
	return d.file.Truncate(lastGood)
}

func (d *logDB) appendRecord(rec *logRecord) error {
	body := codec.Marshal(rec)
	n := len(body)
	frame := make([]byte, 4+n)
	frame[0] = byte(n)
	frame[1] = byte(n >> 8)
	frame[2] = byte(n >> 16)
	frame[3] = byte(n >> 24)
	copy(frame[4:], body)
	if _, err := d.file.Write(frame); err != nil {
		return fmt.Errorf("yokan: log append: %w", err)
	}
	if !d.noSync {
		return d.file.Sync()
	}
	return nil
}

func (d *logDB) Put(key, value []byte) error {
	if len(key) == 0 {
		return ErrEmptyKey
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if ok, _ := d.index.Exists(key); ok {
		d.garbage++ // overwritten record becomes dead
	}
	if err := d.appendRecord(&logRecord{op: 0, key: key, value: value}); err != nil {
		return err
	}
	return d.index.Put(key, value)
}

func (d *logDB) Get(key []byte) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, ErrClosed
	}
	return d.index.Get(key)
}

func (d *logDB) Erase(key []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if ok, _ := d.index.Exists(key); !ok {
		return ErrKeyNotFound
	}
	if err := d.appendRecord(&logRecord{op: 1, key: key}); err != nil {
		return err
	}
	d.garbage += 2 // the put and the tombstone
	return d.index.Erase(key)
}

func (d *logDB) Exists(key []byte) (bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return false, ErrClosed
	}
	return d.index.Exists(key)
}

func (d *logDB) Count() (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return 0, ErrClosed
	}
	return d.index.Count()
}

func (d *logDB) ListKeys(fromKey, prefix []byte, max int) ([][]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, ErrClosed
	}
	return d.index.ListKeys(fromKey, prefix, max)
}

func (d *logDB) ListKeyValues(fromKey, prefix []byte, max int) ([]KeyValue, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, ErrClosed
	}
	return d.index.ListKeyValues(fromKey, prefix, max)
}

func (d *logDB) Flush() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	return d.file.Sync()
}

// Garbage reports the number of dead records in the log.
func (d *logDB) Garbage() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.garbage
}

// Compact rewrites the log keeping only live pairs.
func (d *logDB) Compact() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	tmpPath := d.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	kvs, err := d.index.ListKeyValues(nil, nil, 0)
	if err != nil {
		tmp.Close()
		return err
	}
	for _, kv := range kvs {
		body := codec.Marshal(&logRecord{op: 0, key: kv.Key, value: kv.Value})
		n := len(body)
		frame := []byte{byte(n), byte(n >> 8), byte(n >> 16), byte(n >> 24)}
		if _, err := tmp.Write(append(frame, body...)); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return err
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	tmp.Close()
	d.file.Close()
	if err := os.Rename(tmpPath, d.path); err != nil {
		return err
	}
	f, err := os.OpenFile(d.path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	d.file = f
	d.garbage = 0
	return nil
}

func (d *logDB) Files() []string {
	return []string{d.path}
}

func (d *logDB) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	return d.file.Close()
}

func (d *logDB) Destroy() error {
	if err := d.Close(); err != nil {
		return err
	}
	return os.Remove(d.path)
}
