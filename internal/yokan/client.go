package yokan

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"mochi/internal/codec"
	"mochi/internal/margo"
)

// Client is the component's client library (Figure 1): it creates
// DatabaseHandles mapping to remote resources.
type Client struct {
	inst *margo.Instance
}

// NewClient creates a client over a margo instance.
func NewClient(inst *margo.Instance) *Client {
	return &Client{inst: inst}
}

// DatabaseHandle maps to a remote database by encapsulating the
// address and provider ID of the provider holding it (Figure 1:
// "Resource Handle ... maps to a remote resource").
type DatabaseHandle struct {
	client   *Client
	addr     string
	provider uint16
}

// Handle returns a handle to the database served by (addr, providerID).
func (c *Client) Handle(addr string, providerID uint16) *DatabaseHandle {
	return &DatabaseHandle{client: c, addr: addr, provider: providerID}
}

// Addr returns the provider's address.
func (h *DatabaseHandle) Addr() string { return h.addr }

// ProviderID returns the provider ID.
func (h *DatabaseHandle) ProviderID() uint16 { return h.provider }

func replyErr(status uint8, msg string) error {
	switch status {
	case 0:
		return nil
	case 1:
		return ErrKeyNotFound
	default:
		return fmt.Errorf("yokan: remote error: %s", msg)
	}
}

// forward marshals m into a pooled encoder and sends the RPC. Forward
// borrows the input only for the duration of the call and the reply is
// a fresh caller-owned buffer, so the encode buffer is reused across
// Put/Get calls instead of being allocated per operation.
func (h *DatabaseHandle) forward(ctx context.Context, rpc string, m codec.Marshaler) ([]byte, error) {
	if m == nil {
		return h.client.inst.ForwardProvider(ctx, h.addr, rpc, h.provider, nil)
	}
	e := codec.GetEncoder()
	m.MarshalMochi(e)
	out, err := h.client.inst.ForwardProvider(ctx, h.addr, rpc, h.provider, e.Bytes())
	codec.PutEncoder(e)
	return out, err
}

// Put stores one pair.
func (h *DatabaseHandle) Put(ctx context.Context, key, value []byte) error {
	return h.putRPC(ctx, RPCPut, []KeyValue{{Key: key, Value: value}})
}

// PutMulti stores several pairs in one RPC.
func (h *DatabaseHandle) PutMulti(ctx context.Context, pairs []KeyValue) error {
	return h.putRPC(ctx, RPCPutMulti, pairs)
}

func (h *DatabaseHandle) putRPC(ctx context.Context, rpc string, pairs []KeyValue) error {
	out, err := h.forward(ctx, rpc, &putArgs{Pairs: pairs})
	if err != nil {
		return err
	}
	var reply statusReply
	if err := codec.Unmarshal(out, &reply); err != nil {
		return err
	}
	return replyErr(reply.Status, reply.Err)
}

// Get fetches the value for one key.
func (h *DatabaseHandle) Get(ctx context.Context, key []byte) ([]byte, error) {
	out, err := h.forward(ctx, RPCGet, &keysArgs{Keys: [][]byte{key}})
	if err != nil {
		return nil, err
	}
	var reply valueReply
	if err := codec.Unmarshal(out, &reply); err != nil {
		return nil, err
	}
	if err := replyErr(reply.Status, reply.Err); err != nil {
		return nil, err
	}
	return reply.Value, nil
}

// GetMulti fetches several keys; missing keys yield nil values and
// found[i]=false.
func (h *DatabaseHandle) GetMulti(ctx context.Context, keys [][]byte) (values [][]byte, found []bool, err error) {
	out, err := h.forward(ctx, RPCGetMulti, &keysArgs{Keys: keys})
	if err != nil {
		return nil, nil, err
	}
	var reply valuesReply
	if err := codec.Unmarshal(out, &reply); err != nil {
		return nil, nil, err
	}
	if err := replyErr(reply.Status, reply.Err); err != nil {
		return nil, nil, err
	}
	return reply.Values, reply.Found, nil
}

// Erase removes one key.
func (h *DatabaseHandle) Erase(ctx context.Context, key []byte) error {
	out, err := h.forward(ctx, RPCErase, &keysArgs{Keys: [][]byte{key}})
	if err != nil {
		return err
	}
	var reply statusReply
	if err := codec.Unmarshal(out, &reply); err != nil {
		return err
	}
	return replyErr(reply.Status, reply.Err)
}

// Exists reports whether key is present.
func (h *DatabaseHandle) Exists(ctx context.Context, key []byte) (bool, error) {
	out, err := h.forward(ctx, RPCExists, &keysArgs{Keys: [][]byte{key}})
	if err != nil {
		return false, err
	}
	var reply boolReply
	if err := codec.Unmarshal(out, &reply); err != nil {
		return false, err
	}
	if err := replyErr(reply.Status, reply.Err); err != nil {
		return false, err
	}
	return reply.Value, nil
}

// Count returns the number of pairs.
func (h *DatabaseHandle) Count(ctx context.Context) (int, error) {
	out, err := h.forward(ctx, RPCCount, nil)
	if err != nil {
		return 0, err
	}
	var reply countReply
	if err := codec.Unmarshal(out, &reply); err != nil {
		return 0, err
	}
	if err := replyErr(reply.Status, reply.Err); err != nil {
		return 0, err
	}
	return int(reply.Count), nil
}

// ListKeys lists up to max keys greater than fromKey with the prefix.
func (h *DatabaseHandle) ListKeys(ctx context.Context, fromKey, prefix []byte, max int) ([][]byte, error) {
	args := &listArgs{Prefix: prefix, Max: uint32(max)}
	if fromKey != nil {
		args.HasFrom = true
		args.FromKey = fromKey
	}
	out, err := h.forward(ctx, RPCListKeys, args)
	if err != nil {
		return nil, err
	}
	var reply kvListReply
	if err := codec.Unmarshal(out, &reply); err != nil {
		return nil, err
	}
	if err := replyErr(reply.Status, reply.Err); err != nil {
		return nil, err
	}
	keys := make([][]byte, len(reply.Pairs))
	for i, kv := range reply.Pairs {
		keys[i] = kv.Key
	}
	return keys, nil
}

// ListKeyValues lists up to max pairs greater than fromKey with the
// prefix.
func (h *DatabaseHandle) ListKeyValues(ctx context.Context, fromKey, prefix []byte, max int) ([]KeyValue, error) {
	args := &listArgs{Prefix: prefix, Max: uint32(max)}
	if fromKey != nil {
		args.HasFrom = true
		args.FromKey = fromKey
	}
	out, err := h.forward(ctx, RPCListKeyValues, args)
	if err != nil {
		return nil, err
	}
	var reply kvListReply
	if err := codec.Unmarshal(out, &reply); err != nil {
		return nil, err
	}
	if err := replyErr(reply.Status, reply.Err); err != nil {
		return nil, err
	}
	return reply.Pairs, nil
}

// RemoteConfig fetches the provider's database configuration.
func (h *DatabaseHandle) RemoteConfig(ctx context.Context) (Config, error) {
	out, err := h.forward(ctx, RPCGetConfig, nil)
	if err != nil {
		return Config{}, err
	}
	var cfg Config
	if err := jsonUnmarshal(out, &cfg); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// IsNotFound reports whether err is the key-not-found condition,
// across RPC boundaries.
func IsNotFound(err error) bool {
	return errors.Is(err, ErrKeyNotFound)
}

func jsonUnmarshal(data []byte, v any) error { return json.Unmarshal(data, v) }
