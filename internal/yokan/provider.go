package yokan

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"mochi/internal/argobots"
	"mochi/internal/codec"
	"mochi/internal/margo"
	"mochi/internal/mercury"
)

// Provider manages one Database and serves it over RPC (Figure 1's
// server-library side: "Registers RPCs and their callbacks, forwards
// them to the Resource").
//
// The resource pointer is published through an atomic: the per-RPC
// fast path is one pointer load, with no lock — not even a read lock
// — bracketing handler execution, so a slow operation on one shard
// never convoys requests headed elsewhere. swapMu exists only for the
// rare lifecycle transitions (Close/Destroy/SwapDatabase) that
// replace the pointer.
type Provider struct {
	inst *margo.Instance
	id   uint16
	pool *argobots.Pool

	state atomic.Pointer[providerState]
	// swapMu serializes Close/Destroy/SwapDatabase against each
	// other; it is never taken on the RPC path.
	swapMu sync.Mutex
}

// providerState pairs the database with the config that built it, so
// both swap atomically during reconfiguration.
type providerState struct {
	db  Database
	cfg Config
}

// fanoutPool picks the pool multi-op handlers fan out on: the
// provider's explicit pool, else the instance's RPC dispatch pool.
func (p *Provider) fanoutPool() *argobots.Pool {
	if p.pool != nil {
		return p.pool
	}
	return p.inst.RPCPool()
}

// adopt publishes a database, wiring the fan-out pool into backends
// that can exploit intra-request parallelism.
func (p *Provider) adopt(db Database, cfg Config) {
	if pa, ok := db.(PoolAware); ok {
		pa.SetPool(p.fanoutPool())
	}
	p.state.Store(&providerState{db: db, cfg: cfg})
}

// NewProvider creates a provider with the given ID serving a database
// built from cfg, handling RPCs on pool (nil = default pool).
func NewProvider(inst *margo.Instance, id uint16, pool *argobots.Pool, cfg Config) (*Provider, error) {
	db, err := Open(cfg)
	if err != nil {
		return nil, err
	}
	p := &Provider{inst: inst, id: id, pool: pool}
	p.adopt(db, cfg)
	if err := p.register(); err != nil {
		db.Close()
		return nil, err
	}
	return p, nil
}

// NewProviderWithDatabase creates a provider serving a caller-supplied
// Database implementation. This is how virtual resources (paper §7,
// Observation 10) are built: the injected database can forward
// operations to replicas on other nodes while clients see an ordinary
// yokan provider.
func NewProviderWithDatabase(inst *margo.Instance, id uint16, pool *argobots.Pool, db Database, cfg Config) (*Provider, error) {
	p := &Provider{inst: inst, id: id, pool: pool}
	p.adopt(db, cfg)
	if err := p.register(); err != nil {
		return nil, err
	}
	return p, nil
}

// NewProviderJSON is NewProvider taking the database config as JSON,
// the form Bedrock uses.
func NewProviderJSON(inst *margo.Instance, id uint16, pool *argobots.Pool, raw []byte) (*Provider, error) {
	var cfg Config
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &cfg); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
	}
	return NewProvider(inst, id, pool, cfg)
}

// ID returns the provider ID.
func (p *Provider) ID() uint16 { return p.id }

// Database returns the underlying resource (for local composition),
// or nil after Close.
func (p *Provider) Database() Database {
	st := p.state.Load()
	if st == nil {
		return nil
	}
	return st.db
}

// Config returns the provider's configuration as JSON.
func (p *Provider) Config() ([]byte, error) {
	st := p.state.Load()
	if st == nil {
		return nil, ErrClosed
	}
	return json.Marshal(st.cfg)
}

// SwapDatabase atomically replaces the served database (the
// reconfiguration/migration path): in-flight handlers finish against
// the database they loaded, new requests see the replacement
// immediately. The previous database is returned for the caller to
// drain, checkpoint, or close.
func (p *Provider) SwapDatabase(db Database, cfg Config) (Database, error) {
	p.swapMu.Lock()
	defer p.swapMu.Unlock()
	st := p.state.Load()
	if st == nil {
		return nil, ErrClosed
	}
	p.adopt(db, cfg)
	return st.db, nil
}

func (p *Provider) register() error {
	type h struct {
		name string
		fn   margo.Handler
	}
	handlers := []h{
		{RPCPut, p.handlePut},
		{RPCPutMulti, p.handlePut},
		{RPCGet, p.handleGet},
		{RPCGetMulti, p.handleGetMulti},
		{RPCErase, p.handleErase},
		{RPCExists, p.handleExists},
		{RPCCount, p.handleCount},
		{RPCListKeys, p.handleListKeys},
		{RPCListKeyValues, p.handleListKeyValues},
		{RPCGetConfig, p.handleGetConfig},
	}
	for i, hh := range handlers {
		if _, err := p.inst.RegisterProvider(hh.name, p.id, p.pool, hh.fn); err != nil {
			// Roll back earlier registrations.
			for j := 0; j < i; j++ {
				p.inst.DeregisterProvider(handlers[j].name, p.id)
			}
			return err
		}
	}
	return nil
}

func (p *Provider) deregister() {
	for _, name := range []string{
		RPCPut, RPCPutMulti, RPCGet, RPCGetMulti, RPCErase, RPCExists,
		RPCCount, RPCListKeys, RPCListKeyValues, RPCGetConfig,
	} {
		p.inst.DeregisterProvider(name, p.id)
	}
}

// Close deregisters the provider and closes its database.
func (p *Provider) Close() error {
	p.swapMu.Lock()
	st := p.state.Swap(nil)
	p.swapMu.Unlock()
	if st == nil {
		return nil
	}
	p.deregister()
	return st.db.Close()
}

// Destroy closes the provider and removes the database's files.
func (p *Provider) Destroy() error {
	p.swapMu.Lock()
	st := p.state.Swap(nil)
	p.swapMu.Unlock()
	if st == nil {
		return nil
	}
	p.deregister()
	return st.db.Destroy()
}

func statusFromErr(err error) (uint8, string) {
	switch err {
	case nil:
		return 0, ""
	case ErrKeyNotFound:
		return 1, err.Error()
	default:
		return 2, err.Error()
	}
}

// respondReply marshals reply through a pooled encoder and sends it.
// Respond borrows the encoded bytes only for the duration of the call,
// so the buffer goes straight back to the pool: the steady-state
// response path does not allocate a marshal buffer per RPC.
func respondReply(h *mercury.Handle, reply codec.Marshaler) {
	e := codec.GetEncoder()
	reply.MarshalMochi(e)
	_ = h.Respond(e.Bytes())
	codec.PutEncoder(e)
}

// database resolves the served resource with a single atomic load —
// the whole cost the provider layer adds to the storage hot path.
func (p *Provider) database() (Database, error) {
	st := p.state.Load()
	if st == nil {
		return nil, ErrClosed
	}
	return st.db, nil
}

func (p *Provider) handlePut(_ context.Context, h *mercury.Handle) {
	var args putArgs
	if err := codec.Unmarshal(h.Input(), &args); err != nil {
		_ = h.RespondError(err)
		return
	}
	db, err := p.database()
	if err == nil {
		if bw, ok := db.(BatchWriter); ok && len(args.Pairs) > 1 {
			// Sharded and log backends absorb the batch in one shot:
			// parallel per-stripe fan-out or a single group commit.
			err = bw.PutMulti(args.Pairs)
		} else {
			for _, kv := range args.Pairs {
				if err = db.Put(kv.Key, kv.Value); err != nil {
					break
				}
			}
		}
	}
	st, msg := statusFromErr(err)
	respondReply(h, &statusReply{Status: st, Err: msg})
}

func (p *Provider) handleGet(_ context.Context, h *mercury.Handle) {
	var args keysArgs
	if err := codec.Unmarshal(h.Input(), &args); err != nil {
		_ = h.RespondError(err)
		return
	}
	var reply valueReply
	db, err := p.database()
	if err == nil {
		if len(args.Keys) != 1 {
			err = fmt.Errorf("yokan: get expects one key, got %d", len(args.Keys))
		} else {
			reply.Value, err = db.Get(args.Keys[0])
		}
	}
	reply.Status, reply.Err = statusFromErr(err)
	respondReply(h, &reply)
}

func (p *Provider) handleGetMulti(_ context.Context, h *mercury.Handle) {
	var args keysArgs
	if err := codec.Unmarshal(h.Input(), &args); err != nil {
		_ = h.RespondError(err)
		return
	}
	var reply valuesReply
	db, err := p.database()
	if err == nil {
		if br, ok := db.(BatchReader); ok && len(args.Keys) > 1 {
			reply.Values, reply.Found, err = br.GetMulti(args.Keys)
		} else {
			for _, k := range args.Keys {
				v, gerr := db.Get(k)
				switch gerr {
				case nil:
					reply.Found = append(reply.Found, true)
					reply.Values = append(reply.Values, v)
				case ErrKeyNotFound:
					reply.Found = append(reply.Found, false)
					reply.Values = append(reply.Values, nil)
				default:
					err = gerr
				}
				if err != nil {
					break
				}
			}
		}
	}
	reply.Status, reply.Err = statusFromErr(err)
	respondReply(h, &reply)
}

func (p *Provider) handleErase(_ context.Context, h *mercury.Handle) {
	var args keysArgs
	if err := codec.Unmarshal(h.Input(), &args); err != nil {
		_ = h.RespondError(err)
		return
	}
	db, err := p.database()
	if err == nil {
		for _, k := range args.Keys {
			if err = db.Erase(k); err != nil {
				break
			}
		}
	}
	st, msg := statusFromErr(err)
	respondReply(h, &statusReply{Status: st, Err: msg})
}

func (p *Provider) handleExists(_ context.Context, h *mercury.Handle) {
	var args keysArgs
	if err := codec.Unmarshal(h.Input(), &args); err != nil {
		_ = h.RespondError(err)
		return
	}
	var reply boolReply
	db, err := p.database()
	if err == nil {
		if len(args.Keys) != 1 {
			err = fmt.Errorf("yokan: exists expects one key")
		} else {
			reply.Value, err = db.Exists(args.Keys[0])
		}
	}
	reply.Status, reply.Err = statusFromErr(err)
	respondReply(h, &reply)
}

func (p *Provider) handleCount(_ context.Context, h *mercury.Handle) {
	var reply countReply
	db, err := p.database()
	if err == nil {
		var n int
		n, err = db.Count()
		reply.Count = uint64(n)
	}
	reply.Status, reply.Err = statusFromErr(err)
	respondReply(h, &reply)
}

func (p *Provider) handleListKeys(_ context.Context, h *mercury.Handle) {
	var args listArgs
	if err := codec.Unmarshal(h.Input(), &args); err != nil {
		_ = h.RespondError(err)
		return
	}
	var reply kvListReply
	db, err := p.database()
	if err == nil {
		var from []byte
		if args.HasFrom {
			from = args.FromKey
		}
		var keys [][]byte
		keys, err = db.ListKeys(from, args.Prefix, int(args.Max))
		for _, k := range keys {
			reply.Pairs = append(reply.Pairs, KeyValue{Key: k})
		}
	}
	reply.Status, reply.Err = statusFromErr(err)
	respondReply(h, &reply)
}

func (p *Provider) handleListKeyValues(_ context.Context, h *mercury.Handle) {
	var args listArgs
	if err := codec.Unmarshal(h.Input(), &args); err != nil {
		_ = h.RespondError(err)
		return
	}
	var reply kvListReply
	db, err := p.database()
	if err == nil {
		var from []byte
		if args.HasFrom {
			from = args.FromKey
		}
		reply.Pairs, err = db.ListKeyValues(from, args.Prefix, int(args.Max))
	}
	reply.Status, reply.Err = statusFromErr(err)
	respondReply(h, &reply)
}

func (p *Provider) handleGetConfig(_ context.Context, h *mercury.Handle) {
	raw, err := p.Config()
	if err != nil {
		_ = h.RespondError(err)
		return
	}
	_ = h.Respond(raw)
}

// Checkpoint writes a consistent snapshot of the database into dir
// (one file named after the provider ID), the §7 Observation 9
// "leveraging parallel file systems" path. It is exposed through the
// provider's Bedrock module.
func (p *Provider) Checkpoint(dir string) error {
	db, err := p.database()
	if err != nil {
		return err
	}
	kvs, err := db.ListKeyValues(nil, nil, 0)
	if err != nil {
		return err
	}
	enc := codec.NewEncoder(nil)
	enc.Uvarint(uint64(len(kvs)))
	for _, kv := range kvs {
		enc.BytesField(kv.Key)
		enc.BytesField(kv.Value)
	}
	path := filepath.Join(dir, fmt.Sprintf("yokan-%d.ckpt", p.id))
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, enc.Bytes(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Restore replaces the database contents with the checkpoint found in
// dir for this provider ID.
func (p *Provider) Restore(dir string) error {
	path := filepath.Join(dir, fmt.Sprintf("yokan-%d.ckpt", p.id))
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	db, err := p.database()
	if err != nil {
		return err
	}
	d := codec.NewDecoder(raw)
	n := d.Uvarint()
	for i := uint64(0); i < n; i++ {
		k := append([]byte(nil), d.BytesField()...)
		v := append([]byte(nil), d.BytesField()...)
		if d.Err() != nil {
			return d.Err()
		}
		if err := db.Put(k, v); err != nil {
			return err
		}
	}
	return d.Finish()
}

// Files returns the database's backing files, for REMI migration.
func (p *Provider) Files() []string {
	db, err := p.database()
	if err != nil {
		return nil
	}
	return db.Files()
}

// Flush persists pending writes.
func (p *Provider) Flush() error {
	db, err := p.database()
	if err != nil {
		return err
	}
	return db.Flush()
}
