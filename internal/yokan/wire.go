package yokan

import "mochi/internal/codec"

// RPC names used by the component. Exported so tools can monitor them.
const (
	RPCPut           = "yokan_put"
	RPCPutMulti      = "yokan_put_multi"
	RPCGet           = "yokan_get"
	RPCGetMulti      = "yokan_get_multi"
	RPCErase         = "yokan_erase"
	RPCExists        = "yokan_exists"
	RPCCount         = "yokan_count"
	RPCListKeys      = "yokan_list_keys"
	RPCListKeyValues = "yokan_list_keyvals"
	RPCGetConfig     = "yokan_get_config"
)

// Wire message types. Status codes: 0 OK, 1 key-not-found, 2 other
// error (message in Err).
//
// Decode ownership (DESIGN.md "Hot-path memory discipline"): both
// directions alias the underlying buffer instead of copying. Reply
// types are decoded client-side from the Forward result, which the
// caller owns and never recycles. Argument types are decoded
// server-side from a request buffer that mercury recycles only after
// the handler responds; the Database contract forbids implementations
// from retaining key/value slices beyond the call, and every handler
// finishes its database calls before responding, so aliasing is safe
// and the decode path allocates nothing per byte slice.

type putArgs struct {
	Pairs []KeyValue
}

func (a *putArgs) MarshalMochi(e *codec.Encoder) {
	e.Uvarint(uint64(len(a.Pairs)))
	for _, kv := range a.Pairs {
		e.BytesField(kv.Key)
		e.BytesField(kv.Value)
	}
}

func (a *putArgs) UnmarshalMochi(d *codec.Decoder) {
	n := d.Uvarint()
	if n > uint64(d.Remaining()) {
		return
	}
	a.Pairs = make([]KeyValue, 0, n)
	for i := uint64(0); i < n; i++ {
		k := d.BytesField()
		v := d.BytesField()
		if d.Err() != nil {
			return
		}
		a.Pairs = append(a.Pairs, KeyValue{Key: k, Value: v})
	}
}

type keysArgs struct {
	Keys [][]byte
}

func (a *keysArgs) MarshalMochi(e *codec.Encoder) {
	e.Uvarint(uint64(len(a.Keys)))
	for _, k := range a.Keys {
		e.BytesField(k)
	}
}

func (a *keysArgs) UnmarshalMochi(d *codec.Decoder) {
	n := d.Uvarint()
	if n > uint64(d.Remaining()) {
		return
	}
	a.Keys = make([][]byte, 0, n)
	for i := uint64(0); i < n; i++ {
		a.Keys = append(a.Keys, d.BytesField())
		if d.Err() != nil {
			return
		}
	}
}

type listArgs struct {
	FromKey []byte
	HasFrom bool
	Prefix  []byte
	Max     uint32
}

func (a *listArgs) MarshalMochi(e *codec.Encoder) {
	e.Bool(a.HasFrom)
	e.BytesField(a.FromKey)
	e.BytesField(a.Prefix)
	e.Uint32(a.Max)
}

func (a *listArgs) UnmarshalMochi(d *codec.Decoder) {
	a.HasFrom = d.Bool()
	a.FromKey = d.BytesField()
	a.Prefix = d.BytesField()
	a.Max = d.Uint32()
}

type statusReply struct {
	Status uint8
	Err    string
}

func (r *statusReply) MarshalMochi(e *codec.Encoder) {
	e.Uint8(r.Status)
	e.String(r.Err)
}

func (r *statusReply) UnmarshalMochi(d *codec.Decoder) {
	r.Status = d.Uint8()
	r.Err = d.String()
}

type valueReply struct {
	Status uint8
	Err    string
	Value  []byte
}

func (r *valueReply) MarshalMochi(e *codec.Encoder) {
	e.Uint8(r.Status)
	e.String(r.Err)
	e.BytesField(r.Value)
}

func (r *valueReply) UnmarshalMochi(d *codec.Decoder) {
	r.Status = d.Uint8()
	r.Err = d.String()
	r.Value = d.BytesField()
}

type valuesReply struct {
	Status uint8
	Err    string
	// Found marks which requested keys existed (GetMulti).
	Found  []bool
	Values [][]byte
}

func (r *valuesReply) MarshalMochi(e *codec.Encoder) {
	e.Uint8(r.Status)
	e.String(r.Err)
	e.Uvarint(uint64(len(r.Found)))
	for i := range r.Found {
		e.Bool(r.Found[i])
		e.BytesField(r.Values[i])
	}
}

func (r *valuesReply) UnmarshalMochi(d *codec.Decoder) {
	r.Status = d.Uint8()
	r.Err = d.String()
	n := d.Uvarint()
	if n > uint64(d.Remaining())+1 {
		return
	}
	r.Found = make([]bool, 0, n)
	r.Values = make([][]byte, 0, n)
	for i := uint64(0); i < n; i++ {
		r.Found = append(r.Found, d.Bool())
		r.Values = append(r.Values, d.BytesField())
		if d.Err() != nil {
			return
		}
	}
}

type boolReply struct {
	Status uint8
	Err    string
	Value  bool
}

func (r *boolReply) MarshalMochi(e *codec.Encoder) {
	e.Uint8(r.Status)
	e.String(r.Err)
	e.Bool(r.Value)
}

func (r *boolReply) UnmarshalMochi(d *codec.Decoder) {
	r.Status = d.Uint8()
	r.Err = d.String()
	r.Value = d.Bool()
}

type countReply struct {
	Status uint8
	Err    string
	Count  uint64
}

func (r *countReply) MarshalMochi(e *codec.Encoder) {
	e.Uint8(r.Status)
	e.String(r.Err)
	e.Uvarint(r.Count)
}

func (r *countReply) UnmarshalMochi(d *codec.Decoder) {
	r.Status = d.Uint8()
	r.Err = d.String()
	r.Count = d.Uvarint()
}

type kvListReply struct {
	Status uint8
	Err    string
	Pairs  []KeyValue
}

func (r *kvListReply) MarshalMochi(e *codec.Encoder) {
	e.Uint8(r.Status)
	e.String(r.Err)
	e.Uvarint(uint64(len(r.Pairs)))
	for _, kv := range r.Pairs {
		e.BytesField(kv.Key)
		e.BytesField(kv.Value)
	}
}

func (r *kvListReply) UnmarshalMochi(d *codec.Decoder) {
	r.Status = d.Uint8()
	r.Err = d.String()
	n := d.Uvarint()
	if n > uint64(d.Remaining())+1 {
		return
	}
	r.Pairs = make([]KeyValue, 0, n)
	for i := uint64(0); i < n; i++ {
		k := d.BytesField()
		v := d.BytesField()
		if d.Err() != nil {
			return
		}
		r.Pairs = append(r.Pairs, KeyValue{Key: k, Value: v})
	}
}
