package yokan

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"sync"
	"testing"
)

// TestConcurrentStressAllBackends hammers every backend with 32
// goroutines of mixed Put/Get/Erase/Exists/List traffic and checks the
// result against a per-goroutine reference model. Key ranges are
// disjoint per goroutine (but deliberately interleave across shards),
// so each goroutine's model is authoritative for its own keys even
// while the database is shared; prefix-scoped lists mid-flight must
// match the model exactly, and the final full scan must equal the
// merged models in byte order. Run under -race this doubles as the
// striping/group-commit race gate.
func TestConcurrentStressAllBackends(t *testing.T) {
	configs := []Config{
		{Type: "map", Shards: 8},
		{Type: "skiplist", Shards: 8},
		{Type: "btree", Shards: 8},
		// The log backend exercises group commit instead of striping: a
		// small window forces batches to collect several writers.
		{Type: "log", NoSync: true, BatchWindow: "100us"},
	}
	for _, cfg := range configs {
		cfg := cfg
		t.Run(cfg.Type, func(t *testing.T) {
			t.Parallel()
			if cfg.Type == "log" {
				cfg.Path = filepath.Join(t.TempDir(), "stress.log")
			}
			db, err := Open(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			runStress(t, db)
		})
	}
}

func runStress(t *testing.T, db Database) {
	const (
		workers = 32
		keysPer = 16
		ops     = 300
	)
	models := make([]map[string][]byte, workers)
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for g := 0; g < workers; g++ {
		g := g
		model := map[string][]byte{}
		models[g] = model
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) + 1))
			prefix := fmt.Sprintf("g%02d-", g)
			key := func(i int) []byte { return []byte(fmt.Sprintf("%sk%02d", prefix, i)) }
			fail := func(format string, args ...any) {
				select {
				case errCh <- fmt.Errorf("worker %d: %s", g, fmt.Sprintf(format, args...)):
				default:
				}
			}
			for op := 0; op < ops; op++ {
				k := key(rng.Intn(keysPer))
				switch rng.Intn(10) {
				case 0, 1, 2, 3, 4:
					v := make([]byte, 1+rng.Intn(64))
					rng.Read(v)
					if err := db.Put(k, v); err != nil {
						fail("put %q: %v", k, err)
						return
					}
					model[string(k)] = v
				case 5, 6:
					want, ok := model[string(k)]
					got, err := db.Get(k)
					if ok {
						if err != nil || !bytes.Equal(got, want) {
							fail("get %q = %q, %v; want %q", k, got, err, want)
							return
						}
					} else if err != ErrKeyNotFound {
						fail("get absent %q: %v", k, err)
						return
					}
				case 7:
					_, ok := model[string(k)]
					err := db.Erase(k)
					if ok && err != nil {
						fail("erase %q: %v", k, err)
						return
					}
					if !ok && err != ErrKeyNotFound {
						fail("erase absent %q: %v", k, err)
						return
					}
					delete(model, string(k))
				case 8:
					got, err := db.Exists(k)
					if err != nil {
						fail("exists %q: %v", k, err)
						return
					}
					_, want := model[string(k)]
					if got != want {
						fail("exists %q = %v, want %v", k, got, want)
						return
					}
				case 9:
					// No other goroutine writes this prefix, so the
					// prefix-scoped scan must match the model exactly —
					// even while the rest of the key space churns.
					got, err := db.ListKeys(nil, []byte(prefix), 0)
					if err != nil {
						fail("list %q: %v", prefix, err)
						return
					}
					want := make([]string, 0, len(model))
					for mk := range model {
						want = append(want, mk)
					}
					sort.Strings(want)
					if len(got) != len(want) {
						fail("list %q: %d keys, want %d", prefix, len(got), len(want))
						return
					}
					for i := range got {
						if string(got[i]) != want[i] {
							fail("list %q[%d] = %q, want %q", prefix, i, got[i], want[i])
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Quiesced: the full scan must equal the union of the models, in
	// byte order, with matching values.
	merged := map[string][]byte{}
	for _, m := range models {
		for k, v := range m {
			merged[k] = v
		}
	}
	wantKeys := make([]string, 0, len(merged))
	for k := range merged {
		wantKeys = append(wantKeys, k)
	}
	sort.Strings(wantKeys)

	if n, err := db.Count(); err != nil || n != len(merged) {
		t.Fatalf("count = %d, %v; want %d", n, err, len(merged))
	}
	gotKeys, err := db.ListKeys(nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotKeys) != len(wantKeys) {
		t.Fatalf("final scan: %d keys, want %d", len(gotKeys), len(wantKeys))
	}
	for i := range gotKeys {
		if string(gotKeys[i]) != wantKeys[i] {
			t.Fatalf("final scan[%d] = %q, want %q", i, gotKeys[i], wantKeys[i])
		}
	}
	kvs, err := db.ListKeyValues(nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, kv := range kvs {
		if !bytes.Equal(kv.Value, merged[string(kv.Key)]) {
			t.Fatalf("final value %q = %q, want %q", kv.Key, kv.Value, merged[string(kv.Key)])
		}
	}
}
