package yokan

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// TestBTreeSplitsAndMerges drives the tree through enough inserts and
// deletes to force node splits, borrows and merges at every level,
// checking against a reference map throughout.
func TestBTreeSplitsAndMerges(t *testing.T) {
	db := newBTreeDB()
	rng := rand.New(rand.NewSource(7))
	ref := map[string]string{}
	const n = 5000
	// Insert in random order.
	perm := rng.Perm(n)
	for _, i := range perm {
		k := fmt.Sprintf("key-%06d", i)
		v := fmt.Sprintf("val-%d", i)
		if err := db.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		ref[k] = v
	}
	if c, _ := db.Count(); c != n {
		t.Fatalf("count = %d", c)
	}
	// Delete a random two-thirds, verifying as we go.
	for _, i := range perm {
		if i%3 == 0 {
			continue
		}
		k := fmt.Sprintf("key-%06d", i)
		if err := db.Erase([]byte(k)); err != nil {
			t.Fatalf("erase %s: %v", k, err)
		}
		delete(ref, k)
	}
	if c, _ := db.Count(); c != len(ref) {
		t.Fatalf("count = %d, want %d", c, len(ref))
	}
	// Everything left is retrievable; everything deleted is gone.
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key-%06d", i)
		v, err := db.Get([]byte(k))
		if want, ok := ref[k]; ok {
			if err != nil || string(v) != want {
				t.Fatalf("get %s = %q, %v", k, v, err)
			}
		} else if err != ErrKeyNotFound {
			t.Fatalf("deleted key %s: %v", k, err)
		}
	}
	// The full scan is sorted and complete.
	keys, err := db.ListKeys(nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != len(ref) {
		t.Fatalf("scan = %d keys, want %d", len(keys), len(ref))
	}
	for i := 1; i < len(keys); i++ {
		if bytes.Compare(keys[i-1], keys[i]) >= 0 {
			t.Fatalf("unsorted at %d: %s >= %s", i, keys[i-1], keys[i])
		}
	}
}

// TestBTreePaginationDeepTree: strictly-greater pagination across a
// multi-level tree visits every key exactly once.
func TestBTreePaginationDeepTree(t *testing.T) {
	db := newBTreeDB()
	const n = 3000
	for i := 0; i < n; i++ {
		if err := db.Put([]byte(fmt.Sprintf("%08d", i*2)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	var from []byte
	seen := 0
	for {
		page, err := db.ListKeys(from, nil, 97)
		if err != nil {
			t.Fatal(err)
		}
		if len(page) == 0 {
			break
		}
		for _, k := range page {
			if from != nil && bytes.Compare(k, from) <= 0 {
				t.Fatalf("page returned %s ≤ from %s", k, from)
			}
		}
		seen += len(page)
		from = page[len(page)-1]
	}
	if seen != n {
		t.Fatalf("paginated over %d keys, want %d", seen, n)
	}
	// Pagination from a key that is absent (between entries).
	page, err := db.ListKeys([]byte("00000001"), nil, 3)
	if err != nil || len(page) != 3 || string(page[0]) != "00000002" {
		t.Fatalf("between-keys page = %q, %v", page, err)
	}
}

// Property: after any operation sequence the B-tree agrees with both
// the reference map AND the skip list on content and iteration order.
func TestQuickBTreeMatchesSkiplist(t *testing.T) {
	type op struct {
		Erase bool
		Key   uint16
	}
	f := func(ops []op) bool {
		bt := newBTreeDB()
		sl := newSkipDB()
		for _, o := range ops {
			k := []byte(fmt.Sprintf("k%05d", o.Key%512))
			if o.Erase {
				e1 := bt.Erase(k)
				e2 := sl.Erase(k)
				if (e1 == nil) != (e2 == nil) {
					return false
				}
			} else {
				if bt.Put(k, k) != nil || sl.Put(k, k) != nil {
					return false
				}
			}
		}
		c1, _ := bt.Count()
		c2, _ := sl.Count()
		if c1 != c2 {
			return false
		}
		k1, _ := bt.ListKeys(nil, nil, 0)
		k2, _ := sl.ListKeys(nil, nil, 0)
		if len(k1) != len(k2) {
			return false
		}
		for i := range k1 {
			if !bytes.Equal(k1[i], k2[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// The tree height stays logarithmic (sanity check on balancing).
func TestBTreeHeightBounded(t *testing.T) {
	db := newBTreeDB()
	const n = 20000
	for i := 0; i < n; i++ {
		if err := db.Put([]byte(fmt.Sprintf("%08d", i)), nil); err != nil {
			t.Fatal(err)
		}
	}
	h := 0
	for node := db.root; ; h++ {
		if node.leaf() {
			break
		}
		node = node.children[0]
	}
	// With degree 16, 20k keys fit comfortably within height 4.
	if h > 4 {
		t.Fatalf("height = %d for %d keys", h, n)
	}
	sortCheck, _ := db.ListKeys(nil, nil, 0)
	if !sort.SliceIsSorted(sortCheck, func(i, j int) bool { return bytes.Compare(sortCheck[i], sortCheck[j]) < 0 }) {
		t.Fatal("scan unsorted")
	}
	if len(sortCheck) != n {
		t.Fatalf("scan lost keys: %d", len(sortCheck))
	}
}
