package yokan

import (
	"sync"
	"testing"
	"time"

	"mochi/internal/margo"
	"mochi/internal/mercury"
)

// blockingDB wraps a Database and parks any Get of the key "slow"
// until gate is closed, signalling entry on entered.
type blockingDB struct {
	Database
	gate    chan struct{}
	entered chan struct{}
	once    sync.Once
}

func (b *blockingDB) Get(key []byte) ([]byte, error) {
	if string(key) == "slow" {
		b.once.Do(func() { close(b.entered) })
		<-b.gate
	}
	return b.Database.Get(key)
}

// multiXstreamConfig gives the server one RPC pool drained by four
// xstreams, so handlers actually run concurrently (margo's default is
// a single xstream, which would serialize them regardless of locking).
const multiXstreamConfig = `{
  "argobots": {
    "pools": [{"name": "rpc", "type": "fifo_wait", "access": "mpmc"}],
    "xstreams": [
      {"name": "es0", "scheduler": {"type": "basic_wait", "pools": ["rpc"]}},
      {"name": "es1", "scheduler": {"type": "basic_wait", "pools": ["rpc"]}},
      {"name": "es2", "scheduler": {"type": "basic_wait", "pools": ["rpc"]}},
      {"name": "es3", "scheduler": {"type": "basic_wait", "pools": ["rpc"]}}
    ]
  },
  "rpc_pool": "rpc",
  "progress_pool": "rpc"
}`

// TestSlowGetDoesNotBlockProvider is the provider-locking contract:
// with the RWMutex replaced by an atomic state pointer, a handler
// stuck inside a database call must not delay a concurrent Put, nor a
// SwapDatabase performed by the admin path.
func TestSlowGetDoesNotBlockProvider(t *testing.T) {
	f := mercury.NewFabric()
	scls, err := f.NewClass("conc-srv")
	if err != nil {
		t.Fatal(err)
	}
	ccls, err := f.NewClass("conc-cli")
	if err != nil {
		t.Fatal(err)
	}
	server, err := margo.New(scls, []byte(multiXstreamConfig))
	if err != nil {
		t.Fatal(err)
	}
	defer server.Finalize()
	client, err := margo.New(ccls, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Finalize()

	inner, err := Open(Config{Type: "map", Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	bdb := &blockingDB{
		Database: inner,
		gate:     make(chan struct{}),
		entered:  make(chan struct{}),
	}
	prov, err := NewProviderWithDatabase(server, 3, nil, bdb, Config{Type: "map"})
	if err != nil {
		t.Fatal(err)
	}
	defer prov.Close()
	h := NewClient(client).Handle(server.Addr(), 3)
	ctx := tctx(t)

	if err := h.Put(ctx, []byte("slow"), []byte("v")); err != nil {
		t.Fatal(err)
	}

	slowDone := make(chan error, 1)
	go func() {
		_, err := h.Get(ctx, []byte("slow"))
		slowDone <- err
	}()
	select {
	case <-bdb.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("slow Get never reached the database")
	}

	// With the slow Get parked inside its handler, a Put must complete
	// promptly: nothing provider-level brackets handler execution.
	putDone := make(chan error, 1)
	go func() { putDone <- h.Put(ctx, []byte("fast"), []byte("v2")) }()
	select {
	case err := <-putDone:
		if err != nil {
			t.Fatalf("concurrent Put failed: %v", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("Put blocked behind a slow Get: provider is holding a lock across handlers")
	}

	// So must a database swap — it replaces the pointer, it does not
	// wait for in-flight handlers.
	replacement, err := Open(Config{Type: "map", Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := replacement.Put([]byte("swapped"), []byte("yes")); err != nil {
		t.Fatal(err)
	}
	swapDone := make(chan error, 1)
	go func() {
		old, err := prov.SwapDatabase(replacement, Config{Type: "map"})
		if err == nil && old != bdb {
			t.Errorf("SwapDatabase returned %T, want the blocking db", old)
		}
		swapDone <- err
	}()
	select {
	case err := <-swapDone:
		if err != nil {
			t.Fatalf("SwapDatabase failed: %v", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("SwapDatabase blocked behind a slow Get")
	}

	// New requests see the new database immediately.
	if v, err := h.Get(ctx, []byte("swapped")); err != nil || string(v) != "yes" {
		t.Fatalf("post-swap Get = %q, %v", v, err)
	}

	// The parked handler still completes against the old database.
	close(bdb.gate)
	select {
	case err := <-slowDone:
		if err != nil {
			t.Fatalf("slow Get failed after release: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("slow Get never completed")
	}
	inner.Close()
}
