package yokan

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"testing/quick"
)

// backends under test; the log backend gets a fresh temp file per test.
func openBackends(t *testing.T) map[string]Database {
	t.Helper()
	out := map[string]Database{}
	for _, typ := range []string{"map", "skiplist", "btree", "log"} {
		cfg := Config{Type: typ, NoSync: true}
		if typ == "log" {
			cfg.Path = filepath.Join(t.TempDir(), "db.log")
		}
		db, err := Open(cfg)
		if err != nil {
			t.Fatalf("open %s: %v", typ, err)
		}
		t.Cleanup(func() { db.Close() })
		out[typ] = db
	}
	return out
}

func TestPutGetEraseAllBackends(t *testing.T) {
	for typ, db := range openBackends(t) {
		t.Run(typ, func(t *testing.T) {
			if err := db.Put([]byte("k"), []byte("v")); err != nil {
				t.Fatal(err)
			}
			v, err := db.Get([]byte("k"))
			if err != nil || string(v) != "v" {
				t.Fatalf("get = %q, %v", v, err)
			}
			// Overwrite.
			if err := db.Put([]byte("k"), []byte("v2")); err != nil {
				t.Fatal(err)
			}
			v, _ = db.Get([]byte("k"))
			if string(v) != "v2" {
				t.Fatalf("overwrite lost: %q", v)
			}
			if n, _ := db.Count(); n != 1 {
				t.Fatalf("count = %d", n)
			}
			if err := db.Erase([]byte("k")); err != nil {
				t.Fatal(err)
			}
			if _, err := db.Get([]byte("k")); err != ErrKeyNotFound {
				t.Fatalf("get after erase: %v", err)
			}
			if err := db.Erase([]byte("k")); err != ErrKeyNotFound {
				t.Fatalf("double erase: %v", err)
			}
		})
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	for typ, db := range openBackends(t) {
		if err := db.Put(nil, []byte("v")); err != ErrEmptyKey {
			t.Errorf("%s: err = %v", typ, err)
		}
	}
}

func TestExistsAndCount(t *testing.T) {
	for typ, db := range openBackends(t) {
		t.Run(typ, func(t *testing.T) {
			for i := 0; i < 10; i++ {
				if err := db.Put([]byte(fmt.Sprintf("k%02d", i)), []byte("v")); err != nil {
					t.Fatal(err)
				}
			}
			ok, err := db.Exists([]byte("k05"))
			if err != nil || !ok {
				t.Fatalf("exists = %v, %v", ok, err)
			}
			ok, _ = db.Exists([]byte("nope"))
			if ok {
				t.Fatal("ghost key exists")
			}
			if n, _ := db.Count(); n != 10 {
				t.Fatalf("count = %d", n)
			}
		})
	}
}

func TestListKeysOrderedWithPrefixAndPagination(t *testing.T) {
	for typ, db := range openBackends(t) {
		t.Run(typ, func(t *testing.T) {
			for _, k := range []string{"b2", "a1", "a3", "b1", "a2", "c1"} {
				if err := db.Put([]byte(k), []byte("v-"+k)); err != nil {
					t.Fatal(err)
				}
			}
			keys, err := db.ListKeys(nil, nil, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !sort.SliceIsSorted(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 }) {
				t.Fatalf("keys not sorted: %q", keys)
			}
			if len(keys) != 6 {
				t.Fatalf("len = %d", len(keys))
			}
			// Prefix filter.
			keys, _ = db.ListKeys(nil, []byte("a"), 0)
			if len(keys) != 3 || string(keys[0]) != "a1" || string(keys[2]) != "a3" {
				t.Fatalf("prefix scan = %q", keys)
			}
			// Pagination: strictly-greater-than semantics.
			keys, _ = db.ListKeys([]byte("a3"), nil, 2)
			if len(keys) != 2 || string(keys[0]) != "b1" || string(keys[1]) != "b2" {
				t.Fatalf("page = %q", keys)
			}
			// KeyValues carry the right values.
			kvs, _ := db.ListKeyValues(nil, []byte("c"), 0)
			if len(kvs) != 1 || string(kvs[0].Value) != "v-c1" {
				t.Fatalf("kvs = %v", kvs)
			}
		})
	}
}

func TestValueIsolation(t *testing.T) {
	for typ, db := range openBackends(t) {
		t.Run(typ, func(t *testing.T) {
			v := []byte("mutable")
			if err := db.Put([]byte("k"), v); err != nil {
				t.Fatal(err)
			}
			v[0] = 'X' // caller mutates after Put
			got, _ := db.Get([]byte("k"))
			if string(got) != "mutable" {
				t.Fatalf("db observed caller mutation: %q", got)
			}
			got[0] = 'Y' // caller mutates the returned slice
			got2, _ := db.Get([]byte("k"))
			if string(got2) != "mutable" {
				t.Fatalf("returned slice aliased storage: %q", got2)
			}
		})
	}
}

func TestClosedDatabaseErrors(t *testing.T) {
	for typ, db := range openBackends(t) {
		db.Close()
		if err := db.Put([]byte("k"), nil); err != ErrClosed {
			t.Errorf("%s put after close: %v", typ, err)
		}
		if _, err := db.Get([]byte("k")); err != ErrClosed {
			t.Errorf("%s get after close: %v", typ, err)
		}
	}
}

func TestOpenBadConfig(t *testing.T) {
	if _, err := Open(Config{Type: "rocksdb"}); err == nil {
		t.Fatal("unknown backend accepted")
	}
	if _, err := Open(Config{Type: "log"}); err == nil {
		t.Fatal("log without path accepted")
	}
	if _, err := OpenJSON([]byte(`{bad json`)); err == nil {
		t.Fatal("bad json accepted")
	}
	db, err := OpenJSON([]byte(`{"type":"skiplist"}`))
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
}

func TestLogPersistenceAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "persist.log")
	db, err := Open(Config{Type: "log", Path: path, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := db.Put([]byte(fmt.Sprintf("key-%03d", i)), []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Erase some, overwrite some.
	for i := 0; i < 50; i += 2 {
		if err := db.Erase([]byte(fmt.Sprintf("key-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Put([]byte("key-099"), []byte("rewritten")); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, err := Open(Config{Type: "log", Path: path, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if n, _ := db2.Count(); n != 75 {
		t.Fatalf("count after reopen = %d, want 75", n)
	}
	if _, err := db2.Get([]byte("key-000")); err != ErrKeyNotFound {
		t.Fatalf("erased key resurrected: %v", err)
	}
	v, err := db2.Get([]byte("key-099"))
	if err != nil || string(v) != "rewritten" {
		t.Fatalf("get = %q, %v", v, err)
	}
}

func TestLogTornTailTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.log")
	db, err := Open(Config{Type: "log", Path: path, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	db.Close()
	// Simulate a crash mid-write: truncate the file into a record.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(Config{Type: "log", Path: path, NoSync: true})
	if err != nil {
		t.Fatalf("reopen after torn write: %v", err)
	}
	defer db2.Close()
	n, _ := db2.Count()
	if n != 9 {
		t.Fatalf("count = %d, want 9 (lost only the torn record)", n)
	}
	// The log must be writable again after truncation.
	if err := db2.Put([]byte("new"), []byte("v")); err != nil {
		t.Fatal(err)
	}
}

func TestLogCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "compact.log")
	db, err := Open(Config{Type: "log", Path: path, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	ld := db.(*logDB)
	for i := 0; i < 50; i++ {
		key := []byte(fmt.Sprintf("k%02d", i%10)) // heavy overwriting
		if err := db.Put(key, bytes.Repeat([]byte("x"), 100)); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := os.Stat(path)
	if ld.Garbage() == 0 {
		t.Fatal("no garbage recorded despite overwrites")
	}
	if err := ld.Compact(); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Fatalf("compaction did not shrink: %d -> %d", before.Size(), after.Size())
	}
	if ld.Garbage() != 0 {
		t.Fatal("garbage not reset")
	}
	// Data survives compaction and the log stays usable.
	if n, _ := db.Count(); n != 10 {
		t.Fatalf("count = %d", n)
	}
	if err := db.Put([]byte("post"), []byte("compact")); err != nil {
		t.Fatal(err)
	}
	db.Close()
	db2, err := Open(Config{Type: "log", Path: path, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if n, _ := db2.Count(); n != 11 {
		t.Fatalf("count after reopen = %d", n)
	}
}

func TestLogFilesAndDestroy(t *testing.T) {
	path := filepath.Join(t.TempDir(), "destroy.log")
	db, err := Open(Config{Type: "log", Path: path, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	files := db.Files()
	if len(files) != 1 || files[0] != path {
		t.Fatalf("files = %v", files)
	}
	if err := db.Destroy(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("backing file survived Destroy")
	}
}

// Property: after any sequence of puts and erases, every backend
// agrees with a reference Go map.
func TestQuickBackendsMatchReference(t *testing.T) {
	type op struct {
		Erase bool
		Key   uint8 // small key space to force collisions
		Value uint16
	}
	for _, typ := range []string{"map", "skiplist", "btree", "log"} {
		typ := typ
		t.Run(typ, func(t *testing.T) {
			f := func(ops []op) bool {
				cfg := Config{Type: typ, NoSync: true}
				if typ == "log" {
					cfg.Path = filepath.Join(t.TempDir(), fmt.Sprintf("q%p.log", &ops))
				}
				db, err := Open(cfg)
				if err != nil {
					return false
				}
				defer db.Close()
				ref := map[string]string{}
				for _, o := range ops {
					k := fmt.Sprintf("key-%d", o.Key%16)
					if o.Erase {
						delete(ref, k)
						if err := db.Erase([]byte(k)); err != nil && err != ErrKeyNotFound {
							return false
						}
					} else {
						v := fmt.Sprintf("v%d", o.Value)
						ref[k] = v
						if err := db.Put([]byte(k), []byte(v)); err != nil {
							return false
						}
					}
				}
				if n, _ := db.Count(); n != len(ref) {
					return false
				}
				for k, v := range ref {
					got, err := db.Get([]byte(k))
					if err != nil || string(got) != v {
						return false
					}
				}
				keys, _ := db.ListKeys(nil, nil, 0)
				return len(keys) == len(ref)
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Property: skip-list iteration is always sorted and complete.
func TestQuickSkiplistOrdering(t *testing.T) {
	f := func(keys []uint16) bool {
		db := newSkipDB()
		uniq := map[string]bool{}
		for _, k := range keys {
			s := fmt.Sprintf("%05d", k)
			uniq[s] = true
			if err := db.Put([]byte(s), []byte("v")); err != nil {
				return false
			}
		}
		got, err := db.ListKeys(nil, nil, 0)
		if err != nil || len(got) != len(uniq) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if bytes.Compare(got[i-1], got[i]) >= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBackendPut(b *testing.B) {
	for _, typ := range []string{"map", "skiplist", "btree", "log"} {
		b.Run(typ, func(b *testing.B) {
			cfg := Config{Type: typ, NoSync: true}
			if typ == "log" {
				cfg.Path = filepath.Join(b.TempDir(), "bench.log")
			}
			db, err := Open(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			key := make([]byte, 16)
			val := make([]byte, 100)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(key, fmt.Sprintf("%016d", i))
				if err := db.Put(key, val); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBackendGet(b *testing.B) {
	for _, typ := range []string{"map", "skiplist", "btree", "log"} {
		b.Run(typ, func(b *testing.B) {
			cfg := Config{Type: typ, NoSync: true}
			if typ == "log" {
				cfg.Path = filepath.Join(b.TempDir(), "bench.log")
			}
			db, err := Open(cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer db.Close()
			const n = 10000
			for i := 0; i < n; i++ {
				if err := db.Put([]byte(fmt.Sprintf("%016d", i)), make([]byte, 100)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Get([]byte(fmt.Sprintf("%016d", i%n))); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
