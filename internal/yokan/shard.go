package yokan

import (
	"bytes"
	"runtime"
	"sync/atomic"

	"mochi/internal/argobots"
)

// shardedDB stripes one logical database across N independently locked
// partitions of the same backend type, keyed by key hash. Point
// operations touch exactly one shard's lock, so concurrent clients
// scale with cores instead of convoying on a single mutex; ordered
// iteration merge-sorts the per-shard scans so ListKeys/ListKeyValues
// remain byte-identical to an unsharded database holding the same
// pairs (shards partition the key space, so the merge never sees
// duplicates).
type shardedDB struct {
	shards []Database
	// pool, when set, runs multi-op fan-out and per-shard scans in
	// parallel on the provider's Argobots pool (ParallelDo steals work
	// back if the pool is busy, so a single-xstream pool cannot
	// deadlock the handler that is already running on it).
	pool atomic.Pointer[argobots.Pool]
}

// BatchWriter is the optional bulk-write fast path of a Database:
// PutMulti stores all pairs, fanning out across internal partitions
// (or batching into one commit) instead of looping Put.
type BatchWriter interface {
	PutMulti(pairs []KeyValue) error
}

// BatchReader is the optional bulk-read fast path of a Database:
// GetMulti looks every key up, with found[i] reporting presence, and
// only fails on errors other than a missing key.
type BatchReader interface {
	GetMulti(keys [][]byte) (values [][]byte, found []bool, err error)
}

// PoolAware lets a provider hand its Argobots pool to a database that
// can exploit intra-request parallelism.
type PoolAware interface {
	SetPool(p *argobots.Pool)
}

// defaultShards sizes the stripe count to the cores the process may
// use, capped so tiny values-per-shard overheads do not pile up on
// very wide machines.
func defaultShards() int {
	n := runtime.GOMAXPROCS(0)
	if n > 16 {
		n = 16
	}
	if n < 1 {
		n = 1
	}
	return n
}

func newShardedDB(n int, open func() Database) *shardedDB {
	s := &shardedDB{shards: make([]Database, n)}
	for i := range s.shards {
		s.shards[i] = open()
	}
	return s
}

// SetPool implements PoolAware.
func (s *shardedDB) SetPool(p *argobots.Pool) { s.pool.Store(p) }

// shardFor routes a key by FNV-1a hash. The empty key is rejected by
// every backend's Put, but reads of it must still route somewhere
// deterministic.
func (s *shardedDB) shardFor(key []byte) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return int(h % uint64(len(s.shards)))
}

func (s *shardedDB) Put(key, value []byte) error {
	return s.shards[s.shardFor(key)].Put(key, value)
}

func (s *shardedDB) Get(key []byte) ([]byte, error) {
	return s.shards[s.shardFor(key)].Get(key)
}

func (s *shardedDB) Erase(key []byte) error {
	return s.shards[s.shardFor(key)].Erase(key)
}

func (s *shardedDB) Exists(key []byte) (bool, error) {
	return s.shards[s.shardFor(key)].Exists(key)
}

func (s *shardedDB) Count() (int, error) {
	total := 0
	for _, sh := range s.shards {
		n, err := sh.Count()
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// PutMulti implements BatchWriter: pairs are grouped per shard and the
// groups stored in parallel. Pairs within one shard keep their
// submission order, so a batch that writes the same key twice still
// ends with the later value.
func (s *shardedDB) PutMulti(pairs []KeyValue) error {
	if len(pairs) == 0 {
		return nil
	}
	groups := s.group(len(pairs), func(i int) []byte { return pairs[i].Key })
	errs := make([]error, len(s.shards))
	fns := make([]argobots.ULT, 0, len(s.shards))
	for si, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		si, idxs := si, idxs
		fns = append(fns, func() {
			sh := s.shards[si]
			for _, i := range idxs {
				if err := sh.Put(pairs[i].Key, pairs[i].Value); err != nil {
					errs[si] = err
					return
				}
			}
		})
	}
	s.pool.Load().ParallelDo(fns...)
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// GetMulti implements BatchReader: lookups fan out per shard, each
// worker writing disjoint indices of the result slices.
func (s *shardedDB) GetMulti(keys [][]byte) ([][]byte, []bool, error) {
	values := make([][]byte, len(keys))
	found := make([]bool, len(keys))
	if len(keys) == 0 {
		return values, found, nil
	}
	groups := s.group(len(keys), func(i int) []byte { return keys[i] })
	errs := make([]error, len(s.shards))
	fns := make([]argobots.ULT, 0, len(s.shards))
	for si, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		si, idxs := si, idxs
		fns = append(fns, func() {
			sh := s.shards[si]
			for _, i := range idxs {
				v, err := sh.Get(keys[i])
				switch err {
				case nil:
					values[i], found[i] = v, true
				case ErrKeyNotFound:
					// leave the zero values
				default:
					errs[si] = err
					return
				}
			}
		})
	}
	s.pool.Load().ParallelDo(fns...)
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	return values, found, nil
}

// group buckets item indices by destination shard.
func (s *shardedDB) group(n int, keyAt func(int) []byte) [][]int {
	groups := make([][]int, len(s.shards))
	for i := 0; i < n; i++ {
		si := s.shardFor(keyAt(i))
		groups[si] = append(groups[si], i)
	}
	return groups
}

// Ordered scans ask every shard for the same (fromKey, prefix, max)
// window — each answer alone could satisfy the page — then merge.
func (s *shardedDB) ListKeys(fromKey, prefix []byte, max int) ([][]byte, error) {
	per := make([][][]byte, len(s.shards))
	errs := make([]error, len(s.shards))
	fns := make([]argobots.ULT, len(s.shards))
	for i := range s.shards {
		i := i
		fns[i] = func() {
			per[i], errs[i] = s.shards[i].ListKeys(fromKey, prefix, max)
		}
	}
	s.pool.Load().ParallelDo(fns...)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return mergeKeys(per, max), nil
}

func (s *shardedDB) ListKeyValues(fromKey, prefix []byte, max int) ([]KeyValue, error) {
	per := make([][]KeyValue, len(s.shards))
	errs := make([]error, len(s.shards))
	fns := make([]argobots.ULT, len(s.shards))
	for i := range s.shards {
		i := i
		fns[i] = func() {
			per[i], errs[i] = s.shards[i].ListKeyValues(fromKey, prefix, max)
		}
	}
	s.pool.Load().ParallelDo(fns...)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return mergeKeyValues(per, max), nil
}

// mergeKeys k-way merges per-shard sorted key slices. Shard key sets
// are disjoint, so plain smallest-head selection preserves the exact
// sequence an unsharded scan would produce.
func mergeKeys(per [][][]byte, max int) [][]byte {
	total := 0
	for _, p := range per {
		total += len(p)
	}
	if max > 0 && total > max {
		total = max
	}
	if total == 0 {
		return nil
	}
	out := make([][]byte, 0, total)
	heads := make([]int, len(per))
	for len(out) < total {
		best := -1
		for i, p := range per {
			if heads[i] >= len(p) {
				continue
			}
			if best < 0 || bytes.Compare(p[heads[i]], per[best][heads[best]]) < 0 {
				best = i
			}
		}
		if best < 0 {
			break
		}
		out = append(out, per[best][heads[best]])
		heads[best]++
	}
	return out
}

func mergeKeyValues(per [][]KeyValue, max int) []KeyValue {
	total := 0
	for _, p := range per {
		total += len(p)
	}
	if max > 0 && total > max {
		total = max
	}
	if total == 0 {
		return nil
	}
	out := make([]KeyValue, 0, total)
	heads := make([]int, len(per))
	for len(out) < total {
		best := -1
		for i, p := range per {
			if heads[i] >= len(p) {
				continue
			}
			if best < 0 || bytes.Compare(p[heads[i]].Key, per[best][heads[best]].Key) < 0 {
				best = i
			}
		}
		if best < 0 {
			break
		}
		out = append(out, per[best][heads[best]])
		heads[best]++
	}
	return out
}

func (s *shardedDB) Flush() error {
	for _, sh := range s.shards {
		if err := sh.Flush(); err != nil {
			return err
		}
	}
	return nil
}

func (s *shardedDB) Files() []string {
	var out []string
	for _, sh := range s.shards {
		out = append(out, sh.Files()...)
	}
	return out
}

func (s *shardedDB) Close() error {
	var first error
	for _, sh := range s.shards {
		if err := sh.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (s *shardedDB) Destroy() error {
	var first error
	for _, sh := range s.shards {
		if err := sh.Destroy(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
