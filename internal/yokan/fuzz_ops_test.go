package yokan

import (
	"bytes"
	"sort"
	"testing"
)

// FuzzOpScript interprets arbitrary bytes as an operation script run
// against a sharded backend and a plain map reference model. Keys are
// drawn from a tiny alphabet so scripts collide constantly — the same
// key written, erased, listed and batch-read across ops — and key
// lengths 0..4 cover the empty key and prefixes that span shard
// boundaries (a one-byte prefix matches keys hashed to every shard).
// Any divergence from the model, or any panic, is a finding.
func FuzzOpScript(f *testing.F) {
	// put empty key; put/get/erase one key.
	f.Add([]byte{0, 0, 0, 0, 1, 1, 0, 1, 1, 0, 2, 1, 0})
	// same-shard pressure: repeated single-letter keys, then a full list.
	f.Add([]byte{0, 1, 0, 9, 0, 1, 0, 8, 0, 1, 1, 7, 6, 1, 0, 0})
	// multi-key ops: a PutMulti batch, a GetMulti over hits and misses.
	f.Add([]byte{4, 3, 1, 0, 5, 1, 1, 6, 2, 2, 0, 1, 2, 3, 5, 3, 1, 0, 0, 1, 1})
	// prefix spanning shards: keys "aa".."aq" land on different shards,
	// listed under the one-byte prefix "a" with a small max.
	f.Add([]byte{0, 2, 0, 0, 3, 0, 2, 0, 1, 4, 0, 2, 0, 2, 5, 0, 2, 0, 3, 6, 6, 1, 1, 0, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, typ := range []string{"map", "skiplist", "btree"} {
			db, err := Open(Config{Type: typ, Shards: 3})
			if err != nil {
				t.Fatal(err)
			}
			runOpScript(t, typ, db, data)
			db.Close()
		}
	})
}

func runOpScript(t *testing.T, typ string, db Database, data []byte) {
	cur := 0
	next := func() byte {
		if cur >= len(data) {
			return 0
		}
		b := data[cur]
		cur++
		return b
	}
	const alphabet = "abpq"
	readKey := func() []byte {
		n := int(next() % 5)
		k := make([]byte, 0, n)
		for i := 0; i < n; i++ {
			k = append(k, alphabet[next()%4])
		}
		return k
	}
	model := map[string][]byte{}
	modelList := func(fromKey, prefix []byte, max int) []string {
		var keys []string
		for k := range model {
			if len(prefix) > 0 && !bytes.HasPrefix([]byte(k), prefix) {
				continue
			}
			if fromKey != nil && k <= string(fromKey) {
				continue
			}
			keys = append(keys, k)
		}
		sort.Strings(keys)
		if max > 0 && len(keys) > max {
			keys = keys[:max]
		}
		return keys
	}

	for step := 0; cur < len(data) && step < 256; step++ {
		switch next() % 7 {
		case 0:
			k := readKey()
			v := []byte{next(), next()}
			err := db.Put(k, v)
			if len(k) == 0 {
				if err != ErrEmptyKey {
					t.Fatalf("%s: put empty key: %v", typ, err)
				}
			} else {
				if err != nil {
					t.Fatalf("%s: put %q: %v", typ, k, err)
				}
				model[string(k)] = v
			}
		case 1:
			k := readKey()
			got, err := db.Get(k)
			want, ok := model[string(k)]
			if ok {
				if err != nil || !bytes.Equal(got, want) {
					t.Fatalf("%s: get %q = %q, %v; want %q", typ, k, got, err, want)
				}
			} else if err != ErrKeyNotFound {
				t.Fatalf("%s: get absent %q: %v", typ, k, err)
			}
		case 2:
			k := readKey()
			err := db.Erase(k)
			if _, ok := model[string(k)]; ok {
				if err != nil {
					t.Fatalf("%s: erase %q: %v", typ, k, err)
				}
				delete(model, string(k))
			} else if err != ErrKeyNotFound {
				t.Fatalf("%s: erase absent %q: %v", typ, k, err)
			}
		case 3:
			k := readKey()
			got, err := db.Exists(k)
			if err != nil {
				t.Fatalf("%s: exists %q: %v", typ, k, err)
			}
			if _, want := model[string(k)]; got != want {
				t.Fatalf("%s: exists %q = %v, want %v", typ, k, got, want)
			}
		case 4:
			bw, ok := db.(BatchWriter)
			if !ok {
				t.Fatalf("%s: no BatchWriter", typ)
			}
			n := 1 + int(next()%6)
			pairs := make([]KeyValue, 0, n)
			for i := 0; i < n; i++ {
				k := readKey()
				if len(k) == 0 {
					// Batches with empty keys apply partially (the
					// failing shard stops mid-group); keep batches
					// valid and test the empty key via single Put.
					k = []byte{'z'}
				}
				pairs = append(pairs, KeyValue{Key: k, Value: []byte{next(), byte(i)}})
			}
			if err := bw.PutMulti(pairs); err != nil {
				t.Fatalf("%s: putmulti: %v", typ, err)
			}
			// Within-batch duplicates resolve in submission order.
			for _, kv := range pairs {
				model[string(kv.Key)] = kv.Value
			}
		case 5:
			br, ok := db.(BatchReader)
			if !ok {
				t.Fatalf("%s: no BatchReader", typ)
			}
			n := 1 + int(next()%6)
			keys := make([][]byte, 0, n)
			for i := 0; i < n; i++ {
				keys = append(keys, readKey())
			}
			values, found, err := br.GetMulti(keys)
			if err != nil {
				t.Fatalf("%s: getmulti: %v", typ, err)
			}
			for i, k := range keys {
				want, ok := model[string(k)]
				if found[i] != ok || !bytes.Equal(values[i], want) {
					t.Fatalf("%s: getmulti[%d] (%q) = %q/%v, want %q/%v",
						typ, i, k, values[i], found[i], want, ok)
				}
			}
		case 6:
			var fromKey []byte
			if next()%2 == 1 {
				if fk := readKey(); len(fk) > 0 {
					fromKey = fk
				}
			}
			prefix := readKey()
			max := int(next() % 7)
			got, err := db.ListKeys(fromKey, prefix, max)
			if err != nil {
				t.Fatalf("%s: listkeys: %v", typ, err)
			}
			want := modelList(fromKey, prefix, max)
			if len(got) != len(want) {
				t.Fatalf("%s: listkeys(from=%q prefix=%q max=%d): got %d keys %q, want %d %q",
					typ, fromKey, prefix, max, len(got), got, len(want), want)
			}
			for i := range got {
				if string(got[i]) != want[i] {
					t.Fatalf("%s: listkeys[%d] = %q, want %q", typ, i, got[i], want[i])
				}
			}
		}
	}

	// Final full-scan check: pairs and order must match the model.
	kvs, err := db.ListKeyValues(nil, nil, 0)
	if err != nil {
		t.Fatalf("%s: final scan: %v", typ, err)
	}
	if len(kvs) != len(model) {
		t.Fatalf("%s: final scan has %d pairs, model %d", typ, len(kvs), len(model))
	}
	for i := 1; i < len(kvs); i++ {
		if bytes.Compare(kvs[i-1].Key, kvs[i].Key) >= 0 {
			t.Fatalf("%s: final scan unsorted at %d: %q >= %q", typ, i, kvs[i-1].Key, kvs[i].Key)
		}
	}
	for _, kv := range kvs {
		if !bytes.Equal(kv.Value, model[string(kv.Key)]) {
			t.Fatalf("%s: final value %q = %q, want %q", typ, kv.Key, kv.Value, model[string(kv.Key)])
		}
	}
}
