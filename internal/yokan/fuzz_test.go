package yokan

import (
	"testing"

	"mochi/internal/codec"
)

// FuzzWireMessages decodes every yokan wire message type — and the
// log backend's on-disk record — from arbitrary bytes. Corrupt RPC
// payloads and torn log tails must fail cleanly, never panic.
func FuzzWireMessages(f *testing.F) {
	seed := func(sel uint8, m codec.Marshaler) { f.Add(sel, codec.Marshal(m)) }
	seed(0, &putArgs{Pairs: []KeyValue{{Key: []byte("k"), Value: []byte("v")}}})
	seed(1, &keysArgs{Keys: [][]byte{[]byte("a"), []byte("b")}})
	seed(2, &listArgs{FromKey: []byte("a"), HasFrom: true, Prefix: []byte("p"), Max: 10})
	seed(3, &statusReply{Status: 2, Err: "boom"})
	seed(4, &valueReply{Status: 0, Value: []byte("v")})
	seed(5, &valuesReply{Found: []bool{true, false}, Values: [][]byte{[]byte("v"), nil}})
	seed(6, &boolReply{Value: true})
	seed(7, &countReply{Count: 99})
	seed(8, &kvListReply{Pairs: []KeyValue{{Key: []byte("k"), Value: []byte("v")}}})
	seed(9, &logRecord{op: 0, key: []byte("k"), value: []byte("v")})
	f.Add(uint8(0), []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})

	f.Fuzz(func(t *testing.T, sel uint8, data []byte) {
		switch sel % 10 {
		case 0:
			var v putArgs
			_ = codec.Unmarshal(data, &v)
		case 1:
			var v keysArgs
			_ = codec.Unmarshal(data, &v)
		case 2:
			var v listArgs
			_ = codec.Unmarshal(data, &v)
		case 3:
			var v statusReply
			_ = codec.Unmarshal(data, &v)
		case 4:
			var v valueReply
			_ = codec.Unmarshal(data, &v)
		case 5:
			var v valuesReply
			_ = codec.Unmarshal(data, &v)
		case 6:
			var v boolReply
			_ = codec.Unmarshal(data, &v)
		case 7:
			var v countReply
			_ = codec.Unmarshal(data, &v)
		case 8:
			var v kvListReply
			_ = codec.Unmarshal(data, &v)
		case 9:
			var v logRecord
			_ = codec.Unmarshal(data, &v)
		}
	})
}
