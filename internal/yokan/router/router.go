package router

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"mochi/internal/codec"
	"mochi/internal/margo"
	"mochi/internal/yokan"
)

// ErrNoMap is returned by client operations before a map is known.
var ErrNoMap = errors.New("router: no shard map")

// ErrTooManyRedirects is returned when an operation keeps bouncing:
// either the cluster is mid-flip for longer than the retry budget or
// the client's map and the cluster disagree pathologically.
var ErrTooManyRedirects = errors.New("router: too many redirects")

// Router is the client-side consistent-hash router: it holds the
// current shard map (lock-free, swapped on redirects) and forwards
// each operation to the shard's owner. A stale-epoch redirect carries
// the server's newer map; the router installs it and retries, so one
// reconfiguration costs in-flight requests at most one extra hop.
type Router struct {
	inst *margo.Instance
	cur  atomic.Pointer[Map]

	// MaxRedirects bounds the redirect/retry loop per operation.
	MaxRedirects int
	// RetryBase paces statusRetry backoff (flip window); redirects
	// retry immediately with the new map.
	RetryBase time.Duration

	redirects atomic.Uint64
	installs  atomic.Uint64
}

// NewRouter creates a router over a seed map (from NewMap or
// Bootstrap).
func NewRouter(inst *margo.Instance, seed *Map) *Router {
	r := &Router{inst: inst, MaxRedirects: 16, RetryBase: 2 * time.Millisecond}
	if seed != nil {
		r.cur.Store(seed)
	}
	return r
}

// Bootstrap fetches the current shard map from the first responsive
// node among addrs (e.g. the alive view of the service's SSG group)
// and returns a ready router.
func Bootstrap(ctx context.Context, inst *margo.Instance, addrs []string, provider uint16) (*Router, error) {
	var lastErr error = ErrNoMap
	for _, addr := range addrs {
		m, err := FetchMap(ctx, inst, addr, provider)
		if err != nil {
			lastErr = err
			continue
		}
		return NewRouter(inst, m), nil
	}
	return nil, fmt.Errorf("router: bootstrap failed: %w", lastErr)
}

// FetchMap asks one node for its current shard map.
func FetchMap(ctx context.Context, inst *margo.Instance, addr string, provider uint16) (*Map, error) {
	raw, err := inst.ForwardProvider(ctx, addr, RPCFetchMap, provider, nil)
	if err != nil {
		return nil, err
	}
	var reply mapReply
	if err := codec.Unmarshal(raw, &reply); err != nil {
		return nil, err
	}
	if reply.Status != statusOK {
		return nil, fmt.Errorf("router: fetch map: %s", reply.Err)
	}
	return DecodeMap(reply.Map)
}

// Map returns the router's current view of the shard map.
func (r *Router) Map() *Map { return r.cur.Load() }

// Stats reports how many redirects this router absorbed and how many
// newer maps it installed from them.
func (r *Router) Stats() (redirects, installs uint64) {
	return r.redirects.Load(), r.installs.Load()
}

// install adopts m if it is newer than the current map.
func (r *Router) install(m *Map) bool {
	for {
		cur := r.cur.Load()
		if cur != nil && cur.Epoch >= m.Epoch {
			return false
		}
		if r.cur.CompareAndSwap(cur, m) {
			r.installs.Add(1)
			return true
		}
	}
}

// backoff sleeps before a retry attempt, preferring the instance's
// resilience manager (jittered exponential policy, honors context and
// simulated clocks) over a bare timer.
func (r *Router) backoff(ctx context.Context, attempt int) error {
	if mgr := r.inst.Resilience(); mgr != nil {
		if !mgr.Sleep(ctx, mgr.Backoff(attempt)) {
			return ctx.Err()
		}
		return nil
	}
	d := r.RetryBase << uint(attempt)
	if d > 100*time.Millisecond {
		d = 100 * time.Millisecond
	}
	t := r.inst.Clock().NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C():
		return nil
	}
}

// op runs one data RPC against the key's owner, following redirects.
// Transport-level retries (drops, resets, timeouts) belong to the
// margo resilience layer underneath; this loop only handles the
// routing protocol: statusStale installs the newer map and re-routes,
// statusRetry backs off through the flip window.
func (r *Router) op(ctx context.Context, rpc string, key []byte, args *opArgs) (*opReply, error) {
	retries := 0
	for attempt := 0; attempt <= r.MaxRedirects; attempt++ {
		m := r.cur.Load()
		if m == nil {
			return nil, ErrNoMap
		}
		shard := args.Shard
		if key != nil {
			shard = m.ShardOf(key)
		}
		args.Epoch = m.Epoch
		args.Shard = shard
		owner := m.Owners[shard]
		e := codec.GetEncoder()
		args.MarshalMochi(e)
		raw, err := r.inst.ForwardProvider(ctx, owner.Addr, rpc, owner.Provider, e.Bytes())
		codec.PutEncoder(e)
		if err != nil {
			return nil, err
		}
		reply := &opReply{}
		if err := codec.Unmarshal(raw, reply); err != nil {
			return nil, err
		}
		switch reply.Status {
		case statusStale:
			r.redirects.Add(1)
			nm, err := DecodeMap(reply.Map)
			if err != nil {
				return nil, fmt.Errorf("router: redirect with bad map: %w", err)
			}
			if !r.install(nm) {
				// The server's map is not newer than ours: both
				// sides are catching up with a flip in progress.
				// Back off instead of spinning on the same answer.
				retries++
				if err := r.backoff(ctx, retries); err != nil {
					return nil, err
				}
			}
		case statusRetry:
			retries++
			if err := r.backoff(ctx, retries); err != nil {
				return nil, err
			}
		default:
			return reply, nil
		}
	}
	return nil, ErrTooManyRedirects
}

func replyErr(r *opReply) error {
	switch r.Status {
	case statusOK:
		return nil
	case statusNotFound:
		return yokan.ErrKeyNotFound
	default:
		return fmt.Errorf("router: remote error: %s", r.Err)
	}
}

// Put stores one pair.
func (r *Router) Put(ctx context.Context, key, value []byte) error {
	reply, err := r.op(ctx, RPCPut, key, &opArgs{Pairs: []yokan.KeyValue{{Key: key, Value: value}}})
	if err != nil {
		return err
	}
	return replyErr(reply)
}

// Get fetches one key.
func (r *Router) Get(ctx context.Context, key []byte) ([]byte, error) {
	reply, err := r.op(ctx, RPCGet, key, &opArgs{Keys: [][]byte{key}})
	if err != nil {
		return nil, err
	}
	if err := replyErr(reply); err != nil {
		return nil, err
	}
	return reply.Value, nil
}

// Erase removes one key.
func (r *Router) Erase(ctx context.Context, key []byte) error {
	reply, err := r.op(ctx, RPCErase, key, &opArgs{Keys: [][]byte{key}})
	if err != nil {
		return err
	}
	return replyErr(reply)
}

// Exists reports whether key is present.
func (r *Router) Exists(ctx context.Context, key []byte) (bool, error) {
	reply, err := r.op(ctx, RPCExists, key, &opArgs{Keys: [][]byte{key}})
	if err != nil {
		return false, err
	}
	if err := replyErr(reply); err != nil {
		return false, err
	}
	return reply.Found, nil
}

// Count sums the pair count across all shards. It is not atomic
// against concurrent writes or migrations — like any distributed
// count, it is a monitoring number, not a transaction.
func (r *Router) Count(ctx context.Context) (int, error) {
	m := r.cur.Load()
	if m == nil {
		return 0, ErrNoMap
	}
	total := 0
	for s := 0; s < m.NumShards(); s++ {
		reply, err := r.op(ctx, RPCCount, nil, &opArgs{Shard: uint32(s)})
		if err != nil {
			return 0, err
		}
		if err := replyErr(reply); err != nil {
			return 0, err
		}
		total += int(reply.Count)
	}
	return total, nil
}

// Refresh fetches the map from the current owner set, adopting it if
// newer. Useful after a long idle period; normal traffic self-heals
// through redirects.
func (r *Router) Refresh(ctx context.Context) error {
	m := r.cur.Load()
	if m == nil {
		return ErrNoMap
	}
	var lastErr error
	for _, o := range m.Owners {
		nm, err := FetchMap(ctx, r.inst, o.Addr, o.Provider)
		if err != nil {
			lastErr = err
			continue
		}
		r.install(nm)
		return nil
	}
	return lastErr
}
