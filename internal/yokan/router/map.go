// Package router spreads one logical yokan keyspace across N
// providers with a client-side consistent-hash router, and makes the
// placement *dynamic*: a Reshard operation REMI-migrates one shard's
// data to a new owner and atomically flips routing under live
// traffic. This is the paper's elasticity claim (§6: REMI +
// Pufferscale + SSG compose into dynamically reconfigurable
// services) exercised end to end.
//
// Routing is two-level, the classic "many fixed shards over few
// movable owners" design: a key hashes onto a virtual-node ring whose
// points map to a fixed set of shards, and an epoch-versioned map
// assigns each shard to an owner (address, provider ID). Moving data
// never rehashes keys — only the shard→owner assignment changes, so a
// reshard touches exactly one shard's pairs and every other key keeps
// routing without interruption.
package router

import (
	"fmt"
	"hash/fnv"
	"sort"

	"mochi/internal/codec"
)

// Bounds on decoded maps, protecting against corrupt or hostile
// inputs (the map travels inside redirect replies).
const (
	MaxShards = 4096
	MaxVNodes = 1024
	// DefaultVNodes is the ring density per shard. 32 points per
	// shard keeps the max/mean keyspace share of a shard within a
	// few percent of ideal while the ring stays small enough to
	// rebuild on every map decode.
	DefaultVNodes = 32
)

// Owner locates the provider serving a shard.
type Owner struct {
	Addr     string
	Provider uint16
}

func (o Owner) String() string { return fmt.Sprintf("%s/%d", o.Addr, o.Provider) }

// Map is the epoch-versioned shard map. It is immutable once built:
// mutation happens by deriving a successor with WithOwner (epoch+1),
// so a *Map can be published through an atomic pointer and read
// lock-free on every operation.
//
// The ring is derived deterministically from (len(Owners), VNodes)
// alone — ring point j of shard i is the hash of "shard/i/j" — so two
// parties that agree on the shard count agree on every key's shard,
// regardless of how the map was serialized, merged, or re-decoded.
// Owner changes never move ring points.
type Map struct {
	Epoch  uint64
	VNodes int
	Owners []Owner // indexed by shard

	ring []ringEntry
}

type ringEntry struct {
	point uint64
	shard uint32
}

// NewMap builds an epoch-0 map assigning shard i to owners[i%len].
// nshards is the fixed shard count for the life of the keyspace.
func NewMap(nshards int, owners []Owner, vnodes int) (*Map, error) {
	if nshards < 1 || nshards > MaxShards {
		return nil, fmt.Errorf("router: shard count %d out of range [1,%d]", nshards, MaxShards)
	}
	if len(owners) == 0 {
		return nil, fmt.Errorf("router: need at least one owner")
	}
	if vnodes == 0 {
		vnodes = DefaultVNodes
	}
	if vnodes < 1 || vnodes > MaxVNodes {
		return nil, fmt.Errorf("router: vnodes %d out of range [1,%d]", vnodes, MaxVNodes)
	}
	m := &Map{Epoch: 0, VNodes: vnodes, Owners: make([]Owner, nshards)}
	for i := range m.Owners {
		m.Owners[i] = owners[i%len(owners)]
	}
	m.buildRing()
	return m, nil
}

// NumShards returns the fixed shard count.
func (m *Map) NumShards() int { return len(m.Owners) }

// buildRing derives the sorted virtual-node ring. Points depend only
// on the shard count and vnode density, never on owners or epoch.
func (m *Map) buildRing() {
	m.ring = make([]ringEntry, 0, len(m.Owners)*m.VNodes)
	var name [32]byte
	for s := 0; s < len(m.Owners); s++ {
		for v := 0; v < m.VNodes; v++ {
			b := name[:0]
			b = append(b, "shard/"...)
			b = appendUint(b, uint64(s))
			b = append(b, '/')
			b = appendUint(b, uint64(v))
			m.ring = append(m.ring, ringEntry{point: hashBytes(b), shard: uint32(s)})
		}
	}
	sort.Slice(m.ring, func(i, j int) bool {
		if m.ring[i].point != m.ring[j].point {
			return m.ring[i].point < m.ring[j].point
		}
		// Deterministic tie-break so equal points (vanishingly
		// rare) still order identically everywhere.
		return m.ring[i].shard < m.ring[j].shard
	})
}

func appendUint(b []byte, v uint64) []byte {
	if v >= 10 {
		b = appendUint(b, v/10)
	}
	return append(b, byte('0'+v%10))
}

// hashBytes hashes for ring placement: FNV-64a for the byte walk,
// then a murmur3-style finalizer. Raw FNV of short, similar inputs
// ("key-1", "key-2", ...) clusters badly — neighbouring inputs land
// in neighbouring ring arcs and the "uniform" ring degenerates to a
// couple of hot shards; the finalizer's avalanche restores uniform
// spread while staying a bijection (distinct FNV values stay
// distinct).
func hashBytes(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	v := h.Sum64()
	v ^= v >> 33
	v *= 0xff51afd7ed558ccd
	v ^= v >> 33
	v *= 0xc4ceb9fe1a85ec53
	v ^= v >> 33
	return v
}

// ShardOf maps a key to its shard: the first ring point at or after
// the key's hash, wrapping at the top.
func (m *Map) ShardOf(key []byte) uint32 {
	h := hashBytes(key)
	i := sort.Search(len(m.ring), func(i int) bool { return m.ring[i].point >= h })
	if i == len(m.ring) {
		i = 0
	}
	return m.ring[i].shard
}

// OwnerOf returns the owner currently assigned to the key's shard.
func (m *Map) OwnerOf(key []byte) (uint32, Owner) {
	s := m.ShardOf(key)
	return s, m.Owners[s]
}

// WithOwner derives the successor map: identical except shard is
// assigned to o and the epoch is bumped. The ring is shared — ring
// points never depend on ownership.
func (m *Map) WithOwner(shard uint32, o Owner) *Map {
	owners := make([]Owner, len(m.Owners))
	copy(owners, m.Owners)
	owners[shard] = o
	return &Map{Epoch: m.Epoch + 1, VNodes: m.VNodes, Owners: owners, ring: m.ring}
}

// Nodes returns the distinct owner addresses, in first-seen order.
func (m *Map) Nodes() []string {
	seen := make(map[string]bool, len(m.Owners))
	var out []string
	for _, o := range m.Owners {
		if !seen[o.Addr] {
			seen[o.Addr] = true
			out = append(out, o.Addr)
		}
	}
	return out
}

// MarshalMochi encodes the map: epoch, vnode density, then the
// shard→owner table. The ring is derived, never serialized.
func (m *Map) MarshalMochi(e *codec.Encoder) {
	e.Uint64(m.Epoch)
	e.Uvarint(uint64(m.VNodes))
	e.Uvarint(uint64(len(m.Owners)))
	for _, o := range m.Owners {
		e.String(o.Addr)
		e.Uint16(o.Provider)
	}
}

// UnmarshalMochi decodes and validates a map and rebuilds its ring.
func (m *Map) UnmarshalMochi(d *codec.Decoder) {
	m.Epoch = d.Uint64()
	vn := d.Uvarint()
	n := d.Uvarint()
	if d.Err() != nil {
		return
	}
	if vn < 1 || vn > MaxVNodes || n < 1 || n > MaxShards || n > uint64(d.Remaining())+1 {
		// Leave Owners nil: Unmarshal's Finish rejects trailing
		// bytes and DecodeMap rejects empty maps, so out-of-range
		// headers never yield a usable map.
		return
	}
	m.VNodes = int(vn)
	m.Owners = make([]Owner, 0, n)
	for i := uint64(0); i < n; i++ {
		addr := d.String()
		prov := d.Uint16()
		if d.Err() != nil {
			return
		}
		m.Owners = append(m.Owners, Owner{Addr: addr, Provider: prov})
	}
	m.buildRing()
}

// EncodeMap serializes a map to bytes.
func EncodeMap(m *Map) []byte { return codec.Marshal(m) }

// DecodeMap parses and validates a serialized map.
func DecodeMap(b []byte) (*Map, error) {
	var m Map
	if err := codec.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("router: bad shard map: %w", err)
	}
	if len(m.Owners) == 0 || m.ring == nil {
		return nil, fmt.Errorf("router: bad shard map: empty")
	}
	return &m, nil
}
