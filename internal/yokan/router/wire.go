package router

import (
	"mochi/internal/codec"
	"mochi/internal/yokan"
)

// RPC names used by the sharded keyspace. Exported so tools can
// monitor them.
const (
	RPCPut    = "xkv_put"
	RPCGet    = "xkv_get"
	RPCErase  = "xkv_erase"
	RPCExists = "xkv_exists"
	RPCCount  = "xkv_count"

	RPCFetchMap   = "xkv_fetch_map"
	RPCInstallMap = "xkv_install_map"
	RPCStats      = "xkv_stats"
	RPCReshard    = "xkv_reshard"

	RPCMigratePrepare = "xkv_mig_prepare"
	RPCMigrateStage   = "xkv_mig_stage"
	RPCMigratePromote = "xkv_mig_promote"
	RPCMigrateAbort   = "xkv_mig_abort"
)

// Status codes carried in replies. The two beyond yokan's convention
// implement the reconfiguration protocol: statusStale is the
// retryable redirect of the paper's reconfigurable-service story (it
// carries the server's current map so the client lands correctly on
// the next attempt), and statusRetry marks the sub-RTT flip window in
// which the server can neither serve (the shard is leaving) nor
// redirect (the new map is not yet committed).
const (
	statusOK       = 0
	statusNotFound = 1
	statusError    = 2
	statusStale    = 3
	statusRetry    = 4
)

// opArgs is the argument frame of every data RPC: the client's map
// epoch and the shard it routed to, plus the keys or pairs. Servers
// route by (Shard, local ownership); Epoch is diagnostic and lets a
// server distinguish a stale client from a corrupted one.
type opArgs struct {
	Epoch uint64
	Shard uint32
	Keys  [][]byte         // get/erase/exists
	Pairs []yokan.KeyValue // put
}

func (a *opArgs) MarshalMochi(e *codec.Encoder) {
	e.Uint64(a.Epoch)
	e.Uint32(a.Shard)
	e.Uvarint(uint64(len(a.Keys)))
	for _, k := range a.Keys {
		e.BytesField(k)
	}
	e.Uvarint(uint64(len(a.Pairs)))
	for _, kv := range a.Pairs {
		e.BytesField(kv.Key)
		e.BytesField(kv.Value)
	}
}

func (a *opArgs) UnmarshalMochi(d *codec.Decoder) {
	a.Epoch = d.Uint64()
	a.Shard = d.Uint32()
	n := d.Uvarint()
	if n > uint64(d.Remaining()) {
		return
	}
	if n > 0 {
		a.Keys = make([][]byte, 0, n)
		for i := uint64(0); i < n; i++ {
			a.Keys = append(a.Keys, d.BytesField())
			if d.Err() != nil {
				return
			}
		}
	}
	n = d.Uvarint()
	if n > uint64(d.Remaining()) {
		return
	}
	if n > 0 {
		a.Pairs = make([]yokan.KeyValue, 0, n)
		for i := uint64(0); i < n; i++ {
			k := d.BytesField()
			v := d.BytesField()
			if d.Err() != nil {
				return
			}
			a.Pairs = append(a.Pairs, yokan.KeyValue{Key: k, Value: v})
		}
	}
}

// opReply answers every data RPC. Map is only set with statusStale.
type opReply struct {
	Status uint8
	Err    string
	Found  bool
	Value  []byte
	Count  uint64
	Map    []byte
}

func (r *opReply) MarshalMochi(e *codec.Encoder) {
	e.Uint8(r.Status)
	e.String(r.Err)
	e.Bool(r.Found)
	e.BytesField(r.Value)
	e.Uvarint(r.Count)
	e.BytesField(r.Map)
}

func (r *opReply) UnmarshalMochi(d *codec.Decoder) {
	r.Status = d.Uint8()
	r.Err = d.String()
	r.Found = d.Bool()
	r.Value = d.BytesField()
	r.Count = d.Uvarint()
	r.Map = d.BytesField()
}

// mapReply answers RPCFetchMap.
type mapReply struct {
	Status uint8
	Err    string
	Map    []byte
}

func (r *mapReply) MarshalMochi(e *codec.Encoder) {
	e.Uint8(r.Status)
	e.String(r.Err)
	e.BytesField(r.Map)
}

func (r *mapReply) UnmarshalMochi(d *codec.Decoder) {
	r.Status = d.Uint8()
	r.Err = d.String()
	r.Map = d.BytesField()
}

// installArgs carries a map to install. Bootstrap additionally asks
// the node to open empty databases for shards the new map assigns to
// it — legal only while the node has no map yet (cluster bring-up);
// during normal operation shard databases are created exclusively by
// the migration protocol.
type installArgs struct {
	Bootstrap bool
	Map       []byte
}

func (a *installArgs) MarshalMochi(e *codec.Encoder) {
	e.Bool(a.Bootstrap)
	e.BytesField(a.Map)
}

func (a *installArgs) UnmarshalMochi(d *codec.Decoder) {
	a.Bootstrap = d.Bool()
	a.Map = d.BytesField()
}

// statusReply answers control RPCs that return no payload.
type statusReply struct {
	Status uint8
	Err    string
}

func (r *statusReply) MarshalMochi(e *codec.Encoder) {
	e.Uint8(r.Status)
	e.String(r.Err)
}

func (r *statusReply) UnmarshalMochi(d *codec.Decoder) {
	r.Status = d.Uint8()
	r.Err = d.String()
}

// prepareArgs opens a staging area for shard at the destination.
type prepareArgs struct {
	Shard uint32
	MigID uint64
}

func (a *prepareArgs) MarshalMochi(e *codec.Encoder) {
	e.Uint32(a.Shard)
	e.Uint64(a.MigID)
}

func (a *prepareArgs) UnmarshalMochi(d *codec.Decoder) {
	a.Shard = d.Uint32()
	a.MigID = d.Uint64()
}

// prepareReply tells the source which REMI provider to ship the
// snapshot to.
type prepareReply struct {
	Status       uint8
	Err          string
	RemiProvider uint16
}

func (r *prepareReply) MarshalMochi(e *codec.Encoder) {
	e.Uint8(r.Status)
	e.String(r.Err)
	e.Uint16(r.RemiProvider)
}

func (r *prepareReply) UnmarshalMochi(d *codec.Decoder) {
	r.Status = d.Uint8()
	r.Err = d.String()
	r.RemiProvider = d.Uint16()
}

// stageArgs forwards one write of the dual-write window to the
// destination: puts carry Pairs, erases carry Keys with Erase set.
// Seq orders the stream per migration: transports deliver
// at-least-once and out of order (a delayed duplicate can arrive
// after a newer write to the same key), so the staging side applies
// an operation to a key only if its Seq exceeds the last one applied
// there.
type stageArgs struct {
	Shard uint32
	MigID uint64
	Seq   uint64
	Erase bool
	Keys  [][]byte
	Pairs []yokan.KeyValue
}

func (a *stageArgs) MarshalMochi(e *codec.Encoder) {
	e.Uint32(a.Shard)
	e.Uint64(a.MigID)
	e.Uvarint(a.Seq)
	e.Bool(a.Erase)
	e.Uvarint(uint64(len(a.Keys)))
	for _, k := range a.Keys {
		e.BytesField(k)
	}
	e.Uvarint(uint64(len(a.Pairs)))
	for _, kv := range a.Pairs {
		e.BytesField(kv.Key)
		e.BytesField(kv.Value)
	}
}

func (a *stageArgs) UnmarshalMochi(d *codec.Decoder) {
	a.Shard = d.Uint32()
	a.MigID = d.Uint64()
	a.Seq = d.Uvarint()
	a.Erase = d.Bool()
	n := d.Uvarint()
	if n > uint64(d.Remaining()) {
		return
	}
	if n > 0 {
		a.Keys = make([][]byte, 0, n)
		for i := uint64(0); i < n; i++ {
			a.Keys = append(a.Keys, d.BytesField())
			if d.Err() != nil {
				return
			}
		}
	}
	n = d.Uvarint()
	if n > uint64(d.Remaining()) {
		return
	}
	if n > 0 {
		a.Pairs = make([]yokan.KeyValue, 0, n)
		for i := uint64(0); i < n; i++ {
			k := d.BytesField()
			v := d.BytesField()
			if d.Err() != nil {
				return
			}
			a.Pairs = append(a.Pairs, yokan.KeyValue{Key: k, Value: v})
		}
	}
}

// promoteArgs commits the flip at the destination: the staging area
// becomes the owned shard and the attached map becomes current.
type promoteArgs struct {
	Shard uint32
	MigID uint64
	Map   []byte
}

func (a *promoteArgs) MarshalMochi(e *codec.Encoder) {
	e.Uint32(a.Shard)
	e.Uint64(a.MigID)
	e.BytesField(a.Map)
}

func (a *promoteArgs) UnmarshalMochi(d *codec.Decoder) {
	a.Shard = d.Uint32()
	a.MigID = d.Uint64()
	a.Map = d.BytesField()
}

// abortArgs tears down a staging area after a failed migration.
type abortArgs struct {
	Shard uint32
	MigID uint64
}

func (a *abortArgs) MarshalMochi(e *codec.Encoder) {
	e.Uint32(a.Shard)
	e.Uint64(a.MigID)
}

func (a *abortArgs) UnmarshalMochi(d *codec.Decoder) {
	a.Shard = d.Uint32()
	a.MigID = d.Uint64()
}

// reshardArgs asks a node to move one of its shards to dst.
type reshardArgs struct {
	Shard uint32
	Dst   Owner
}

func (a *reshardArgs) MarshalMochi(e *codec.Encoder) {
	e.Uint32(a.Shard)
	e.String(a.Dst.Addr)
	e.Uint16(a.Dst.Provider)
}

func (a *reshardArgs) UnmarshalMochi(d *codec.Decoder) {
	a.Shard = d.Uint32()
	a.Dst.Addr = d.String()
	a.Dst.Provider = d.Uint16()
}

// ShardStat is one shard's load sample as reported by RPCStats:
// cumulative operation count and resident bytes. The balancer diffs
// consecutive Ops samples to estimate load.
type ShardStat struct {
	Shard uint32
	Ops   uint64
	Bytes uint64
}

// statsReply answers RPCStats with one entry per locally owned shard.
type statsReply struct {
	Status uint8
	Err    string
	Epoch  uint64
	Stats  []ShardStat
}

func (r *statsReply) MarshalMochi(e *codec.Encoder) {
	e.Uint8(r.Status)
	e.String(r.Err)
	e.Uint64(r.Epoch)
	e.Uvarint(uint64(len(r.Stats)))
	for _, s := range r.Stats {
		e.Uint32(s.Shard)
		e.Uvarint(s.Ops)
		e.Uvarint(s.Bytes)
	}
}

func (r *statsReply) UnmarshalMochi(d *codec.Decoder) {
	r.Status = d.Uint8()
	r.Err = d.String()
	r.Epoch = d.Uint64()
	n := d.Uvarint()
	if n > uint64(d.Remaining())+1 {
		return
	}
	r.Stats = make([]ShardStat, 0, n)
	for i := uint64(0); i < n; i++ {
		var s ShardStat
		s.Shard = d.Uint32()
		s.Ops = d.Uvarint()
		s.Bytes = d.Uvarint()
		if d.Err() != nil {
			return
		}
		r.Stats = append(r.Stats, s)
	}
}
