package router

import (
	"bytes"
	"fmt"
	"testing"

	"mochi/internal/codec"
)

// FuzzShardMapWire decodes arbitrary bytes as a shard map. The map
// travels inside redirect replies from arbitrary peers, so the
// decoder must never panic, never allocate absurdly, and anything it
// accepts must round-trip byte-identically and route keys identically
// after re-serialization.
func FuzzShardMapWire(f *testing.F) {
	m, _ := NewMap(8, []Owner{{Addr: "sm://a", Provider: 1}, {Addr: "sm://b", Provider: 2}}, 0)
	f.Add(EncodeMap(m))
	f.Add(EncodeMap(m.WithOwner(3, Owner{Addr: "sm://c", Provider: 3})))
	big, _ := NewMap(64, []Owner{{Addr: "tcp://127.0.0.1:9999", Provider: 42}}, 128)
	f.Add(EncodeMap(big))
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 1, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := DecodeMap(data)
		if err != nil {
			return
		}
		re := EncodeMap(dec)
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted map does not round-trip: %x -> %x", data, re)
		}
		dec2, err := DecodeMap(re)
		if err != nil {
			t.Fatalf("re-encoded map rejected: %v", err)
		}
		for i := 0; i < 64; i++ {
			key := []byte(fmt.Sprintf("probe-%d", i))
			s := dec.ShardOf(key)
			if s2 := dec2.ShardOf(key); s2 != s {
				t.Fatalf("ring moved across re-serialization: key %q %d -> %d", key, s, s2)
			}
			if int(s) >= len(dec.Owners) {
				t.Fatalf("ShardOf out of range: %d >= %d", s, len(dec.Owners))
			}
		}
	})
}

// FuzzRouterWireMessages decodes arbitrary bytes as each router wire
// message, mirroring the ssg fuzz harness: decoders must be
// allocation-bounded and panic-free on hostile input.
func FuzzRouterWireMessages(f *testing.F) {
	seed := func(m codec.Marshaler) []byte { return codec.Marshal(m) }
	f.Add(uint8(0), seed(&opArgs{Epoch: 1, Shard: 2, Keys: [][]byte{[]byte("k")}}))
	f.Add(uint8(1), seed(&opReply{Status: statusStale, Map: []byte{1, 2}}))
	f.Add(uint8(2), seed(&stageArgs{Shard: 1, MigID: 99, Pairs: nil}))
	f.Add(uint8(3), seed(&promoteArgs{Shard: 1, MigID: 99, Map: []byte{3}}))
	f.Add(uint8(4), seed(&statsReply{Epoch: 7, Stats: []ShardStat{{Shard: 1, Ops: 2, Bytes: 3}}}))
	f.Add(uint8(5), seed(&prepareReply{Status: 0, RemiProvider: 10}))
	f.Add(uint8(6), seed(&installArgs{Bootstrap: true, Map: []byte{9}}))
	f.Add(uint8(7), seed(&reshardArgs{Shard: 3, Dst: Owner{Addr: "sm://x", Provider: 1}}))

	f.Fuzz(func(t *testing.T, sel uint8, data []byte) {
		var m codec.Unmarshaler
		switch sel % 8 {
		case 0:
			m = &opArgs{}
		case 1:
			m = &opReply{}
		case 2:
			m = &stageArgs{}
		case 3:
			m = &promoteArgs{}
		case 4:
			m = &statsReply{}
		case 5:
			m = &prepareReply{}
		case 6:
			m = &installArgs{}
		case 7:
			m = &reshardArgs{}
		}
		_ = codec.Unmarshal(data, m)
	})
}
