package router

import (
	"context"
	"fmt"
	"testing"
	"time"

	"mochi/internal/margo"
	"mochi/internal/mercury"
	"mochi/internal/resilience"
	"mochi/internal/yokan"
)

const testProviderID = 9

// cluster is an in-process multi-"process" sharded keyspace: one
// margo instance per node on a shared sm fabric, plus a client
// instance.
type cluster struct {
	fabric  *mercury.Fabric
	nodes   []*Node
	insts   []*margo.Instance
	client  *margo.Instance
	initial *Map
}

type clusterConfig struct {
	nodes  int
	shards int
	// ownerNodes restricts initial shard placement to the first k
	// nodes (0 = all nodes own shards round-robin).
	ownerNodes int
	resilience *resilience.Config
}

func newCluster(t testing.TB, cfg clusterConfig) *cluster {
	t.Helper()
	f := mercury.NewFabric()
	c := &cluster{fabric: f}
	for i := 0; i < cfg.nodes; i++ {
		cls, err := f.NewClass(fmt.Sprintf("xkv-node-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		inst, err := margo.New(cls, nil)
		if err != nil {
			t.Fatal(err)
		}
		if cfg.resilience != nil {
			inst.SetResilience(cfg.resilience)
		}
		n, err := NewNode(inst, Options{ProviderID: testProviderID, Dir: t.TempDir()})
		if err != nil {
			t.Fatal(err)
		}
		c.nodes = append(c.nodes, n)
		c.insts = append(c.insts, inst)
	}
	ccls, err := f.NewClass("xkv-client")
	if err != nil {
		t.Fatal(err)
	}
	c.client, err = margo.New(ccls, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.resilience != nil {
		c.client.SetResilience(cfg.resilience)
	}
	ownerNodes := cfg.ownerNodes
	if ownerNodes <= 0 {
		ownerNodes = cfg.nodes
	}
	owners := make([]Owner, 0, ownerNodes)
	for i := 0; i < ownerNodes; i++ {
		owners = append(owners, c.nodes[i].Self())
	}
	m, err := NewMap(cfg.shards, owners, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.initial = m
	for _, n := range c.nodes {
		if err := n.Adopt(m); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, n := range c.nodes {
			n.Close()
		}
		for _, inst := range c.insts {
			inst.Finalize()
		}
		c.client.Finalize()
	})
	return c
}

func (c *cluster) router() *Router { return NewRouter(c.client, c.initial) }

func tctx(t testing.TB, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}

func TestRouterBasicOps(t *testing.T) {
	c := newCluster(t, clusterConfig{nodes: 3, shards: 8})
	r := c.router()
	ctx := tctx(t, 10*time.Second)

	const n = 300
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		if err := r.Put(ctx, k, []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		v, err := r.Get(ctx, k)
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if want := fmt.Sprintf("val-%d", i); string(v) != want {
			t.Fatalf("get %d: got %q want %q", i, v, want)
		}
	}
	if got, err := r.Count(ctx); err != nil || got != n {
		t.Fatalf("count: got %d (%v), want %d", got, err, n)
	}
	if err := r.Erase(ctx, []byte("key-0")); err != nil {
		t.Fatal(err)
	}
	if ok, err := r.Exists(ctx, []byte("key-0")); err != nil || ok {
		t.Fatalf("exists after erase: %v %v", ok, err)
	}
	if _, err := r.Get(ctx, []byte("key-0")); !yokan.IsNotFound(err) {
		t.Fatalf("get after erase: %v", err)
	}
	// Keys must actually spread: with 8 shards round-robin over 3
	// nodes, every node serves traffic.
	for i, n := range c.nodes {
		var ops uint64
		n.mu.Lock()
		for _, sh := range n.shards {
			ops += sh.ops.Load()
		}
		n.mu.Unlock()
		if ops == 0 {
			t.Fatalf("node %d served no operations", i)
		}
	}
}

// A reshard must atomically flip routing: a router still holding the
// old map gets a retryable redirect carrying the new one and lands on
// the new owner with one extra hop.
func TestStaleRouterFollowsRedirect(t *testing.T) {
	c := newCluster(t, clusterConfig{nodes: 2, shards: 4})
	ctx := tctx(t, 10*time.Second)
	fresh := c.router()
	stale := c.router() // second client view, about to go stale

	const n = 200
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		if err := fresh.Put(ctx, k, []byte("v1")); err != nil {
			t.Fatal(err)
		}
	}

	// Move shard 0 from its owner to the other node.
	src := c.initial.Owners[0]
	var srcNode *Node
	for _, nd := range c.nodes {
		if nd.Self() == src {
			srcNode = nd
		}
	}
	dst := c.nodes[0].Self()
	if dst == src {
		dst = c.nodes[1].Self()
	}
	if err := srcNode.Reshard(ctx, 0, dst); err != nil {
		t.Fatalf("reshard: %v", err)
	}

	// The stale router still has the epoch-0 map; every key must
	// still resolve, and afterwards its map must be the new epoch.
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		v, err := stale.Get(ctx, k)
		if err != nil {
			t.Fatalf("stale get %d: %v", i, err)
		}
		if string(v) != "v1" {
			t.Fatalf("stale get %d: got %q", i, v)
		}
	}
	if got := stale.Map().Epoch; got != 1 {
		t.Fatalf("stale router map epoch: got %d want 1", got)
	}
	redirects, installs := stale.Stats()
	if redirects == 0 || installs == 0 {
		t.Fatalf("stale router should have absorbed a redirect (redirects=%d installs=%d)", redirects, installs)
	}
	// The old owner redirected rather than served.
	if srcNode.Stats().Redirects == 0 {
		t.Fatal("source node never redirected")
	}
}

// A reshard to a dead destination must fail cleanly and leave the
// source serving everything.
func TestReshardToDeadDestinationAborts(t *testing.T) {
	c := newCluster(t, clusterConfig{nodes: 2, shards: 4, ownerNodes: 1})
	ctx := tctx(t, 10*time.Second)
	r := c.router()
	for i := 0; i < 50; i++ {
		if err := r.Put(ctx, []byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	sctx, cancel := context.WithTimeout(ctx, 1*time.Second)
	defer cancel()
	err := c.nodes[0].Reshard(sctx, 0, Owner{Addr: "sm://nowhere", Provider: testProviderID})
	if err == nil {
		t.Fatal("reshard to dead destination succeeded")
	}
	// Source must still serve all data at the original epoch.
	if got := c.nodes[0].CurrentMap().Epoch; got != 0 {
		t.Fatalf("epoch moved after failed reshard: %d", got)
	}
	for i := 0; i < 50; i++ {
		if _, err := r.Get(ctx, []byte(fmt.Sprintf("k%d", i))); err != nil {
			t.Fatalf("get after failed reshard: %v", err)
		}
	}
}

// The balancer must detect a hot node from the per-shard counters and
// move its hottest shard to a spare via pufferscale, not a hardcoded
// plan.
func TestBalancerMovesHottestShard(t *testing.T) {
	c := newCluster(t, clusterConfig{nodes: 3, shards: 8, ownerNodes: 1})
	ctx := tctx(t, 20*time.Second)
	r := c.router()

	// Drive skewed traffic: every key lands on node 0 (it owns all
	// shards), with shard-skew from repeated hot keys.
	for i := 0; i < 500; i++ {
		k := []byte(fmt.Sprintf("key-%d", i%40))
		if err := r.Put(ctx, k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}

	candidates := []Owner{c.nodes[0].Self(), c.nodes[1].Self(), c.nodes[2].Self()}
	b := NewBalancer(c.client, candidates)
	d, err := b.Step(ctx, r.Map())
	if err != nil {
		t.Fatalf("balancer step: %v", err)
	}
	if d == nil {
		t.Fatal("balancer saw no imbalance with every shard on one node")
	}
	if d.From != c.nodes[0].Self() {
		t.Fatalf("balancer moved from %v, want node 0", d.From)
	}
	if d.To == c.nodes[0].Self() {
		t.Fatal("balancer moved a shard onto the hot node")
	}
	if d.Imbalance <= 1.25 {
		t.Fatalf("reported imbalance %.2f under threshold", d.Imbalance)
	}

	// The flip must be visible and lossless.
	m, err := FetchMap(ctx, c.client, d.To.Addr, d.To.Provider)
	if err != nil {
		t.Fatal(err)
	}
	if m.Epoch != 1 {
		t.Fatalf("epoch after balancer move: %d", m.Epoch)
	}
	if m.Owners[d.Shard] != d.To {
		t.Fatalf("shard %d owned by %v, want %v", d.Shard, m.Owners[d.Shard], d.To)
	}
	for i := 0; i < 40; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		if _, err := r.Get(ctx, k); err != nil {
			t.Fatalf("get %d after move: %v", i, err)
		}
	}
}

// Bootstrap must fetch a usable map from any live node.
func TestBootstrapFromNode(t *testing.T) {
	c := newCluster(t, clusterConfig{nodes: 2, shards: 4})
	ctx := tctx(t, 5*time.Second)
	r, err := Bootstrap(ctx, c.client, []string{"sm://nowhere", c.insts[1].Addr()}, testProviderID)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Put(ctx, []byte("a"), []byte("b")); err != nil {
		t.Fatal(err)
	}
	v, err := r.Get(ctx, []byte("a"))
	if err != nil || string(v) != "b" {
		t.Fatalf("get: %q %v", v, err)
	}
}
