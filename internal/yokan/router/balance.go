package router

import (
	"context"
	"fmt"
	"sort"

	"mochi/internal/codec"
	"mochi/internal/margo"
	"mochi/internal/pufferscale"
)

// Balancer turns per-shard load samples into migrations, driven by
// Pufferscale's heuristic rather than a hardcoded plan: it samples
// every node's shard counters (RPCStats), diffs them against the
// previous sample to estimate load, asks pufferscale.Rebalance for a
// placement over the candidate nodes, and — when the measured
// imbalance crosses the threshold — executes the move of the hottest
// shard through the owner's Reshard RPC.
//
// The balancer is the coordinator the epoch protocol assumes: one
// balancer per keyspace, moving one shard at a time (DESIGN.md §9).
type Balancer struct {
	inst *margo.Instance
	// Candidates are every node that may own shards, including
	// spares that currently own none.
	Candidates []Owner
	// Objectives weight pufferscale's goals; the zero value is
	// balanced thirds.
	Objectives pufferscale.Objectives
	// Threshold is the max/mean load ratio above which a move is
	// worth its cost (default 1.25).
	Threshold float64

	prev map[uint32]uint64 // last cumulative ops sample per shard
}

// NewBalancer creates a balancer for the keyspace served by the
// candidate owners.
func NewBalancer(inst *margo.Instance, candidates []Owner) *Balancer {
	return &Balancer{inst: inst, Candidates: candidates, Threshold: 1.25}
}

// sample fetches per-shard stats from every distinct owner address in
// the map and returns the current cumulative counters.
func (b *Balancer) sample(ctx context.Context, m *Map) (map[uint32]ShardStat, error) {
	owners := map[Owner]bool{}
	for _, o := range m.Owners {
		owners[o] = true
	}
	out := map[uint32]ShardStat{}
	for o := range owners {
		raw, err := b.inst.ForwardProvider(ctx, o.Addr, RPCStats, o.Provider, nil)
		if err != nil {
			return nil, fmt.Errorf("router: stats from %s: %w", o, err)
		}
		var reply statsReply
		if err := codec.Unmarshal(raw, &reply); err != nil {
			return nil, err
		}
		if reply.Status != statusOK {
			return nil, fmt.Errorf("router: stats from %s: %s", o, reply.Err)
		}
		for _, s := range reply.Stats {
			out[s.Shard] = s
		}
	}
	return out, nil
}

// Decision is one planned migration.
type Decision struct {
	Shard uint32
	From  Owner
	To    Owner
	// Imbalance is the measured max/mean load ratio that triggered
	// the move.
	Imbalance float64
}

// Plan samples the cluster and returns the single best move, or nil
// if the load is within Threshold. Load is the delta of each shard's
// op counter since the previous Plan call (the first call primes the
// baseline and reports no move unless byte sizes alone justify one).
func (b *Balancer) Plan(ctx context.Context, m *Map) (*Decision, error) {
	stats, err := b.sample(ctx, m)
	if err != nil {
		return nil, err
	}
	loads := make(map[uint32]float64, len(stats))
	for sid, s := range stats {
		d := s.Ops
		if prev, ok := b.prev[sid]; ok && prev <= s.Ops {
			d = s.Ops - prev
		}
		loads[sid] = float64(d)
	}
	if b.prev == nil {
		b.prev = map[uint32]uint64{}
	}
	for sid, s := range stats {
		b.prev[sid] = s.Ops
	}

	byAddr := map[string]Owner{}
	var nodes []string
	for _, o := range b.Candidates {
		if _, dup := byAddr[o.Addr]; !dup {
			byAddr[o.Addr] = o
			nodes = append(nodes, o.Addr)
		}
	}
	for _, o := range m.Owners {
		if _, dup := byAddr[o.Addr]; !dup {
			byAddr[o.Addr] = o
			nodes = append(nodes, o.Addr)
		}
	}
	sort.Strings(nodes)

	resources := make([]pufferscale.Resource, 0, m.NumShards())
	for s := 0; s < m.NumShards(); s++ {
		st := stats[uint32(s)]
		resources = append(resources, pufferscale.Resource{
			ID:   fmt.Sprintf("shard-%d", s),
			Node: m.Owners[s].Addr,
			Load: loads[uint32(s)],
			Size: float64(st.Bytes),
		})
	}
	// Measure the imbalance of the *current* placement first: a
	// move-averse dry run keeps everything in place and reports the
	// standing max/mean ratio.
	dry, err := pufferscale.Rebalance(resources, nodes, pufferscale.Objectives{WTime: 1})
	if err != nil {
		return nil, err
	}
	threshold := b.Threshold
	if threshold <= 0 {
		threshold = 1.25
	}
	imbalance := dry.LoadImbalance()
	if imbalance <= threshold {
		return nil, nil
	}
	plan, err := pufferscale.Rebalance(resources, nodes, b.Objectives)
	if err != nil {
		return nil, err
	}
	if len(plan.Moves) == 0 {
		return nil, nil
	}
	// One move at a time: pick the hottest shard pufferscale wants
	// relocated.
	best := -1
	var bestLoad float64 = -1
	for i, mv := range plan.Moves {
		var sid uint32
		if _, err := fmt.Sscanf(mv.ResourceID, "shard-%d", &sid); err != nil {
			continue
		}
		if l := loads[sid]; l > bestLoad {
			bestLoad, best = l, i
		}
	}
	if best < 0 {
		return nil, nil
	}
	mv := plan.Moves[best]
	var sid uint32
	fmt.Sscanf(mv.ResourceID, "shard-%d", &sid)
	return &Decision{
		Shard:     sid,
		From:      m.Owners[sid],
		To:        byAddr[mv.To],
		Imbalance: imbalance,
	}, nil
}

// Execute commands the owning node to perform the move.
func (b *Balancer) Execute(ctx context.Context, d *Decision) error {
	e := codec.GetEncoder()
	(&reshardArgs{Shard: d.Shard, Dst: d.To}).MarshalMochi(e)
	raw, err := b.inst.ForwardProvider(ctx, d.From.Addr, RPCReshard, d.From.Provider, e.Bytes())
	codec.PutEncoder(e)
	if err != nil {
		return err
	}
	var reply statusReply
	if err := codec.Unmarshal(raw, &reply); err != nil {
		return err
	}
	if reply.Status != statusOK {
		return fmt.Errorf("router: reshard: %s", reply.Err)
	}
	return nil
}

// Step samples, plans, and executes at most one migration. It
// returns the decision it acted on (nil if the cluster is balanced).
func (b *Balancer) Step(ctx context.Context, m *Map) (*Decision, error) {
	d, err := b.Plan(ctx, m)
	if err != nil || d == nil {
		return nil, err
	}
	if err := b.Execute(ctx, d); err != nil {
		return d, err
	}
	return d, nil
}
