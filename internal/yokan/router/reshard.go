package router

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"mochi/internal/codec"
	"mochi/internal/remi"
)

// snapshotClass is the REMI migration class of shard snapshots.
const snapshotClass = "xkv-shard"

const (
	metaShard = "xkv_shard"
	metaMig   = "xkv_mig"
	metaEpoch = "xkv_epoch"
)

func msDuration(ms int) time.Duration { return time.Duration(ms) * time.Millisecond }

// testHookDualWindow, when non-nil, runs after the snapshot has been
// migrated and before the flip. Tests use it to hold the dual-write
// window open long enough for concurrent traffic to cross it — on a
// small database the window is otherwise a few microseconds wide.
var testHookDualWindow func()

// Reshard moves one shard this node owns to dst, under live traffic,
// without losing an acked write. The protocol (DESIGN.md §9):
//
//  1. prepare: dst opens a staging database for the shard.
//  2. dual-write: every write to the shard keeps applying locally
//     (the source stays authoritative) and is synchronously forwarded
//     to the staging area before it is acked — from here on, any
//     acked write exists on both sides.
//  3. snapshot: the shard is dumped and REMI-migrated to dst, which
//     merges it *under* the staged stream (staged values and
//     tombstones win — they are newer by construction).
//  4. flip: under the shard's write lock (which drains in-flight
//     operations — this is the drain window), the source commits the
//     new map at dst (promote), marks the local shard dropped, and
//     only then publishes the map locally and gossips it. Destination
//     before source: at every instant some node serves the shard, and
//     a redirect chain of length ≤ 2 lands on it.
//
// Any failure before the flip aborts: dst drops the staging area and
// the source reverts to exclusive ownership. Nothing is lost — the
// source applied every acked write locally throughout.
func (n *Node) Reshard(ctx context.Context, shardID uint32, dst Owner) error {
	m := n.cur.Load()
	if m == nil {
		return fmt.Errorf("router: node has no shard map")
	}
	if int(shardID) >= len(m.Owners) {
		return fmt.Errorf("router: shard %d out of range", shardID)
	}
	self := n.Self()
	if m.Owners[shardID] != self {
		return fmt.Errorf("router: shard %d owned by %s, not this node", shardID, m.Owners[shardID])
	}
	if dst == self {
		return fmt.Errorf("router: destination is the current owner")
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return fmt.Errorf("router: node closed")
	}
	sh := n.shards[shardID]
	n.migSeq++
	seq := n.migSeq
	n.mu.Unlock()
	if sh == nil {
		return fmt.Errorf("router: shard %d not resident", shardID)
	}
	// Migration IDs must not collide across sources: derive from the
	// node identity and a local sequence number.
	mig := hashBytes([]byte(fmt.Sprintf("%s/%d/%d", self.Addr, self.Provider, seq)))

	// 1. prepare.
	var prep prepareReply
	if err := n.call(ctx, dst, RPCMigratePrepare, &prepareArgs{Shard: shardID, MigID: mig}, &prep); err != nil {
		return fmt.Errorf("router: prepare: %w", err)
	}
	if prep.Status != statusOK {
		return fmt.Errorf("router: prepare rejected: %s", prep.Err)
	}

	// 2. enter the dual-write window.
	sh.mu.Lock()
	if sh.dropped || sh.mode != modeOwned {
		sh.mu.Unlock()
		n.abortRemote(dst, shardID, mig)
		return fmt.Errorf("router: shard %d already migrating", shardID)
	}
	sh.mode = modeDual
	sh.dualDst = dst
	sh.migID = mig
	sh.abortFlag.Store(false)
	sh.mu.Unlock()

	fail := func(stage string, err error) error {
		n.revertDual(sh, mig)
		n.abortRemote(dst, shardID, mig)
		return fmt.Errorf("router: %s: %w", stage, err)
	}

	// 3. snapshot and REMI-migrate. The snapshot is cut after
	// dual-write is on, so every write it misses is in the staged
	// stream.
	pairs, err := sh.db.ListKeyValues(nil, nil, 0)
	if err != nil {
		return fail("snapshot", err)
	}
	e := codec.NewEncoder(nil)
	e.Uvarint(uint64(len(pairs)))
	for _, kv := range pairs {
		e.BytesField(kv.Key)
		e.BytesField(kv.Value)
	}
	outDir := filepath.Join(n.dir, "out")
	rel := fmt.Sprintf("shard-%d-%d.snap", shardID, mig)
	snapPath := filepath.Join(outDir, rel)
	if err := os.WriteFile(snapPath, e.Bytes(), 0o644); err != nil {
		return fail("snapshot write", err)
	}
	fs, err := remi.BuildFileSet(snapshotClass, outDir, []string{snapPath}, map[string]string{
		metaShard: fmt.Sprintf("%d", shardID),
		metaMig:   fmt.Sprintf("%d", mig),
		metaEpoch: fmt.Sprintf("%d", m.Epoch),
	})
	if err != nil {
		return fail("fileset", err)
	}
	if _, err := n.remiC.Migrate(ctx, dst.Addr, prep.RemiProvider, fs, remi.Options{RemoveSource: true}); err != nil {
		return fail("remi migrate", err)
	}
	if testHookDualWindow != nil {
		testHookDualWindow()
	}

	// 4. flip. The write lock drains in-flight operations (each holds
	// the read lock across its local apply *and* its dual-write
	// forward) and blocks new ones for the promote round-trip, so no
	// write can slip between "dst committed" and "src stopped".
	newMap := n.cur.Load().WithOwner(shardID, dst)
	sh.mu.Lock()
	if sh.abortFlag.Load() || sh.mode != modeDual || sh.migID != mig {
		sh.mu.Unlock()
		n.abortRemote(dst, shardID, mig)
		return fmt.Errorf("router: migration aborted by a failed dual-write")
	}
	var pr statusReply
	perr := n.call(ctx, dst, RPCMigratePromote, &promoteArgs{Shard: shardID, MigID: mig, Map: EncodeMap(newMap)}, &pr)
	if perr == nil && pr.Status != statusOK {
		perr = fmt.Errorf("%s", pr.Err)
	}
	if perr != nil {
		sh.mode = modeOwned
		sh.mu.Unlock()
		n.abortRemote(dst, shardID, mig)
		return fmt.Errorf("router: promote: %w", perr)
	}
	sh.dropped = true
	sh.mu.Unlock()

	n.mu.Lock()
	delete(n.shards, shardID)
	n.mu.Unlock()
	n.installMap(newMap)
	sh.db.Destroy()
	n.reshards.Add(1)

	// 5. gossip the new map: best effort, bounded — anyone missed
	// learns it through a redirect.
	n.disseminate(ctx, newMap)
	return nil
}

// revertDual returns a shard to exclusive local ownership after a
// failed migration attempt.
func (n *Node) revertDual(sh *shard, mig uint64) {
	sh.mu.Lock()
	if sh.mode == modeDual && sh.migID == mig {
		sh.mode = modeOwned
	}
	sh.mu.Unlock()
}

// abortRemote tears down the staging area at dst, best effort.
func (n *Node) abortRemote(dst Owner, shardID uint32, mig uint64) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	var r statusReply
	_ = n.call(ctx, dst, RPCMigrateAbort, &abortArgs{Shard: shardID, MigID: mig}, &r)
}

// disseminate pushes a freshly committed map to the rest of the
// cluster: every distinct owner in the map, plus — when an SSG group
// is attached — every alive member (spare nodes own nothing yet but
// still route and can be a migration destination). The destination
// already installed the map during promote, but a duplicate install
// is a cheap no-op.
func (n *Node) disseminate(ctx context.Context, m *Map) {
	self := n.Self()
	targets := map[Owner]bool{}
	for _, o := range m.Owners {
		if o != self {
			targets[o] = true
		}
	}
	if g := n.opts.Group; g != nil {
		for _, addr := range g.View().Alive() {
			o := Owner{Addr: addr, Provider: n.id}
			if o != self {
				targets[o] = true
			}
		}
	}
	enc := EncodeMap(m)
	for o := range targets {
		ictx, cancel := context.WithTimeout(ctx, 2*time.Second)
		var r statusReply
		_ = n.call(ictx, o, RPCInstallMap, &installArgs{Map: enc}, &r)
		cancel()
	}
}

// parseSnapshotMeta extracts the shard and migration IDs a REMI
// snapshot fileset was stamped with.
func parseSnapshotMeta(meta map[string]string) (shardID uint32, migID uint64, err error) {
	if meta == nil {
		return 0, 0, fmt.Errorf("router: snapshot without metadata")
	}
	var s, m uint64
	if _, err := fmt.Sscanf(meta[metaShard], "%d", &s); err != nil {
		return 0, 0, fmt.Errorf("router: bad shard metadata %q", meta[metaShard])
	}
	if _, err := fmt.Sscanf(meta[metaMig], "%d", &m); err != nil {
		return 0, 0, fmt.Errorf("router: bad migration metadata %q", meta[metaMig])
	}
	return uint32(s), m, nil
}
