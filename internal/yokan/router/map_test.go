package router

import (
	"fmt"
	"testing"

	"mochi/internal/codec"
)

func testOwners(n int) []Owner {
	out := make([]Owner, n)
	for i := range out {
		out[i] = Owner{Addr: fmt.Sprintf("sm://node-%d", i), Provider: 9}
	}
	return out
}

// Ring assignment must be a pure function of (shard count, vnode
// density): serializing and re-decoding a map — or changing owners —
// must never move a key to a different shard. This is the property
// the whole migration protocol leans on: a reshard moves ownership,
// never hash placement.
func TestRingStableAcrossReserialization(t *testing.T) {
	m, err := NewMap(16, testOwners(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeMap(EncodeMap(m))
	if err != nil {
		t.Fatal(err)
	}
	// And once more through a WithOwner derivation + round-trip.
	moved := m.WithOwner(3, Owner{Addr: "sm://node-9", Provider: 9})
	dec2, err := DecodeMap(EncodeMap(moved))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		want := m.ShardOf(key)
		if got := dec.ShardOf(key); got != want {
			t.Fatalf("key %q: shard %d after round-trip, %d before", key, got, want)
		}
		if got := moved.ShardOf(key); got != want {
			t.Fatalf("key %q: shard moved by WithOwner: %d != %d", key, got, want)
		}
		if got := dec2.ShardOf(key); got != want {
			t.Fatalf("key %q: shard %d after WithOwner round-trip, %d before", key, got, want)
		}
	}
}

func TestMapRoundTripFields(t *testing.T) {
	m, err := NewMap(8, testOwners(3), 64)
	if err != nil {
		t.Fatal(err)
	}
	moved := m.WithOwner(5, Owner{Addr: "sm://spare", Provider: 11})
	if moved.Epoch != m.Epoch+1 {
		t.Fatalf("epoch: got %d want %d", moved.Epoch, m.Epoch+1)
	}
	dec, err := DecodeMap(EncodeMap(moved))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Epoch != moved.Epoch || dec.VNodes != moved.VNodes || len(dec.Owners) != len(moved.Owners) {
		t.Fatalf("header mismatch: %+v vs %+v", dec, moved)
	}
	for i := range dec.Owners {
		if dec.Owners[i] != moved.Owners[i] {
			t.Fatalf("owner %d: %v != %v", i, dec.Owners[i], moved.Owners[i])
		}
	}
	if dec.Owners[5].Addr != "sm://spare" {
		t.Fatalf("WithOwner not applied: %v", dec.Owners[5])
	}
}

func TestMapShardSpread(t *testing.T) {
	m, err := NewMap(8, testOwners(2), 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 8)
	for i := 0; i < 20000; i++ {
		counts[m.ShardOf([]byte(fmt.Sprintf("key-%d", i)))]++
	}
	for s, c := range counts {
		if c == 0 {
			t.Fatalf("shard %d received no keys", s)
		}
	}
}

func TestDecodeMapRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{1, 2, 3},
	}
	// Out-of-range headers: vnodes or shard count beyond bounds.
	e := codec.NewEncoder(nil)
	e.Uint64(1)
	e.Uvarint(uint64(MaxVNodes + 1))
	e.Uvarint(1)
	cases = append(cases, append([]byte(nil), e.Bytes()...))
	e.Reset()
	e.Uint64(1)
	e.Uvarint(1)
	e.Uvarint(uint64(MaxShards + 1))
	cases = append(cases, append([]byte(nil), e.Bytes()...))
	for i, b := range cases {
		if _, err := DecodeMap(b); err == nil {
			t.Fatalf("case %d: garbage decoded successfully", i)
		}
	}
}
