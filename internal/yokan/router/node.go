package router

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"mochi/internal/codec"
	"mochi/internal/margo"
	"mochi/internal/mercury"
	"mochi/internal/remi"
	"mochi/internal/ssg"
	"mochi/internal/yokan"
)

// Shard modes. Owned is the steady state. Dual is the migration
// window: the source stays authoritative (every write applies locally
// first) but forwards each write to the destination's staging area
// before acking, so an acked write exists on both sides whichever way
// the migration ends.
const (
	modeOwned = iota
	modeDual
)

// shard is one locally resident shard.
type shard struct {
	id uint32
	db yokan.Database

	// mu is the reconfiguration fence: every data operation holds it
	// for read, the flip holds it for write. Acquiring the write lock
	// therefore *is* the drain — it waits out in-flight operations
	// (including their dual-write forwards) and blocks new ones for
	// the one RTT the promote takes.
	mu      sync.RWMutex
	mode    int
	dualDst Owner
	migID   uint64
	dropped bool // shard moved away; set before removal from the table

	// abortFlag is set by a data operation whose dual-write forward
	// failed (it cannot take mu for write — it holds it for read), and
	// checked by the flip under the write lock: a failed forward
	// always either aborts the migration or is observed before the
	// flip commits.
	abortFlag atomic.Bool
	// stageSeq numbers the dual-write stream (see stageArgs.Seq).
	stageSeq atomic.Uint64

	ops   atomic.Uint64 // cumulative data operations (load signal)
	bytes atomic.Int64  // approximate resident bytes (data signal)
}

// staging is an in-flight incoming shard on the destination.
type staging struct {
	migID uint64
	mu    sync.Mutex
	db    yokan.Database
	// tombstones records keys erased through the dual-write stream
	// before the snapshot arrived, so the merge cannot resurrect
	// them: the snapshot is older than any staged operation.
	tombstones map[string]struct{}
	// lastSeq records the highest stage sequence applied per key, so
	// delayed duplicates of older writes cannot clobber newer ones.
	lastSeq map[string]uint64
	merged  bool
}

// Options configures a Node.
type Options struct {
	// ProviderID is the router provider's ID. All nodes of one
	// sharded keyspace must use the same ID (the way bedrock names a
	// provider consistently across processes); map dissemination to
	// SSG members that own no shard yet relies on it.
	ProviderID uint16
	// RemiProviderID is the REMI provider receiving shard snapshots
	// (0 = ProviderID+1).
	RemiProviderID uint16
	// Backend templates each shard's database. The "log" backend
	// gets a per-shard path under Dir. Stripe count defaults to 1:
	// shards are already the unit of parallelism here.
	Backend yokan.Config
	// Dir is the node's scratch root (snapshots, incoming REMI
	// files, log-backend shards). Empty = a fresh temp directory.
	Dir string
	// Group, when set, is the SSG group used to disseminate new maps
	// after a flip.
	Group *ssg.Group
	// StageTimeoutMS bounds one dual-write forward (0 = 2000).
	StageTimeoutMS int
}

// Node serves a slice of the sharded keyspace: it owns some shards'
// databases, redirects traffic for the rest, and implements both ends
// of the migration protocol.
type Node struct {
	inst *margo.Instance
	id   uint16
	opts Options
	dir  string

	remiP *remi.Provider
	remiC *remi.Client

	cur atomic.Pointer[Map]

	mu       sync.Mutex // guards shards, incoming, migSeq, closed
	shards   map[uint32]*shard
	incoming map[uint32]*staging
	migSeq   uint64
	closed   bool

	// Counters exposed through NodeStats.
	redirects  atomic.Uint64
	dualWrites atomic.Uint64
	reshards   atomic.Uint64
}

var routerRPCs = []string{
	RPCPut, RPCGet, RPCErase, RPCExists, RPCCount,
	RPCFetchMap, RPCInstallMap, RPCStats, RPCReshard,
	RPCMigratePrepare, RPCMigrateStage, RPCMigratePromote, RPCMigrateAbort,
}

// NewNode creates a router node. It owns no shards until a map is
// adopted (Adopt or a bootstrap install RPC) or a migration promotes
// one onto it.
func NewNode(inst *margo.Instance, opts Options) (*Node, error) {
	if opts.RemiProviderID == 0 {
		opts.RemiProviderID = opts.ProviderID + 1
	}
	dir := opts.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "xkv-node-")
		if err != nil {
			return nil, err
		}
	}
	if err := os.MkdirAll(filepath.Join(dir, "out"), 0o755); err != nil {
		return nil, err
	}
	n := &Node{
		inst:     inst,
		id:       opts.ProviderID,
		opts:     opts,
		dir:      dir,
		shards:   map[uint32]*shard{},
		incoming: map[uint32]*staging{},
	}
	rp, err := remi.NewProvider(inst, opts.RemiProviderID, nil, filepath.Join(dir, "in"))
	if err != nil {
		return nil, err
	}
	rp.OnMigrated(n.receiveSnapshot)
	n.remiP = rp
	n.remiC = remi.NewClient(inst)
	if err := n.register(); err != nil {
		rp.Close()
		return nil, err
	}
	return n, nil
}

func (n *Node) register() error {
	type h struct {
		name string
		fn   margo.Handler
	}
	handlers := []h{
		{RPCPut, n.handlePut},
		{RPCGet, n.handleGet},
		{RPCErase, n.handleErase},
		{RPCExists, n.handleExists},
		{RPCCount, n.handleCount},
		{RPCFetchMap, n.handleFetchMap},
		{RPCInstallMap, n.handleInstallMap},
		{RPCStats, n.handleStats},
		{RPCReshard, n.handleReshard},
		{RPCMigratePrepare, n.handlePrepare},
		{RPCMigrateStage, n.handleStage},
		{RPCMigratePromote, n.handlePromote},
		{RPCMigrateAbort, n.handleAbort},
	}
	for i, hh := range handlers {
		if _, err := n.inst.RegisterProvider(hh.name, n.id, nil, hh.fn); err != nil {
			for j := 0; j < i; j++ {
				n.inst.DeregisterProvider(handlers[j].name, n.id)
			}
			return err
		}
	}
	return nil
}

// Self returns this node's owner identity.
func (n *Node) Self() Owner { return Owner{Addr: n.inst.Addr(), Provider: n.id} }

// CurrentMap returns the node's view of the shard map (nil before
// bootstrap).
func (n *Node) CurrentMap() *Map { return n.cur.Load() }

// NodeStats reports the node's reconfiguration counters.
type NodeStats struct {
	Redirects  uint64
	DualWrites uint64
	Reshards   uint64
}

// Stats returns reconfiguration counters.
func (n *Node) Stats() NodeStats {
	return NodeStats{
		Redirects:  n.redirects.Load(),
		DualWrites: n.dualWrites.Load(),
		Reshards:   n.reshards.Load(),
	}
}

// Adopt installs m as the node's initial map and opens empty
// databases for the shards it assigns to this node. It is the
// programmatic form of a bootstrap install RPC and is only legal
// before any map is set.
func (n *Node) Adopt(m *Map) error {
	return n.bootstrap(m)
}

func (n *Node) bootstrap(m *Map) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return yokan.ErrClosed
	}
	if n.cur.Load() != nil {
		return fmt.Errorf("router: node already has a map")
	}
	self := n.Self()
	for s, o := range m.Owners {
		if o != self {
			continue
		}
		db, err := n.openShardDB(uint32(s))
		if err != nil {
			return err
		}
		n.shards[uint32(s)] = &shard{id: uint32(s), db: db}
	}
	n.cur.Store(m)
	return nil
}

func (n *Node) openShardDB(shardID uint32) (yokan.Database, error) {
	cfg := n.opts.Backend
	if cfg.Type == "" {
		cfg.Type = "map"
	}
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.Type == "log" {
		cfg.Path = filepath.Join(n.dir, fmt.Sprintf("shard-%04d.log", shardID))
	}
	return yokan.Open(cfg)
}

// installMap publishes m if it is newer than the current map.
func (n *Node) installMap(m *Map) bool {
	for {
		cur := n.cur.Load()
		if cur != nil && cur.Epoch >= m.Epoch {
			return false
		}
		if n.cur.CompareAndSwap(cur, m) {
			return true
		}
	}
}

// Close deregisters the node and releases its databases.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	shards := n.shards
	incoming := n.incoming
	n.shards = map[uint32]*shard{}
	n.incoming = map[uint32]*staging{}
	n.mu.Unlock()
	for _, name := range routerRPCs {
		n.inst.DeregisterProvider(name, n.id)
	}
	n.remiP.Close()
	for _, sh := range shards {
		sh.mu.Lock()
		sh.dropped = true
		sh.db.Close()
		sh.mu.Unlock()
	}
	for _, inc := range incoming {
		inc.mu.Lock()
		inc.db.Close()
		inc.mu.Unlock()
	}
	return nil
}

func respondReply(h *mercury.Handle, reply codec.Marshaler) {
	e := codec.GetEncoder()
	reply.MarshalMochi(e)
	_ = h.Respond(e.Bytes())
	codec.PutEncoder(e)
}

// lookupShard resolves the target shard for a data operation. nil
// means the caller must redirect (reply already prepared).
func (n *Node) lookupShard(shardID uint32) *shard {
	n.mu.Lock()
	sh := n.shards[shardID]
	n.mu.Unlock()
	return sh
}

// redirect fills an opReply for a shard this node does not serve:
// statusStale plus our current map if we have one (the retryable
// redirect carrying the new map), statusRetry if we believe we *are*
// the owner but the shard is not resident yet (bootstrap or flip
// races — transient), statusError if the node has no map at all.
func (n *Node) redirect(shardID uint32, r *opReply) {
	m := n.cur.Load()
	if m == nil {
		r.Status = statusError
		r.Err = "router: node has no shard map"
		return
	}
	if int(shardID) < len(m.Owners) && m.Owners[shardID] == n.Self() {
		r.Status = statusRetry
		r.Err = "router: shard arriving"
		return
	}
	n.redirects.Add(1)
	r.Status = statusStale
	r.Map = EncodeMap(m)
}

func statusFromErr(err error) (uint8, string) {
	switch {
	case err == nil:
		return statusOK, ""
	case yokan.IsNotFound(err):
		return statusNotFound, ""
	default:
		return statusError, err.Error()
	}
}

// dualForward ships one applied write to the destination's staging
// area and acks only on success; a failure marks the migration
// aborted so the flip can never commit without this write.
// Called with sh.mu held for read.
func (n *Node) dualForward(ctx context.Context, sh *shard, erase bool, keys [][]byte, pairs []yokan.KeyValue) {
	n.dualWrites.Add(1)
	args := &stageArgs{Shard: sh.id, MigID: sh.migID, Seq: sh.stageSeq.Add(1), Erase: erase, Keys: keys, Pairs: pairs}
	stageTimeout := n.opts.StageTimeoutMS
	if stageTimeout <= 0 {
		stageTimeout = 2000
	}
	sctx, cancel := context.WithTimeout(ctx, msDuration(stageTimeout))
	defer cancel()
	var reply statusReply
	err := n.call(sctx, sh.dualDst, RPCMigrateStage, args, &reply)
	if err == nil && reply.Status != statusOK {
		err = fmt.Errorf("router: stage rejected: %s", reply.Err)
	}
	if err != nil {
		// The write is applied locally (the source stays
		// authoritative), so the safe resolution is to abort the
		// migration, not the write.
		sh.abortFlag.Store(true)
		go n.abortRemote(sh.dualDst, sh.id, sh.migID)
	}
}

// handlePut applies a put to the local shard, dual-forwarding it
// during a migration window.
func (n *Node) handlePut(ctx context.Context, h *mercury.Handle) {
	var args opArgs
	var r opReply
	if err := codec.Unmarshal(h.Input(), &args); err != nil {
		r.Status, r.Err = statusError, err.Error()
		respondReply(h, &r)
		return
	}
	sh := n.lookupShard(args.Shard)
	if sh == nil {
		n.redirect(args.Shard, &r)
		respondReply(h, &r)
		return
	}
	sh.mu.RLock()
	if sh.dropped {
		sh.mu.RUnlock()
		n.redirect(args.Shard, &r)
		respondReply(h, &r)
		return
	}
	var err error
	var delta int64
	for _, kv := range args.Pairs {
		if err = sh.db.Put(kv.Key, kv.Value); err != nil {
			break
		}
		delta += int64(len(kv.Key) + len(kv.Value))
	}
	if err == nil && sh.mode == modeDual {
		n.dualForward(ctx, sh, false, nil, args.Pairs)
	}
	sh.ops.Add(1)
	sh.bytes.Add(delta)
	sh.mu.RUnlock()
	r.Status, r.Err = statusFromErr(err)
	respondReply(h, &r)
}

// handleErase removes a key, dual-forwarding the erase during a
// migration window (the staging side records a tombstone).
func (n *Node) handleErase(ctx context.Context, h *mercury.Handle) {
	var args opArgs
	var r opReply
	if err := codec.Unmarshal(h.Input(), &args); err != nil {
		r.Status, r.Err = statusError, err.Error()
		respondReply(h, &r)
		return
	}
	sh := n.lookupShard(args.Shard)
	if sh == nil {
		n.redirect(args.Shard, &r)
		respondReply(h, &r)
		return
	}
	sh.mu.RLock()
	if sh.dropped {
		sh.mu.RUnlock()
		n.redirect(args.Shard, &r)
		respondReply(h, &r)
		return
	}
	var err error
	for _, k := range args.Keys {
		if err = sh.db.Erase(k); err != nil {
			break
		}
	}
	// Forward even a not-found erase: a concurrent snapshot merge
	// could otherwise resurrect a key this node already dropped.
	if (err == nil || yokan.IsNotFound(err)) && sh.mode == modeDual {
		n.dualForward(ctx, sh, true, args.Keys, nil)
	}
	sh.ops.Add(1)
	sh.mu.RUnlock()
	r.Status, r.Err = statusFromErr(err)
	respondReply(h, &r)
}

func (n *Node) handleGet(_ context.Context, h *mercury.Handle) {
	var args opArgs
	var r opReply
	if err := codec.Unmarshal(h.Input(), &args); err != nil {
		r.Status, r.Err = statusError, err.Error()
		respondReply(h, &r)
		return
	}
	sh := n.lookupShard(args.Shard)
	if sh == nil {
		n.redirect(args.Shard, &r)
		respondReply(h, &r)
		return
	}
	sh.mu.RLock()
	if sh.dropped {
		sh.mu.RUnlock()
		n.redirect(args.Shard, &r)
		respondReply(h, &r)
		return
	}
	var v []byte
	var err error
	if len(args.Keys) == 1 {
		v, err = sh.db.Get(args.Keys[0])
	} else {
		err = fmt.Errorf("router: get wants exactly one key")
	}
	sh.ops.Add(1)
	sh.mu.RUnlock()
	r.Status, r.Err = statusFromErr(err)
	r.Value = v
	respondReply(h, &r)
}

func (n *Node) handleExists(_ context.Context, h *mercury.Handle) {
	var args opArgs
	var r opReply
	if err := codec.Unmarshal(h.Input(), &args); err != nil {
		r.Status, r.Err = statusError, err.Error()
		respondReply(h, &r)
		return
	}
	sh := n.lookupShard(args.Shard)
	if sh == nil {
		n.redirect(args.Shard, &r)
		respondReply(h, &r)
		return
	}
	sh.mu.RLock()
	if sh.dropped {
		sh.mu.RUnlock()
		n.redirect(args.Shard, &r)
		respondReply(h, &r)
		return
	}
	var found bool
	var err error
	if len(args.Keys) == 1 {
		found, err = sh.db.Exists(args.Keys[0])
	} else {
		err = fmt.Errorf("router: exists wants exactly one key")
	}
	sh.ops.Add(1)
	sh.mu.RUnlock()
	r.Status, r.Err = statusFromErr(err)
	r.Found = found
	respondReply(h, &r)
}

func (n *Node) handleCount(_ context.Context, h *mercury.Handle) {
	var args opArgs
	var r opReply
	if err := codec.Unmarshal(h.Input(), &args); err != nil {
		r.Status, r.Err = statusError, err.Error()
		respondReply(h, &r)
		return
	}
	sh := n.lookupShard(args.Shard)
	if sh == nil {
		n.redirect(args.Shard, &r)
		respondReply(h, &r)
		return
	}
	sh.mu.RLock()
	if sh.dropped {
		sh.mu.RUnlock()
		n.redirect(args.Shard, &r)
		respondReply(h, &r)
		return
	}
	c, err := sh.db.Count()
	sh.mu.RUnlock()
	r.Status, r.Err = statusFromErr(err)
	r.Count = uint64(c)
	respondReply(h, &r)
}

func (n *Node) handleFetchMap(_ context.Context, h *mercury.Handle) {
	var r mapReply
	if m := n.cur.Load(); m != nil {
		r.Map = EncodeMap(m)
	} else {
		r.Status = statusError
		r.Err = "router: node has no shard map"
	}
	respondReply(h, &r)
}

func (n *Node) handleInstallMap(_ context.Context, h *mercury.Handle) {
	var args installArgs
	var r statusReply
	if err := codec.Unmarshal(h.Input(), &args); err != nil {
		r.Status, r.Err = statusError, err.Error()
		respondReply(h, &r)
		return
	}
	m, err := DecodeMap(args.Map)
	if err != nil {
		r.Status, r.Err = statusError, err.Error()
		respondReply(h, &r)
		return
	}
	if args.Bootstrap {
		if err := n.bootstrap(m); err != nil {
			r.Status, r.Err = statusError, err.Error()
		}
	} else {
		n.installMap(m)
	}
	respondReply(h, &r)
}

func (n *Node) handleStats(_ context.Context, h *mercury.Handle) {
	var r statsReply
	if m := n.cur.Load(); m != nil {
		r.Epoch = m.Epoch
	}
	n.mu.Lock()
	for _, sh := range n.shards {
		b := sh.bytes.Load()
		if b < 0 {
			b = 0
		}
		r.Stats = append(r.Stats, ShardStat{Shard: sh.id, Ops: sh.ops.Load(), Bytes: uint64(b)})
	}
	n.mu.Unlock()
	respondReply(h, &r)
}

// handleReshard lets a remote coordinator (the balancer) command
// this node to move one of its shards.
func (n *Node) handleReshard(ctx context.Context, h *mercury.Handle) {
	var args reshardArgs
	var r statusReply
	if err := codec.Unmarshal(h.Input(), &args); err != nil {
		r.Status, r.Err = statusError, err.Error()
		respondReply(h, &r)
		return
	}
	if err := n.Reshard(ctx, args.Shard, args.Dst); err != nil {
		r.Status, r.Err = statusError, err.Error()
	}
	respondReply(h, &r)
}

// handlePrepare opens a staging area for an incoming shard.
func (n *Node) handlePrepare(_ context.Context, h *mercury.Handle) {
	var args prepareArgs
	r := prepareReply{RemiProvider: n.opts.RemiProviderID}
	if err := codec.Unmarshal(h.Input(), &args); err != nil {
		r.Status, r.Err = statusError, err.Error()
		respondReply(h, &r)
		return
	}
	n.mu.Lock()
	defer func() {
		n.mu.Unlock()
		respondReply(h, &r)
	}()
	if n.closed {
		r.Status, r.Err = statusError, "router: node closed"
		return
	}
	if _, own := n.shards[args.Shard]; own {
		r.Status, r.Err = statusError, "router: destination already owns shard"
		return
	}
	if inc := n.incoming[args.Shard]; inc != nil {
		if inc.migID == args.MigID {
			return // duplicate prepare: idempotent
		}
		r.Status, r.Err = statusError, "router: shard already staging under another migration"
		return
	}
	db, err := n.openShardDB(args.Shard)
	if err != nil {
		r.Status, r.Err = statusError, err.Error()
		return
	}
	n.incoming[args.Shard] = &staging{
		migID:      args.MigID,
		db:         db,
		tombstones: map[string]struct{}{},
		lastSeq:    map[string]uint64{},
	}
}

// handleStage applies one dual-written operation to the staging area.
// A stage arriving after the migration promoted is always a
// transport-level duplicate whose reply nobody awaits: each forward
// runs under the shard's read lock, the flip runs under its write
// lock, so every forward the source acted on completed before the
// promote was issued. Rejecting late arrivals (rather than applying
// them to the now-owned shard) is what keeps a chaos-delayed
// duplicate of an *older* write from clobbering a newer one.
func (n *Node) handleStage(_ context.Context, h *mercury.Handle) {
	var args stageArgs
	var r statusReply
	if err := codec.Unmarshal(h.Input(), &args); err != nil {
		r.Status, r.Err = statusError, err.Error()
		respondReply(h, &r)
		return
	}
	n.mu.Lock()
	inc := n.incoming[args.Shard]
	if inc != nil && inc.migID != args.MigID {
		inc = nil
	}
	n.mu.Unlock()
	if inc == nil {
		r.Status, r.Err = statusError, "router: no such migration"
		respondReply(h, &r)
		return
	}
	inc.mu.Lock()
	err := applyStaged(inc, &args)
	inc.mu.Unlock()
	r.Status, r.Err = statusFromErr(err)
	respondReply(h, &r)
}

// applyStaged applies one dual-written operation to a staging area.
// Per-key sequence gating makes application idempotent *and*
// order-insensitive: at-least-once transports can deliver a duplicate
// of an older operation after a newer one, and replaying it blindly
// would silently roll the key back. Called with inc.mu held.
func applyStaged(inc *staging, args *stageArgs) error {
	if args.Erase {
		for _, k := range args.Keys {
			if args.Seq <= inc.lastSeq[string(k)] {
				continue // duplicate of an operation already superseded
			}
			inc.lastSeq[string(k)] = args.Seq
			if !inc.merged {
				inc.tombstones[string(k)] = struct{}{}
			}
			if err := inc.db.Erase(k); err != nil && !yokan.IsNotFound(err) {
				return err
			}
		}
		return nil
	}
	for _, kv := range args.Pairs {
		if args.Seq <= inc.lastSeq[string(kv.Key)] {
			continue
		}
		inc.lastSeq[string(kv.Key)] = args.Seq
		if !inc.merged {
			// A later staged erase must still win over this put's
			// tombstone shadow.
			delete(inc.tombstones, string(kv.Key))
		}
		if err := inc.db.Put(kv.Key, kv.Value); err != nil {
			return err
		}
	}
	return nil
}

// handlePromote commits the flip on the destination: the staging area
// becomes the owned shard, and the attached map (which names this
// node the owner) becomes current *before* the source stops serving —
// the ordering that makes the redirect chain always land.
func (n *Node) handlePromote(_ context.Context, h *mercury.Handle) {
	var args promoteArgs
	var r statusReply
	if err := codec.Unmarshal(h.Input(), &args); err != nil {
		r.Status, r.Err = statusError, err.Error()
		respondReply(h, &r)
		return
	}
	m, err := DecodeMap(args.Map)
	if err != nil {
		r.Status, r.Err = statusError, err.Error()
		respondReply(h, &r)
		return
	}
	n.mu.Lock()
	if sh := n.shards[args.Shard]; sh != nil && sh.migID == args.MigID {
		// Duplicate promote (retried RPC): already committed.
		n.mu.Unlock()
		n.installMap(m)
		respondReply(h, &r)
		return
	}
	inc := n.incoming[args.Shard]
	if inc == nil || inc.migID != args.MigID {
		n.mu.Unlock()
		r.Status, r.Err = statusError, "router: no such migration"
		respondReply(h, &r)
		return
	}
	inc.mu.Lock()
	merged := inc.merged
	inc.mu.Unlock()
	if !merged {
		n.mu.Unlock()
		r.Status, r.Err = statusError, "router: snapshot not merged"
		respondReply(h, &r)
		return
	}
	delete(n.incoming, args.Shard)
	n.shards[args.Shard] = &shard{id: args.Shard, db: inc.db, migID: args.MigID}
	n.mu.Unlock()
	n.installMap(m)
	respondReply(h, &r)
}

// handleAbort tears down a staging area after a failed migration.
func (n *Node) handleAbort(_ context.Context, h *mercury.Handle) {
	var args abortArgs
	var r statusReply
	if err := codec.Unmarshal(h.Input(), &args); err != nil {
		r.Status, r.Err = statusError, err.Error()
		respondReply(h, &r)
		return
	}
	n.mu.Lock()
	inc := n.incoming[args.Shard]
	if inc != nil && inc.migID == args.MigID {
		delete(n.incoming, args.Shard)
	} else {
		inc = nil
	}
	n.mu.Unlock()
	if inc != nil {
		inc.mu.Lock()
		inc.db.Destroy()
		inc.mu.Unlock()
	}
	respondReply(h, &r)
}

// receiveSnapshot is the REMI arrival callback: it merges a shard
// snapshot into the staging area. Staged operations are newer than
// the snapshot by construction (dual-write starts before the snapshot
// is cut), so the merge only fills keys the stream has not touched:
// tombstoned keys stay dead, staged values win.
func (n *Node) receiveSnapshot(fs *remi.FileSet) {
	if fs.Class != snapshotClass || len(fs.Files) == 0 {
		return
	}
	shardID, migID, err := parseSnapshotMeta(fs.Metadata)
	if err != nil {
		return
	}
	n.mu.Lock()
	inc := n.incoming[shardID]
	if inc == nil || inc.migID != migID {
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()
	path := filepath.Join(fs.Root, fs.Files[0].RelPath)
	data, err := os.ReadFile(path)
	if err != nil {
		return
	}
	inc.mu.Lock()
	defer inc.mu.Unlock()
	if inc.merged {
		return // duplicate delivery
	}
	if err := mergeSnapshot(inc, data); err != nil {
		return // leaves merged=false: promote will refuse, source aborts
	}
	inc.merged = true
	inc.tombstones = nil
	os.Remove(path)
}

// mergeSnapshot decodes an encoded shard snapshot into the staging
// database, skipping keys the dual-write stream already decided.
func mergeSnapshot(inc *staging, data []byte) error {
	d := codec.NewDecoder(data)
	count := d.Uvarint()
	if count > uint64(d.Remaining())+1 {
		return fmt.Errorf("router: corrupt snapshot header")
	}
	for i := uint64(0); i < count; i++ {
		k := d.BytesField()
		v := d.BytesField()
		if d.Err() != nil {
			return d.Err()
		}
		if _, dead := inc.tombstones[string(k)]; dead {
			continue
		}
		if ok, err := inc.db.Exists(k); err != nil {
			return err
		} else if ok {
			continue // staged write is newer than the snapshot
		}
		if err := inc.db.Put(k, v); err != nil {
			return err
		}
	}
	return d.Finish()
}

// call forwards a marshaled request to (owner, rpc) and decodes the
// reply into out.
func (n *Node) call(ctx context.Context, dst Owner, rpc string, args codec.Marshaler, out codec.Unmarshaler) error {
	e := codec.GetEncoder()
	if args != nil {
		args.MarshalMochi(e)
	}
	raw, err := n.inst.ForwardProvider(ctx, dst.Addr, rpc, dst.Provider, e.Bytes())
	codec.PutEncoder(e)
	if err != nil {
		return err
	}
	return codec.Unmarshal(raw, out)
}
