package router

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"mochi/internal/mercury"
	"mochi/internal/resilience"
	"mochi/internal/yokan"
)

// TestReshardUnderLiveTraffic migrates a shard while writers hammer
// the keyspace and verifies the invariant the dual-write window
// exists for: every write acked before, during, or after the move is
// present afterwards.
func TestReshardUnderLiveTraffic(t *testing.T) {
	c := newCluster(t, clusterConfig{nodes: 3, shards: 8, ownerNodes: 2})
	ctx := tctx(t, 30*time.Second)

	// Hold each migration's dual-write window open for a few
	// milliseconds: on an idle in-process fabric the whole
	// prepare→flip sequence is microseconds wide, and whether a
	// concurrent write lands inside it would be a scheduler
	// coin-flip. The hook runs between the snapshot transfer and the
	// flip, exactly where live writes must dual-forward to survive.
	testHookDualWindow = func() { time.Sleep(5 * time.Millisecond) }
	t.Cleanup(func() { testHookDualWindow = nil })

	// Ballast gives each shard's snapshot real width.
	const ballast = 4000
	pre := c.router()
	for i := 0; i < ballast; i++ {
		k := fmt.Sprintf("pre-%d", i)
		if err := pre.Put(ctx, []byte(k), []byte(fmt.Sprintf("ballast-%d", i))); err != nil {
			t.Fatalf("preload %s: %v", k, err)
		}
	}

	const workers = 4
	var (
		stop    = make(chan struct{})
		wg      sync.WaitGroup
		ledgers = make([]map[string]string, workers)
		werrs   = make([]error, workers)
	)
	for w := 0; w < workers; w++ {
		ledgers[w] = map[string]string{}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := c.router()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("w%d-k%d", w, rng.Intn(400))
				val := fmt.Sprintf("w%d-v%d", w, i)
				if err := r.Put(ctx, []byte(key), []byte(val)); err != nil {
					werrs[w] = fmt.Errorf("put %s: %w", key, err)
					return
				}
				ledgers[w][key] = val
			}
		}(w)
	}

	// Let traffic build, then move every shard owned by node 0 to
	// node 2 (the spare), one at a time, mid-run.
	time.Sleep(50 * time.Millisecond)
	moved := 0
	for s := 0; s < 8; s++ {
		m := c.nodes[0].CurrentMap()
		if m.Owners[s] != c.nodes[0].Self() {
			continue
		}
		if err := c.nodes[0].Reshard(ctx, uint32(s), c.nodes[2].Self()); err != nil {
			t.Fatalf("reshard shard %d: %v", s, err)
		}
		moved++
	}
	if moved == 0 {
		t.Fatal("node 0 owned nothing to move")
	}
	dualWrites := func() uint64 {
		var total uint64
		for _, nd := range c.nodes {
			total += nd.Stats().DualWrites
		}
		return total
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	for w, err := range werrs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}

	// Every acked write must be readable through a fresh router, at
	// its last acked value — the ballast included.
	r := c.router()
	total := 0
	for w := 0; w < workers; w++ {
		for k, want := range ledgers[w] {
			v, err := r.Get(ctx, []byte(k))
			if err != nil {
				t.Fatalf("lost acked write %q: %v", k, err)
			}
			if string(v) != want {
				t.Fatalf("key %q: got %q want %q", k, v, want)
			}
			total++
		}
	}
	for i := 0; i < ballast; i++ {
		k := fmt.Sprintf("pre-%d", i)
		v, err := r.Get(ctx, []byte(k))
		if err != nil {
			t.Fatalf("lost ballast key %q: %v", k, err)
		}
		if want := fmt.Sprintf("ballast-%d", i); string(v) != want {
			t.Fatalf("ballast key %q: got %q want %q", k, v, want)
		}
	}
	if got, err := r.Count(ctx); err != nil || got != total+ballast {
		t.Fatalf("count: got %d (%v), want %d", got, err, total+ballast)
	}
	if dualWrites() == 0 {
		t.Fatal("no write crossed the dual-write window; the test raced past the migration")
	}
	// Node 0 must have released everything it moved.
	c.nodes[0].mu.Lock()
	left := len(c.nodes[0].shards)
	c.nodes[0].mu.Unlock()
	if left != 0 {
		t.Fatalf("node 0 still holds %d shards", left)
	}
}

// soakMS returns the chaos soak duration: short by default so the
// tier-1 `go test ./...` stays fast, longer in the CI reshard-soak
// job via RESHARD_SOAK_MS.
func soakMS() int {
	if v := os.Getenv("RESHARD_SOAK_MS"); v != "" {
		if ms, err := strconv.Atoi(v); err == nil && ms > 0 {
			return ms
		}
	}
	return 1200
}

// TestReshardSoakChaos is the CI reconfiguration soak: seeded
// ChaosTransport loss, duplication, and delay on every link while
// shards migrate between three nodes under live traffic. The
// invariant gated on every PR: acked writes are never lost across a
// routing flip. Workers retry each operation until it is definitively
// acked (retries make puts idempotent and a not-found erase counts as
// erased), so the final ledger is exact.
func TestReshardSoakChaos(t *testing.T) {
	res := &resilience.Config{
		MaxAttempts:      6,
		BaseBackoffMS:    2,
		MaxBackoffMS:     50,
		AttemptTimeoutMS: 250,
	}
	c := newCluster(t, clusterConfig{nodes: 3, shards: 8, ownerNodes: 2, resilience: res})
	ctx := tctx(t, 120*time.Second)

	// Seeded chaos on every class. Client links lose and delay (the
	// redirect/retry path under test) but do not duplicate: data puts
	// are unversioned, exactly like yokan's, so a transport-duplicated
	// put replayed after a newer one would legitimately roll the key
	// back — that is a property of the data model, not of
	// reconfiguration. Node links lose, duplicate, *and* delay: the
	// migration protocol (stage seq gating, idempotent
	// prepare/promote) is specified to survive exactly that.
	c.client.Class().SetChaos(mercury.NewChaos(mercury.ChaosConfig{
		Seed:      42,
		DropRate:  0.05,
		DelayRate: 0.05,
		DelayMin:  time.Millisecond,
		DelayMax:  3 * time.Millisecond,
	}))
	for i, inst := range c.insts {
		inst.Class().SetChaos(mercury.NewChaos(mercury.ChaosConfig{
			Seed:      int64(100 + i),
			DropRate:  0.01,
			DupRate:   0.02,
			DelayRate: 0.03,
			DelayMin:  time.Millisecond,
			DelayMax:  2 * time.Millisecond,
		}))
	}

	duration := time.Duration(soakMS()) * time.Millisecond
	deadline := time.Now().Add(duration)

	const workers = 4
	var (
		stop    = make(chan struct{})
		wg      sync.WaitGroup
		ledgers = make([]map[string]string, workers)
		gone    = make([]map[string]bool, workers)
		werrs   = make([]error, workers)
	)
	// ack runs op until it reports definitive success.
	ack := func(op func() error) error {
		for attempt := 0; ; attempt++ {
			err := op()
			if err == nil || yokan.IsNotFound(err) {
				return err
			}
			if attempt > 50 {
				return fmt.Errorf("never acked: %w", err)
			}
			time.Sleep(time.Millisecond)
		}
	}
	for w := 0; w < workers; w++ {
		ledgers[w] = map[string]string{}
		gone[w] = map[string]bool{}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := c.router()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("w%d-k%d", w, rng.Intn(200))
				switch {
				case rng.Float64() < 0.15: // erase
					err := ack(func() error { return r.Erase(ctx, []byte(key)) })
					if err != nil && !yokan.IsNotFound(err) {
						werrs[w] = err
						return
					}
					delete(ledgers[w], key)
					gone[w][key] = true
				default: // put
					val := fmt.Sprintf("w%d-v%d", w, i)
					if err := ack(func() error { return r.Put(ctx, []byte(key), []byte(val)) }); err != nil {
						werrs[w] = err
						return
					}
					ledgers[w][key] = val
					delete(gone[w], key)
				}
			}
		}(w)
	}

	// The reconfiguration driver: walk shards round-robin, moving
	// each to the node after its current owner, until time is up.
	// Chaos can abort a migration (a lost stage forward aborts by
	// design); that is a clean failure — retry with a new migration.
	flips := 0
	rng := rand.New(rand.NewSource(7))
	for s := 0; time.Now().Before(deadline); s = (s + 1) % 8 {
		m, err := FetchMap(ctx, c.client, c.insts[rng.Intn(len(c.insts))].Addr(), testProviderID)
		if err != nil {
			continue
		}
		src := m.Owners[s]
		var srcNode *Node
		for _, nd := range c.nodes {
			if nd.Self() == src {
				srcNode = nd
			}
		}
		if srcNode == nil {
			continue
		}
		var dst Owner
		for i, nd := range c.nodes {
			if nd.Self() == src {
				dst = c.nodes[(i+1)%len(c.nodes)].Self()
			}
		}
		sctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		err = srcNode.Reshard(sctx, uint32(s), dst)
		cancel()
		if err == nil {
			flips++
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	for w, err := range werrs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	if flips == 0 {
		t.Fatal("no migration completed during the soak")
	}

	// Lift the chaos for verification: the question is whether the
	// data survived, not whether the verifier's own RPCs get lucky.
	c.client.Class().SetChaos(nil)
	for _, inst := range c.insts {
		inst.Class().SetChaos(nil)
	}

	r := c.router()
	if err := r.Refresh(ctx); err != nil {
		t.Fatalf("refresh: %v", err)
	}
	checked := 0
	for w := 0; w < workers; w++ {
		for k, want := range ledgers[w] {
			v, err := r.Get(ctx, []byte(k))
			if err != nil {
				t.Fatalf("lost acked write %q after %d flips: %v", k, flips, err)
			}
			if string(v) != want {
				t.Fatalf("key %q: got %q want %q", k, v, want)
			}
			checked++
		}
		for k := range gone[w] {
			if _, err := r.Get(ctx, []byte(k)); !yokan.IsNotFound(err) {
				t.Fatalf("erased key %q resurrected (err=%v)", k, err)
			}
		}
	}
	t.Logf("soak: %v, %d flips, %d acked keys verified, 0 lost", duration, flips, checked)
}
