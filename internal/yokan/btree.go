package yokan

import (
	"bytes"
	"sync"
)

// btreeDB is an ordered in-memory backend implemented as a B-tree of
// order btreeDegree (max 2*degree-1 keys per node), the classic
// structure behind Berkeley DB — one of the backends the paper lists
// for Yokan. Compared with the skip list it trades pointer chasing
// for cache-friendly node scans.
type btreeDB struct {
	mu     sync.RWMutex
	root   *btreeNode
	count  int
	closed bool
}

const btreeDegree = 16 // t: nodes hold t-1..2t-1 keys (root may hold fewer)

type btreeItem struct {
	key   []byte
	value []byte
}

type btreeNode struct {
	items    []btreeItem
	children []*btreeNode // nil for leaves
}

func newBTreeDB() *btreeDB {
	return &btreeDB{root: &btreeNode{}}
}

func (n *btreeNode) leaf() bool { return len(n.children) == 0 }

// find returns the index of key in items, or the child index to
// descend into, with found reporting an exact match.
func (n *btreeNode) find(key []byte) (int, bool) {
	lo, hi := 0, len(n.items)
	for lo < hi {
		mid := (lo + hi) / 2
		switch bytes.Compare(n.items[mid].key, key) {
		case 0:
			return mid, true
		case -1:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	return lo, false
}

func (d *btreeDB) Put(key, value []byte) error {
	if len(key) == 0 {
		return ErrEmptyKey
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	// Split a full root first (the standard pre-emptive split insert).
	// Copies of key/value are made at the insertion point, so an
	// overwrite can reuse the stored buffer instead of allocating.
	if len(d.root.items) == 2*btreeDegree-1 {
		old := d.root
		d.root = &btreeNode{children: []*btreeNode{old}}
		d.root.splitChild(0)
	}
	if d.root.insertNonFull(key, value) {
		d.count++
	}
	return nil
}

// setValue overwrites an item's value, reusing its buffer when it is
// big enough (Get copies under the lock, so no reader aliases it).
func (it *btreeItem) setValue(value []byte) {
	if cap(it.value) >= len(value) {
		it.value = append(it.value[:0], value...)
	} else {
		it.value = append([]byte(nil), value...)
	}
}

// splitChild splits the full child at index i of n.
func (n *btreeNode) splitChild(i int) {
	child := n.children[i]
	t := btreeDegree
	mid := child.items[t-1]
	right := &btreeNode{
		items: append([]btreeItem(nil), child.items[t:]...),
	}
	if !child.leaf() {
		right.children = append([]*btreeNode(nil), child.children[t:]...)
		child.children = child.children[:t]
	}
	child.items = child.items[:t-1]

	n.items = append(n.items, btreeItem{})
	copy(n.items[i+1:], n.items[i:])
	n.items[i] = mid
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

// insertNonFull inserts into a node known not to be full; reports
// whether a new key was added (false for overwrite). key and value
// are the caller's slices; they are copied exactly once, at the point
// of insertion or overwrite.
func (n *btreeNode) insertNonFull(key, value []byte) bool {
	i, found := n.find(key)
	if found {
		n.items[i].setValue(value)
		return false
	}
	if n.leaf() {
		n.items = append(n.items, btreeItem{})
		copy(n.items[i+1:], n.items[i:])
		n.items[i] = btreeItem{
			key:   append([]byte(nil), key...),
			value: append([]byte(nil), value...),
		}
		return true
	}
	if len(n.children[i].items) == 2*btreeDegree-1 {
		n.splitChild(i)
		switch bytes.Compare(key, n.items[i].key) {
		case 0:
			n.items[i].setValue(value)
			return false
		case 1:
			i++
		}
	}
	return n.children[i].insertNonFull(key, value)
}

func (d *btreeDB) Get(key []byte) ([]byte, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return nil, ErrClosed
	}
	n := d.root
	for {
		i, found := n.find(key)
		if found {
			return append([]byte(nil), n.items[i].value...), nil
		}
		if n.leaf() {
			return nil, ErrKeyNotFound
		}
		n = n.children[i]
	}
}

func (d *btreeDB) Exists(key []byte) (bool, error) {
	_, err := d.Get(key)
	switch err {
	case nil:
		return true, nil
	case ErrKeyNotFound:
		return false, nil
	default:
		return false, err
	}
}

func (d *btreeDB) Erase(key []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if !d.root.delete(key) {
		return ErrKeyNotFound
	}
	// Shrink the tree when the root empties.
	if len(d.root.items) == 0 && !d.root.leaf() {
		d.root = d.root.children[0]
	}
	d.count--
	return nil
}

// delete removes key from the subtree, maintaining the B-tree
// invariant that every visited child has ≥ t keys before descending.
func (n *btreeNode) delete(key []byte) bool {
	t := btreeDegree
	i, found := n.find(key)
	if found {
		if n.leaf() {
			n.items = append(n.items[:i], n.items[i+1:]...)
			return true
		}
		// Replace with predecessor or successor, or merge.
		if len(n.children[i].items) >= t {
			pred := n.children[i].max()
			n.items[i] = pred
			return n.children[i].delete(pred.key)
		}
		if len(n.children[i+1].items) >= t {
			succ := n.children[i+1].min()
			n.items[i] = succ
			return n.children[i+1].delete(succ.key)
		}
		n.mergeChildren(i)
		return n.children[i].delete(key)
	}
	if n.leaf() {
		return false
	}
	// Ensure the child we descend into has at least t keys.
	if len(n.children[i].items) < t {
		i = n.fill(i)
	}
	return n.children[i].delete(key)
}

func (n *btreeNode) max() btreeItem {
	for !n.leaf() {
		n = n.children[len(n.children)-1]
	}
	return n.items[len(n.items)-1]
}

func (n *btreeNode) min() btreeItem {
	for !n.leaf() {
		n = n.children[0]
	}
	return n.items[0]
}

// fill guarantees child i has ≥ t keys by borrowing or merging;
// returns the (possibly shifted) child index to descend into.
func (n *btreeNode) fill(i int) int {
	t := btreeDegree
	if i > 0 && len(n.children[i-1].items) >= t {
		// Borrow from the left sibling through the separator.
		child, left := n.children[i], n.children[i-1]
		child.items = append(child.items, btreeItem{})
		copy(child.items[1:], child.items)
		child.items[0] = n.items[i-1]
		n.items[i-1] = left.items[len(left.items)-1]
		left.items = left.items[:len(left.items)-1]
		if !child.leaf() {
			child.children = append(child.children, nil)
			copy(child.children[1:], child.children)
			child.children[0] = left.children[len(left.children)-1]
			left.children = left.children[:len(left.children)-1]
		}
		return i
	}
	if i < len(n.children)-1 && len(n.children[i+1].items) >= t {
		// Borrow from the right sibling.
		child, right := n.children[i], n.children[i+1]
		child.items = append(child.items, n.items[i])
		n.items[i] = right.items[0]
		right.items = append(right.items[:0], right.items[1:]...)
		if !child.leaf() {
			child.children = append(child.children, right.children[0])
			right.children = append(right.children[:0], right.children[1:]...)
		}
		return i
	}
	// Merge with a sibling.
	if i == len(n.children)-1 {
		i--
	}
	n.mergeChildren(i)
	return i
}

// mergeChildren merges child i, the separator, and child i+1.
func (n *btreeNode) mergeChildren(i int) {
	left, right := n.children[i], n.children[i+1]
	left.items = append(left.items, n.items[i])
	left.items = append(left.items, right.items...)
	left.children = append(left.children, right.children...)
	n.items = append(n.items[:i], n.items[i+1:]...)
	n.children = append(n.children[:i+1], n.children[i+2:]...)
}

func (d *btreeDB) Count() (int, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return 0, ErrClosed
	}
	return d.count, nil
}

// ascend walks items > fromKey in order, calling fn until it returns
// false.
func (n *btreeNode) ascend(fromKey []byte, fn func(it btreeItem) bool) bool {
	i := 0
	if fromKey != nil {
		var found bool
		i, found = n.find(fromKey)
		if found {
			// Strictly-greater semantics: skip the match itself, but
			// descend right of it.
			if !n.leaf() {
				if !n.children[i+1].ascend(fromKey, fn) {
					return false
				}
			}
			for j := i + 1; j < len(n.items); j++ {
				if !fn(n.items[j]) {
					return false
				}
				if !n.leaf() && !n.children[j+1].ascend(nil, fn) {
					return false
				}
			}
			return true
		}
	}
	for j := i; j < len(n.items); j++ {
		if !n.leaf() {
			var from []byte
			if j == i {
				from = fromKey
			}
			if !n.children[j].ascend(from, fn) {
				return false
			}
		}
		if !fn(n.items[j]) {
			return false
		}
	}
	if !n.leaf() {
		var from []byte
		if len(n.items) == i {
			from = fromKey
		}
		return n.children[len(n.children)-1].ascend(from, fn)
	}
	return true
}

func (d *btreeDB) scan(fromKey, prefix []byte, max int, withValues bool) ([][]byte, []KeyValue) {
	var keys [][]byte
	var kvs []KeyValue
	d.root.ascend(fromKey, func(it btreeItem) bool {
		if fromKey != nil && bytes.Compare(it.key, fromKey) <= 0 {
			return true
		}
		if len(prefix) > 0 {
			if !bytes.HasPrefix(it.key, prefix) {
				// Ordered walk: once beyond the prefix, stop.
				return bytes.Compare(it.key, prefix) <= 0
			}
		}
		if withValues {
			if max > 0 && len(kvs) >= max {
				return false
			}
			kvs = append(kvs, KeyValue{
				Key:   append([]byte(nil), it.key...),
				Value: append([]byte(nil), it.value...),
			})
		} else {
			if max > 0 && len(keys) >= max {
				return false
			}
			keys = append(keys, append([]byte(nil), it.key...))
		}
		return true
	})
	return keys, kvs
}

func (d *btreeDB) ListKeys(fromKey, prefix []byte, max int) ([][]byte, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return nil, ErrClosed
	}
	keys, _ := d.scan(fromKey, prefix, max, false)
	return keys, nil
}

func (d *btreeDB) ListKeyValues(fromKey, prefix []byte, max int) ([]KeyValue, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return nil, ErrClosed
	}
	_, kvs := d.scan(fromKey, prefix, max, true)
	return kvs, nil
}

func (d *btreeDB) Flush() error { return nil }

func (d *btreeDB) Files() []string { return nil }

func (d *btreeDB) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	d.root = &btreeNode{}
	d.count = 0
	return nil
}

func (d *btreeDB) Destroy() error { return d.Close() }
