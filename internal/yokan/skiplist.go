package yokan

import (
	"bytes"
	"math/rand"
	"sync"
)

// skipDB is the ordered in-memory backend: a classic skip list, the
// same structure LevelDB uses for its memtable.
type skipDB struct {
	mu     sync.RWMutex
	head   *skipNode
	level  int
	count  int
	rng    *rand.Rand
	closed bool
}

const skipMaxLevel = 24

type skipNode struct {
	key   []byte
	value []byte
	next  []*skipNode
}

func newSkipDB() *skipDB {
	return &skipDB{
		head: &skipNode{next: make([]*skipNode, skipMaxLevel)},
		// Deterministic seed: behaviour is reproducible in tests, and
		// level choice does not need cryptographic randomness.
		rng:   rand.New(rand.NewSource(0x59AC)),
		level: 1,
	}
}

func (d *skipDB) randomLevel() int {
	lvl := 1
	for lvl < skipMaxLevel && d.rng.Intn(4) == 0 {
		lvl++
	}
	return lvl
}

// findPredecessors fills prev[i] with the rightmost node at level i
// whose key is < key.
func (d *skipDB) findPredecessors(key []byte, prev []*skipNode) *skipNode {
	x := d.head
	for i := d.level - 1; i >= 0; i-- {
		for x.next[i] != nil && bytes.Compare(x.next[i].key, key) < 0 {
			x = x.next[i]
		}
		if prev != nil {
			prev[i] = x
		}
	}
	return x.next[0]
}

func (d *skipDB) Put(key, value []byte) error {
	if len(key) == 0 {
		return ErrEmptyKey
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	prev := make([]*skipNode, skipMaxLevel)
	for i := range prev {
		prev[i] = d.head
	}
	cand := d.findPredecessors(key, prev)
	if cand != nil && bytes.Equal(cand.key, key) {
		// Overwrite in place when the old buffer is big enough; Get
		// copies under the lock, so no reader aliases it.
		if cap(cand.value) >= len(value) {
			cand.value = append(cand.value[:0], value...)
		} else {
			cand.value = append([]byte(nil), value...)
		}
		return nil
	}
	lvl := d.randomLevel()
	if lvl > d.level {
		d.level = lvl
	}
	n := &skipNode{
		key:   append([]byte(nil), key...),
		value: append([]byte(nil), value...),
		next:  make([]*skipNode, lvl),
	}
	for i := 0; i < lvl; i++ {
		n.next[i] = prev[i].next[i]
		prev[i].next[i] = n
	}
	d.count++
	return nil
}

func (d *skipDB) Get(key []byte) ([]byte, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return nil, ErrClosed
	}
	n := d.findPredecessors(key, nil)
	if n == nil || !bytes.Equal(n.key, key) {
		return nil, ErrKeyNotFound
	}
	return append([]byte(nil), n.value...), nil
}

func (d *skipDB) Erase(key []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	prev := make([]*skipNode, skipMaxLevel)
	for i := range prev {
		prev[i] = d.head
	}
	n := d.findPredecessors(key, prev)
	if n == nil || !bytes.Equal(n.key, key) {
		return ErrKeyNotFound
	}
	for i := 0; i < len(n.next); i++ {
		if prev[i].next[i] == n {
			prev[i].next[i] = n.next[i]
		}
	}
	for d.level > 1 && d.head.next[d.level-1] == nil {
		d.level--
	}
	d.count--
	return nil
}

func (d *skipDB) Exists(key []byte) (bool, error) {
	_, err := d.Get(key)
	if err == ErrKeyNotFound {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

func (d *skipDB) Count() (int, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return 0, ErrClosed
	}
	return d.count, nil
}

func (d *skipDB) scan(fromKey, prefix []byte, max int, withValues bool) ([][]byte, []KeyValue) {
	var start *skipNode
	if fromKey == nil {
		start = d.head.next[0]
	} else {
		// First key strictly greater than fromKey.
		n := d.findPredecessors(fromKey, nil)
		for n != nil && bytes.Compare(n.key, fromKey) <= 0 {
			n = n.next[0]
		}
		start = n
	}
	var keys [][]byte
	var kvs []KeyValue
	for n := start; n != nil; n = n.next[0] {
		if len(prefix) > 0 {
			if !bytes.HasPrefix(n.key, prefix) {
				// Ordered scan: once past the prefix range, stop.
				if bytes.Compare(n.key, prefix) > 0 {
					break
				}
				continue
			}
		}
		if withValues {
			if max > 0 && len(kvs) >= max {
				break
			}
			kvs = append(kvs, KeyValue{
				Key:   append([]byte(nil), n.key...),
				Value: append([]byte(nil), n.value...),
			})
		} else {
			if max > 0 && len(keys) >= max {
				break
			}
			keys = append(keys, append([]byte(nil), n.key...))
		}
	}
	return keys, kvs
}

func (d *skipDB) ListKeys(fromKey, prefix []byte, max int) ([][]byte, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return nil, ErrClosed
	}
	keys, _ := d.scan(fromKey, prefix, max, false)
	return keys, nil
}

func (d *skipDB) ListKeyValues(fromKey, prefix []byte, max int) ([]KeyValue, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return nil, ErrClosed
	}
	_, kvs := d.scan(fromKey, prefix, max, true)
	return kvs, nil
}

func (d *skipDB) Flush() error { return nil }

func (d *skipDB) Files() []string { return nil }

func (d *skipDB) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.closed = true
	d.head = &skipNode{next: make([]*skipNode, skipMaxLevel)}
	d.count = 0
	return nil
}

func (d *skipDB) Destroy() error { return d.Close() }
