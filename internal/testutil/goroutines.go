// Package testutil holds helpers shared by the test suites of several
// packages. It must only be imported from _test.go files.
package testutil

import (
	"runtime"
	"time"
)

// failer is the subset of testing.TB the helpers need; taking the
// interface keeps testutil free of a testing import in callers' builds
// and works for both *testing.T and *testing.B.
type failer interface {
	Helper()
	Fatalf(format string, args ...any)
}

// GoroutineCount samples the current goroutine count. Call it before
// starting the system under test and hand the result to
// WaitGoroutinesSettle after tearing it down.
func GoroutineCount() int { return runtime.NumGoroutine() }

// WaitGoroutinesSettle polls until the process goroutine count drops
// back to before+slack, failing the test after 5 seconds. Use it to
// assert that Finalize/Shutdown/Close paths reap every goroutine they
// started; the slack absorbs runtime background goroutines that come
// and go independently of the code under test.
func WaitGoroutinesSettle(t failer, before, slack int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		now := runtime.NumGoroutine()
		if now <= before+slack {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: before=%d now=%d (slack %d)", before, now, slack)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
