// Reshard-demo: one logical keyspace horizontally sharded across
// three Bedrock processes, resharded online under live traffic
// (DESIGN.md §9). Two processes own the shards at bootstrap; the
// third is a spare. A writer keeps appending while every shard on
// node 0 migrates to the spare through the dual-write protocol, then
// the demo verifies that not a single acked write went missing.
//
// Run with: go run ./examples/reshard-demo
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"mochi/internal/bedrock"
	"mochi/internal/margo"
	"mochi/internal/mercury"
	"mochi/internal/modules"
	"mochi/internal/yokan/router"
)

const providerID = 40

func main() {
	modules.RegisterBuiltins()
	fabric := mercury.NewFabric()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Three bedrock processes share one keyspace: the identical
	// bootstrap block makes each derive the same epoch-1 map, so no
	// coordination service is needed. node-2 is not listed as an
	// owner — it starts as a routing spare and gains shards only by
	// migration.
	owners := `["sm://node-0", "sm://node-1"]`
	cfg := fmt.Sprintf(`{
	  "libraries": {"xkv": "libxkv.so"},
	  "providers": [
	    {"name": "keyspace", "type": "xkv", "provider_id": %d,
	     "config": {"backend": {"type": "map"},
	                "bootstrap": {"shards": 8, "owners": %s}}}
	  ]
	}`, providerID, owners)
	var servers []*bedrock.Server
	for i := 0; i < 3; i++ {
		cls, err := fabric.NewClass(fmt.Sprintf("node-%d", i))
		if err != nil {
			log.Fatal(err)
		}
		srv, err := bedrock.NewServer(cls, []byte(cfg))
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Shutdown()
		servers = append(servers, srv)
	}

	ccls, err := fabric.NewClass("client")
	if err != nil {
		log.Fatal(err)
	}
	client, err := margo.New(ccls, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Finalize()

	r, err := router.Bootstrap(ctx, client, []string{"sm://node-0", "sm://node-1"}, providerID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bootstrap: epoch %d, %d shards over 2 owners + 1 spare\n",
		r.Map().Epoch, len(r.Map().Owners))

	// Live traffic: one writer appends versioned values while the
	// reshard runs; the ledger records what was acked.
	ledger := map[string]string{}
	var mu sync.Mutex
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			k := fmt.Sprintf("key-%d", i%500)
			v := fmt.Sprintf("v%d", i)
			if err := r.Put(ctx, []byte(k), []byte(v)); err != nil {
				log.Fatalf("put %s: %v", k, err)
			}
			mu.Lock()
			ledger[k] = v
			mu.Unlock()
		}
	}()

	// Move every shard node-0 owns to the spare, one dual-write
	// migration at a time, while the writer keeps going.
	time.Sleep(100 * time.Millisecond)
	spare := router.Owner{Addr: "sm://node-2", Provider: providerID}
	bal := router.NewBalancer(client, nil)
	moved := 0
	for s, o := range r.Map().Owners {
		if o.Addr != "sm://node-0" {
			continue
		}
		if err := bal.Execute(ctx, &router.Decision{Shard: uint32(s), From: o, To: spare}); err != nil {
			log.Fatalf("reshard shard %d: %v", s, err)
		}
		moved++
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()

	// Every acked write must be readable at its last acked value.
	if err := r.Refresh(ctx); err != nil {
		log.Fatal(err)
	}
	for k, want := range ledger {
		v, err := r.Get(ctx, []byte(k))
		if err != nil {
			log.Fatalf("lost acked write %q: %v", k, err)
		}
		if string(v) != want {
			log.Fatalf("key %q: got %q want %q", k, v, want)
		}
	}
	fmt.Printf("moved %d shards to the spare at epoch %d; %d acked writes verified, 0 lost\n",
		moved, r.Map().Epoch, len(ledger))
	fmt.Printf("shard 0 now owned by %s\n", r.Map().Owners[0].Addr)
}
