// Quickstart: boot one Bedrock-managed process from a Listing-3 style
// JSON configuration, talk to its Yokan key-value provider, query the
// live configuration with Jx9 (Listing 4), and dump the monitoring
// statistics (Listing 1).
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"mochi/internal/bedrock"
	"mochi/internal/margo"
	"mochi/internal/mercury"
	"mochi/internal/modules"
	"mochi/internal/yokan"
)

const processConfig = `{
  "margo": {
    "argobots": {
      "pools": [ { "name": "MyPoolX", "type": "fifo_wait", "access": "mpmc" } ],
      "xstreams": [ { "name": "MyES0",
                      "scheduler": { "type": "basic_wait", "pools": ["MyPoolX"] } } ]
    },
    "progress_pool": "MyPoolX",
    "rpc_pool": "MyPoolX",
    "enable_monitoring": true
  },
  "libraries": { "yokan": "libyokan.so" },
  "providers": [
    { "name": "myProviderA", "type": "yokan", "provider_id": 1,
      "pool": "MyPoolX", "config": {"type": "skiplist"} }
  ]
}`

func main() {
	modules.RegisterBuiltins()

	// One in-process fabric stands in for the cluster network; the
	// same code runs across real processes with mercury.NewTCPClass
	// (see cmd/bedrock).
	fabric := mercury.NewFabric()

	serverClass, err := fabric.NewClass("node-0")
	if err != nil {
		log.Fatal(err)
	}
	server, err := bedrock.NewServer(serverClass, []byte(processConfig))
	if err != nil {
		log.Fatal(err)
	}
	defer server.Shutdown()
	fmt.Printf("service process up at %s with providers %v\n", server.Addr(), server.Providers())

	// A client process.
	clientClass, err := fabric.NewClass("client")
	if err != nil {
		log.Fatal(err)
	}
	client, err := margo.New(clientClass, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Finalize()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// Use the key-value provider through its resource handle
	// (Figure 1: address + provider ID).
	db := yokan.NewClient(client).Handle(server.Addr(), 1)
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("particle-%d", i)
		if err := db.Put(ctx, []byte(key), []byte(fmt.Sprintf("energy=%d GeV", 10*i))); err != nil {
			log.Fatal(err)
		}
	}
	v, err := db.Get(ctx, []byte("particle-3"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("get(particle-3) = %q\n", v)
	keys, err := db.ListKeys(ctx, nil, []byte("particle-"), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored keys: %d\n", len(keys))

	// Query the process configuration remotely with Jx9 (Listing 4).
	sh := bedrock.NewClient(client).MakeServiceHandle(server.Addr())
	names, err := sh.QueryConfig(ctx, `
$result = [];
foreach ($__config__.providers as $p) {
    array_push($result, $p.name); }
return $result;`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("providers via Jx9 query: %s\n", names)

	// Dump the Listing-1 style monitoring statistics.
	stats := server.Instance().Stats()
	if st, ok := stats.FindByName(yokan.RPCPut); ok {
		for peer, ts := range st.Target {
			fmt.Printf("monitoring: %s %s: %d ULTs, avg %.1fµs\n",
				yokan.RPCPut, peer, ts.ULT.Duration.Num, ts.ULT.Duration.Avg*1e6)
		}
	}
	raw, err := stats.JSON()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full monitoring document: %d bytes of JSON\n", len(raw))
}
