// Resilient-kv demonstrates the paper's two resilience designs (§7):
//
//  1. Bottom-up, with composable consensus: three Yokan databases are
//     kept consistent by Mochi-RAFT state-machine replication; the
//     service keeps serving through a leader crash.
//  2. Bottom-up, with a virtual resource: a provider that holds no
//     data forwards operations to replicas; clients never notice a
//     replica failure.
//
// Failure detection throughout comes from SSG's SWIM protocol.
//
// Run with: go run ./examples/resilient-kv
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"mochi/internal/core"
	"mochi/internal/margo"
	"mochi/internal/mercury"
	"mochi/internal/raft"
	"mochi/internal/ssg"
	"mochi/internal/yokan"
)

func main() {
	fabric := mercury.NewFabric()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// --- Part 1: RAFT-replicated Yokan ---------------------------------
	fmt.Println("== composable consensus: RAFT-replicated key-value group ==")
	var insts []*margo.Instance
	var addrs []string
	for i := 0; i < 3; i++ {
		cls, err := fabric.NewClass(fmt.Sprintf("raft-kv-%d", i))
		if err != nil {
			log.Fatal(err)
		}
		inst, err := margo.New(cls, nil)
		if err != nil {
			log.Fatal(err)
		}
		insts = append(insts, inst)
		addrs = append(addrs, inst.Addr())
	}
	cfg := raft.Config{
		ElectionTimeoutMin: 60 * time.Millisecond,
		ElectionTimeoutMax: 120 * time.Millisecond,
		HeartbeatInterval:  15 * time.Millisecond,
	}
	nodes := map[string]*raft.Node{}
	for _, inst := range insts {
		db, err := yokan.Open(yokan.Config{Type: "map"})
		if err != nil {
			log.Fatal(err)
		}
		node, err := core.NewRaftKVNode(inst, "rkv", addrs, raft.NewMemoryStore(), db, cfg)
		if err != nil {
			log.Fatal(err)
		}
		nodes[inst.Addr()] = node
	}
	defer func() {
		for _, n := range nodes {
			n.Stop()
		}
		for _, inst := range insts {
			inst.Finalize()
		}
	}()

	ccls, err := fabric.NewClass("raft-kv-client")
	if err != nil {
		log.Fatal(err)
	}
	cinst, err := margo.New(ccls, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer cinst.Finalize()
	rkv := core.NewRaftKVClient(cinst, "rkv", addrs)
	if err := rkv.Put(ctx, []byte("detector"), []byte("online")); err != nil {
		log.Fatal(err)
	}
	fmt.Println("replicated put committed through the RAFT log")

	// Find and kill the leader.
	var leader *raft.Node
	for leader == nil {
		for _, n := range nodes {
			if n.IsLeader() {
				leader = n
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Printf("killing the leader (%s)...\n", leader.ID())
	start := time.Now()
	fabric.Kill(leader.ID())
	leader.Stop()
	delete(nodes, leader.ID())
	if err := rkv.Put(ctx, []byte("after"), []byte("failover")); err != nil {
		log.Fatal(err)
	}
	v, err := rkv.Get(ctx, []byte("detector"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("service recovered in %s; pre-crash value intact: %q\n",
		time.Since(start).Round(time.Millisecond), v)

	// --- Part 2: virtual (replicated) resource -------------------------
	fmt.Println("\n== virtual resource: replication behind an ordinary provider ==")
	var backends []struct {
		Addr       string
		ProviderID uint16
	}
	var binsts []*margo.Instance
	var baddrs []string
	for i := 0; i < 3; i++ {
		cls, err := fabric.NewClass(fmt.Sprintf("replica-%d", i))
		if err != nil {
			log.Fatal(err)
		}
		inst, err := margo.New(cls, nil)
		if err != nil {
			log.Fatal(err)
		}
		binsts = append(binsts, inst)
		baddrs = append(baddrs, inst.Addr())
		if _, err := yokan.NewProvider(inst, 1, nil, yokan.Config{Type: "map"}); err != nil {
			log.Fatal(err)
		}
		backends = append(backends, struct {
			Addr       string
			ProviderID uint16
		}{inst.Addr(), 1})
	}
	defer func() {
		for _, inst := range binsts {
			inst.Finalize()
		}
	}()

	// SWIM watches the replicas and reports deaths (§7 Obs. 12).
	var groups []*ssg.Group
	swimCfg := ssg.Config{ProtocolPeriod: 30 * time.Millisecond, SuspicionPeriods: 3}
	for _, inst := range binsts {
		g, err := ssg.Create(inst, "replicas", baddrs, swimCfg)
		if err != nil {
			log.Fatal(err)
		}
		groups = append(groups, g)
	}
	defer func() {
		for _, g := range groups {
			g.Stop()
		}
	}()
	// Watch from a survivor's perspective (replica 2 stays alive).
	deaths := make(chan string, 8)
	groups[2].OnChange(func(m ssg.Member, _, s ssg.State) {
		if s == ssg.StateDead {
			deaths <- m.Addr
		}
	})

	fcls, err := fabric.NewClass("virtual-front")
	if err != nil {
		log.Fatal(err)
	}
	finst, err := margo.New(fcls, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer finst.Finalize()
	vdb, err := core.NewVirtualKV(finst, backends, core.VirtualKVConfig{WriteQuorum: 2})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := yokan.NewProviderWithDatabase(finst, 9, nil, vdb, yokan.Config{Type: "virtual"}); err != nil {
		log.Fatal(err)
	}

	h := yokan.NewClient(cinst).Handle(finst.Addr(), 9)
	if err := h.Put(ctx, []byte("important"), []byte("triplicated")); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("put through virtual provider replicated to %d backends\n", vdb.Replicas())

	fabric.Kill(backends[0].Addr)
	fmt.Printf("killed replica %s\n", backends[0].Addr)
	if v, err := h.Get(ctx, []byte("important")); err == nil {
		fmt.Printf("client still reads %q — unaware of the failure\n", v)
	} else {
		log.Fatal(err)
	}
	for {
		select {
		case dead := <-deaths:
			if dead == backends[0].Addr {
				fmt.Printf("SWIM reported the death of %s to the group\n", dead)
				return
			}
		case <-time.After(30 * time.Second):
			log.Fatal("SWIM never detected the failure")
		}
	}
}
