// Elastic-kv: a dynamic key-value service that grows and shrinks at
// run time (paper §6). Three Bedrock-managed processes host Yokan
// databases and are tracked by an SSG group; the service then expands
// to a fourth node, rebalances data onto it with Pufferscale-driven
// REMI migrations, and finally drains a node and shrinks back.
//
// Run with: go run ./examples/elastic-kv
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"mochi/internal/core"
	"mochi/internal/mercury"
	"mochi/internal/modules"
	"mochi/internal/pufferscale"
	"mochi/internal/ssg"
	"mochi/internal/yokan"
)

func main() {
	modules.RegisterBuiltins()
	fabric := mercury.NewFabric()
	cluster := core.NewClusterSim("node", 6)
	base, err := os.MkdirTemp("", "elastic-kv-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(base)

	// The first node starts with four database providers (a freshly
	// deployed service before any scale-out); the others start empty
	// and receive migrated providers.
	spec := core.Spec{
		GroupName: "elastic-kv",
		SSG: ssg.Config{
			ProtocolPeriod:   50 * time.Millisecond,
			PingTimeout:      10 * time.Millisecond,
			SuspicionPeriods: 3,
		},
		NodeConfig: func(node string) []byte {
			dir := filepath.Join(base, node)
			if node != "node-0" {
				return []byte(fmt.Sprintf(`{
				  "libraries": {"yokan": "libyokan.so"},
				  "remi_root": %q
				}`, filepath.Join(dir, "remi")))
			}
			providers := ""
			for i := 1; i <= 4; i++ {
				if i > 1 {
					providers += ","
				}
				providers += fmt.Sprintf(`
				    {"name": "db-%d", "type": "yokan", "provider_id": %d,
				     "config": {"type": "log", "path": %q, "no_sync": true}}`,
					i, i, filepath.Join(dir, fmt.Sprintf("db-%d.log", i)))
			}
			return []byte(fmt.Sprintf(`{
			  "libraries": {"yokan": "libyokan.so"},
			  "remi_root": %q,
			  "providers": [%s]
			}`, filepath.Join(dir, "remi"), providers))
		},
	}
	svc := core.NewService(fabric, cluster, spec)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := svc.Start(ctx, 3); err != nil {
		log.Fatal(err)
	}
	defer svc.Stop()
	fmt.Printf("service started on %v\n", svc.Nodes())

	// Load skewed data: all four databases live on node-0.
	p0, _ := svc.Process("node-0")
	for dbID := uint16(1); dbID <= 4; dbID++ {
		db := yokan.NewClient(svc.Admin()).Handle(p0.Addr(), dbID)
		var pairs []yokan.KeyValue
		for i := 0; i < 50; i++ {
			pairs = append(pairs, yokan.KeyValue{
				Key:   []byte(fmt.Sprintf("key-%d-%04d", dbID, i)),
				Value: make([]byte, 2048),
			})
		}
		if err := db.PutMulti(ctx, pairs); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("loaded 4 databases (~100KB each) onto node-0")

	// Elasticity: grow by one node.
	proc, err := svc.Expand(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("expanded: %v (the group view propagates via SSG)\n", svc.Nodes())

	// Rebalance data across the four nodes (Pufferscale plan,
	// executed with REMI migrations through Bedrock).
	plan, err := svc.Rebalance(ctx, pufferscale.Objectives{WData: 1, WTime: 0.1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rebalanced: %d moves, %.0f bytes migrated, data imbalance %.2f\n",
		len(plan.Moves), plan.BytesMoved, plan.DataImbalance())
	for _, node := range svc.Nodes() {
		p, _ := svc.Process(node)
		for _, info := range p.Server.ResourceInventory() {
			fmt.Printf("  %-8s holds %-12s (%6d bytes)\n", node, info.Name, info.Bytes)
		}
	}

	// Shrink: drain the node we just added and give it back.
	if err := svc.Shrink(ctx, proc.Node); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shrunk back to %v (free nodes in cluster: %d)\n", svc.Nodes(), cluster.Free())

	// The data survived both reconfigurations.
	total := 0
	for _, node := range svc.Nodes() {
		p, _ := svc.Process(node)
		for _, info := range p.Server.ResourceInventory() {
			h := yokan.NewClient(svc.Admin()).Handle(p.Addr(), info.ProviderID)
			n, err := h.Count(ctx)
			if err != nil {
				log.Fatal(err)
			}
			total += n
		}
	}
	fmt.Printf("total keys after scale-out + rebalance + scale-in: %d (expected 200)\n", total)
}
