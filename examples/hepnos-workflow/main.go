// Hepnos-workflow runs the paper's motivating scenario (§1): a
// NOvA-like analysis whose steps have very different I/O patterns,
// served by a HEPnOS-style event store. Between steps the service is
// reconfigured online — each shard's metadata provider is
// checkpointed, restarted with a backend suited to the next step, and
// restored — without restarting the processes.
//
// Run with: go run ./examples/hepnos-workflow
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"mochi/internal/bedrock"
	"mochi/internal/hepnos"
	"mochi/internal/margo"
	"mochi/internal/mercury"
	"mochi/internal/modules"
)

const shardConfigMap = `{
  "libraries": {"yokan": "libyokan.so", "warabi": "libwarabi.so"},
  "providers": [
    {"name": "meta", "type": "yokan",  "provider_id": 1, "config": {"type": "map"}},
    {"name": "data", "type": "warabi", "provider_id": 2, "config": {"type": "memory"}}
  ]
}`

func main() {
	modules.RegisterBuiltins()
	fabric := mercury.NewFabric()
	fabric.SetModel(mercury.DefaultHPCModel())
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	// Two storage shards, each a Bedrock process with a Yokan
	// (metadata) and a Warabi (event payload) provider.
	var servers []*bedrock.Server
	var shards []hepnos.Shard
	for i := 0; i < 2; i++ {
		cls, err := fabric.NewClass(fmt.Sprintf("shard-%d", i))
		if err != nil {
			log.Fatal(err)
		}
		srv, err := bedrock.NewServer(cls, []byte(shardConfigMap))
		if err != nil {
			log.Fatal(err)
		}
		servers = append(servers, srv)
		shards = append(shards, hepnos.Shard{Addr: srv.Addr(), YokanID: 1, WarabiID: 2})
	}
	defer func() {
		for _, s := range servers {
			s.Shutdown()
		}
	}()

	ccls, err := fabric.NewClass("analysis")
	if err != nil {
		log.Fatal(err)
	}
	cinst, err := margo.New(ccls, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer cinst.Finalize()
	store, err := hepnos.New(cinst, shards)
	if err != nil {
		log.Fatal(err)
	}

	const events = 2000
	const runs = 8
	payload := make([]byte, 512)

	// Step 1 — ingest: write-heavy, served by the "map" backend.
	start := time.Now()
	for i := 0; i < events; i++ {
		id := hepnos.EventID{Run: uint64(i % runs), SubRun: 0, Event: uint64(i)}
		if err := store.StoreEvent(ctx, "nova", id, payload); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("step 1 (ingest %d events, map backend): %s\n", events, time.Since(start).Round(time.Millisecond))

	// Step 2 — random reconstruction reads.
	start = time.Now()
	for i := 0; i < events; i++ {
		j := (i * 7919) % events
		id := hepnos.EventID{Run: uint64(j % runs), SubRun: 0, Event: uint64(j)}
		if _, err := store.LoadEvent(ctx, "nova", id); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("step 2 (random reads, map backend):      %s\n", time.Since(start).Round(time.Millisecond))

	// Online reconfiguration before the scan step: swap each shard's
	// metadata backend to the ordered skiplist, preserving the data
	// via checkpoint/restore — the service never goes down.
	ckpt, err := os.MkdirTemp("", "hepnos-ckpt-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(ckpt)
	start = time.Now()
	for _, srv := range servers {
		if err := srv.CheckpointProvider("meta", ckpt); err != nil {
			log.Fatal(err)
		}
		if err := srv.StopProvider("meta"); err != nil {
			log.Fatal(err)
		}
		if err := srv.StartProvider(bedrock.ProviderConfig{
			Name:       "meta",
			Type:       "yokan",
			ProviderID: 1,
			Config:     []byte(`{"type": "skiplist"}`),
		}); err != nil {
			log.Fatal(err)
		}
		if err := srv.RestoreProvider("meta", ckpt); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("online reconfiguration (map→skiplist on both shards): %s\n", time.Since(start).Round(time.Millisecond))

	// Step 3 — ordered scans over each run.
	start = time.Now()
	total := 0
	for pass := 0; pass < 3; pass++ {
		for run := uint64(0); run < runs; run++ {
			ids, err := store.ListRunEvents(ctx, "nova", run)
			if err != nil {
				log.Fatal(err)
			}
			total += len(ids)
		}
	}
	fmt.Printf("step 3 (ordered scans, skiplist backend): %s (%d events scanned)\n",
		time.Since(start).Round(time.Millisecond), total)

	n, err := store.CountEvents(ctx, "nova")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset intact through reconfiguration: %d events\n", n)
}
