// Colza-pipeline shows the client-side strategies for tracking an
// elastic service (paper §6, Observation 7): pipeline providers
// depend on an SSG group and maintain a hash of its view; client RPCs
// carry the hash, so a stale client is told to refresh. Consistent
// iteration processing uses a two-phase commit driven by the
// application.
//
// Run with: go run ./examples/colza-pipeline
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"mochi/internal/colza"
	"mochi/internal/margo"
	"mochi/internal/mercury"
	"mochi/internal/ssg"
)

func main() {
	fabric := mercury.NewFabric()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	swim := ssg.Config{ProtocolPeriod: 30 * time.Millisecond, SuspicionPeriods: 3}

	// Three pipeline processes in an SSG group.
	var insts []*margo.Instance
	var addrs []string
	for i := 0; i < 3; i++ {
		cls, err := fabric.NewClass(fmt.Sprintf("viz-%d", i))
		if err != nil {
			log.Fatal(err)
		}
		inst, err := margo.New(cls, nil)
		if err != nil {
			log.Fatal(err)
		}
		insts = append(insts, inst)
		addrs = append(addrs, inst.Addr())
	}
	var groups []*ssg.Group
	var provs []*colza.Provider
	for _, inst := range insts {
		g, err := ssg.Create(inst, "viz", addrs, swim)
		if err != nil {
			log.Fatal(err)
		}
		groups = append(groups, g)
		p, err := colza.NewProvider(inst, 1, nil, g)
		if err != nil {
			log.Fatal(err)
		}
		provs = append(provs, p)
	}
	defer func() {
		for _, p := range provs {
			p.Close()
		}
		for _, g := range groups {
			g.Stop()
		}
		for _, inst := range insts {
			inst.Finalize()
		}
	}()

	// The simulation (client) stages data blocks each iteration.
	ccls, err := fabric.NewClass("simulation")
	if err != nil {
		log.Fatal(err)
	}
	cinst, err := margo.New(ccls, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer cinst.Finalize()
	client := colza.NewClient(cinst, "viz", addrs[0], 1)
	if err := client.RefreshView(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline view: %d members\n", len(client.Members()))

	// Iteration 1 on three members.
	for b := uint64(0); b < 12; b++ {
		if err := client.Stage(ctx, 1, b, make([]byte, 4096)); err != nil {
			log.Fatal(err)
		}
	}
	res, err := client.Commit(ctx, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("iteration 1 committed via 2PC: %d blocks, %d bytes\n", res.Blocks, res.Bytes)

	// A new pipeline process joins the group (elastic scale-out).
	cls, err := fabric.NewClass("viz-new")
	if err != nil {
		log.Fatal(err)
	}
	ninst, err := margo.New(cls, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer ninst.Finalize()
	ng, err := ssg.Join(ctx, ninst, "viz", addrs[0], swim)
	if err != nil {
		log.Fatal(err)
	}
	defer ng.Stop()
	np, err := colza.NewProvider(ninst, 1, nil, ng)
	if err != nil {
		log.Fatal(err)
	}
	defer np.Close()
	// Wait until every provider's view includes the newcomer; until
	// then the client's staging would be told "stale view".
	for {
		ok := true
		for _, g := range groups {
			if len(g.View().Live()) != 4 {
				ok = false
			}
		}
		if ok {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Println("a fourth process joined the group")

	// The client still holds the 3-member view: its first RPC is
	// rejected with a stale-view error, it transparently refreshes,
	// and staging proceeds over four members.
	for b := uint64(0); b < 12; b++ {
		if err := client.Stage(ctx, 2, b, make([]byte, 4096)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("client refreshed its view automatically: now %d members\n", len(client.Members()))
	res, err = client.Commit(ctx, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("iteration 2 committed across the grown pipeline: %d blocks\n", res.Blocks)
	if r, ok := np.Result(2); ok {
		fmt.Printf("the new member processed %d of them\n", r.Blocks)
	}
}
