module mochi

go 1.22
