// Command bedrock starts one service process from a JSON
// configuration (paper Listing 3) and serves it over TCP until it is
// shut down remotely (bedrock_shutdown) or killed. It is the
// multi-OS-process deployment path; the in-process "sm" fabric used
// by tests and benchmarks exercises the same code.
//
// Usage:
//
//	bedrock -config service.json [-listen 127.0.0.1:0]
//
// The process prints its address on stdout so launch scripts can wire
// clients to it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"mochi/internal/bedrock"
	"mochi/internal/mercury"
	"mochi/internal/modules"
)

// paramFlags collects repeated -param key=value flags for Jx9
// configuration scripts ($__params__).
type paramFlags map[string]any

func (p paramFlags) String() string { return fmt.Sprint(map[string]any(p)) }

func (p paramFlags) Set(kv string) error {
	k, v, ok := strings.Cut(kv, "=")
	if !ok {
		return fmt.Errorf("want key=value, got %q", kv)
	}
	// Numbers and booleans are passed typed; everything else as string.
	var parsed any
	if err := json.Unmarshal([]byte(v), &parsed); err == nil {
		p[k] = parsed
	} else {
		p[k] = v
	}
	return nil
}

func main() {
	configPath := flag.String("config", "", "path to the process configuration (Listing-3 JSON, or a Jx9 script returning it)")
	listen := flag.String("listen", "127.0.0.1:0", "TCP listen address")
	params := paramFlags{}
	flag.Var(params, "param", "key=value parameter for Jx9 configuration scripts (repeatable)")
	flag.Parse()

	modules.RegisterBuiltins()

	var raw []byte
	if *configPath != "" {
		var err error
		raw, err = os.ReadFile(*configPath)
		if err != nil {
			log.Fatalf("bedrock: reading config: %v", err)
		}
	}
	// Resolve the (possibly Jx9) config up front: the transport knobs
	// live in the margo section and must be known before the TCP class
	// is created. The resolved JSON is handed to the server.
	cfg, err := bedrock.ParseConfigParams(raw, params)
	if err != nil {
		log.Fatalf("bedrock: %v", err)
	}
	raw, err = json.Marshal(cfg)
	if err != nil {
		log.Fatalf("bedrock: %v", err)
	}
	var topts mercury.TCPOptions
	if t := cfg.Margo.Transport; t != nil {
		topts.PoolSize = t.PoolSize
		topts.AcceptLoops = t.AcceptLoops
		topts.ReadBuffer = t.ReadBufferBytes
		topts.ScratchCap = t.ScratchCapBytes
	}
	class, err := mercury.NewTCPClassOptions(*listen, topts)
	if err != nil {
		log.Fatalf("bedrock: %v", err)
	}
	server, err := bedrock.NewServer(class, raw)
	if err != nil {
		log.Fatalf("bedrock: %v", err)
	}
	fmt.Println(server.Addr())
	log.Printf("bedrock: serving at %s (providers: %v)", server.Addr(), server.Providers())
	<-server.Done()
	log.Printf("bedrock: shut down")
}
