// Command mochi-bench runs the evaluation suite (EXPERIMENTS.md,
// E1–E10) and prints one table per experiment. With -throughput it
// instead runs the storage-engine concurrency sweep: configurable
// worker counts, read/write mix and value size against every backend,
// baseline (single lock / direct commit) vs striped (sharded / group
// commit) side by side.
//
// Usage:
//
//	mochi-bench [-quick] [-only E3,E5]
//	mochi-bench -throughput [-backends map,log] [-workers 1,2,4,8]
//	            [-read-frac 0.5] [-value-size 128] [-duration 1s]
//	            [-shards N] [-batch-window 200us] [-log-sync]
//	mochi-bench -throughput -reshard-at 300ms [-duration 1s]
//	            [-workers 4] [-shards 8] [-read-frac 0.5]
//	mochi-bench -c10k [-conns 64,256] [-c10k-workers 256] [-pools 1,4]
//	            [-gomaxprocs 1,2,4] [-duration 1s] [-payload 64]
//	mochi-bench -sim [-sim-nodes 1000,4000,10000] [-sim-loss 0,0.02,0.10]
//	            [-sim-minutes 3] [-sim-seed 42]
//	mochi-bench -raft [-raft-clients 1,8,64] [-raft-stores file,mem]
//	            [-raft-mixes 0,0.9] [-duration 1s] [-value-size 64]
//
// With -raft it runs the replicated-KV hot-path sweep (E15): a
// 3-member RaftKV group, before (single-entry appends, gets through
// the log) vs after (group commit + batched apply + ReadIndex gets),
// reporting ops/s and leader fsyncs per op.
//
// With -reshard-at the throughput leg runs against a live 3-node
// sharded deployment instead of a local engine, fires an online
// resharding at the given offset, and reports tail latency before,
// during, and after the migration window.
//
// With -c10k it runs the transport-scaling sweep (E12): hundreds to
// thousands of real TCP connections against one server class,
// sweeping per-destination pool size and GOMAXPROCS.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"mochi/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced sweeps (CI mode)")
	only := flag.String("only", "", "comma-separated experiment IDs to run (default: all)")
	throughput := flag.Bool("throughput", false, "run the concurrent storage-engine throughput sweep instead of the experiment suite")
	backends := flag.String("backends", "map,skiplist,btree,log", "throughput: comma-separated backends to sweep")
	workers := flag.String("workers", "1,2,4,8", "throughput: comma-separated goroutine counts")
	readFrac := flag.Float64("read-frac", 0.5, "throughput: fraction of ops that are reads")
	valueSize := flag.Int("value-size", 128, "throughput: value size in bytes")
	duration := flag.Duration("duration", time.Second, "throughput: time per (backend, mode, workers) cell")
	shards := flag.Int("shards", 0, "throughput: stripe count for the sharded mode (0 = default)")
	batchWindow := flag.String("batch-window", "", "throughput: log group-commit window, e.g. 200us")
	logSync := flag.Bool("log-sync", false, "throughput: fsync log commits (measures group commit against real commit latency)")
	reshardAt := flag.Duration("reshard-at", 0, "throughput: fire an online resharding at this offset into the run (0 = off)")
	simSweep := flag.Bool("sim", false, "run the deterministic SWIM simulation sweep (E14) instead of the experiment suite")
	simNodes := flag.String("sim-nodes", "1000,4000,10000", "sim: comma-separated cluster sizes")
	simLoss := flag.String("sim-loss", "0,0.02,0.10", "sim: comma-separated message drop rates")
	simMinutes := flag.Int("sim-minutes", 3, "sim: virtual minutes per cell")
	simSeed := flag.Int64("sim-seed", 42, "sim: master seed (same seed => identical traces)")
	c10k := flag.Bool("c10k", false, "run the transport connection-scaling sweep (E12) instead of the experiment suite")
	conns := flag.String("conns", "64,256", "c10k: comma-separated client-class counts")
	c10kWorkers := flag.Int("c10k-workers", 256, "c10k: concurrent forwarders striped over the clients")
	pools := flag.String("pools", "1,4", "c10k: comma-separated per-destination pool sizes")
	gomaxprocs := flag.String("gomaxprocs", "", "c10k: comma-separated GOMAXPROCS values (default: current)")
	payload := flag.Int("payload", 64, "c10k: payload size in bytes per direction")
	raftSweep := flag.Bool("raft", false, "run the raft hot-path sweep (E15) instead of the experiment suite")
	raftClients := flag.String("raft-clients", "1,8,64", "raft: comma-separated concurrent client-session counts")
	raftStores := flag.String("raft-stores", "file,mem", "raft: comma-separated log stores to sweep (file = fsync enabled)")
	raftMixes := flag.String("raft-mixes", "0,0.9", "raft: comma-separated read fractions (0 = write-heavy)")
	flag.Parse()

	if *raftSweep {
		os.Exit(runRaftBench(*raftClients, *raftStores, *raftMixes, *duration, *valueSize))
	}
	if *simSweep {
		os.Exit(runSwimSim(*simNodes, *simLoss, *simMinutes, *simSeed))
	}
	if *c10k {
		os.Exit(runC10K(*conns, *c10kWorkers, *pools, *gomaxprocs, *duration, *payload))
	}
	if *throughput && *reshardAt > 0 {
		os.Exit(runReshard(*workers, *readFrac, *valueSize, *duration, *shards, *reshardAt))
	}
	if *throughput {
		os.Exit(runThroughput(*backends, *workers, *readFrac, *valueSize, *duration, *shards, *batchWindow, *logSync))
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	failed := 0
	for _, r := range experiments.All() {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		fmt.Printf("running %s: %s ...\n", r.ID, r.Name)
		start := time.Now()
		table, err := r.Run(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s FAILED: %v\n\n", r.ID, err)
			failed++
			continue
		}
		table.Render(os.Stdout)
		fmt.Printf("(%s completed in %s)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		os.Exit(1)
	}
}

func runThroughput(backends, workers string, readFrac float64, valueSize int, duration time.Duration, shards int, batchWindow string, logSync bool) int {
	opts := experiments.ThroughputOptions{
		ReadFraction: readFrac,
		ValueSize:    valueSize,
		Duration:     duration,
		Shards:       shards,
		BatchWindow:  batchWindow,
		LogSync:      logSync,
	}
	for _, b := range strings.Split(backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			opts.Backends = append(opts.Backends, b)
		}
	}
	for _, w := range strings.Split(workers, ",") {
		w = strings.TrimSpace(w)
		if w == "" {
			continue
		}
		n, err := strconv.Atoi(w)
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "bad -workers entry %q\n", w)
			return 2
		}
		opts.Workers = append(opts.Workers, n)
	}
	table, err := experiments.RunThroughput(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "throughput sweep FAILED: %v\n", err)
		return 1
	}
	table.Render(os.Stdout)
	return 0
}

// parseIntList parses a comma-separated list of positive integers.
func parseIntList(flagName, s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -%s entry %q", flagName, part)
		}
		out = append(out, n)
	}
	return out, nil
}

// runSwimSim drives the deterministic simulation leg (E14). The
// trailing "trace-identity:" line lists one hash per cell in sweep
// order; CI runs a leg twice and diffs the two lines to prove
// same-seed replay identity (wall-time columns differ, hashes do not).
func runSwimSim(nodes, loss string, minutes int, seed int64) int {
	opts := experiments.SwimSimOptions{
		Seed:     seed,
		Duration: time.Duration(minutes) * time.Minute,
	}
	var err error
	if opts.Nodes, err = parseIntList("sim-nodes", nodes); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	for _, part := range strings.Split(loss, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || f < 0 || f >= 1 {
			fmt.Fprintf(os.Stderr, "bad -sim-loss entry %q\n", part)
			return 2
		}
		opts.DropRate = append(opts.DropRate, f)
	}
	table, err := experiments.RunSwimSim(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sim sweep FAILED: %v\n", err)
		return 1
	}
	table.Render(os.Stdout)
	hashes := make([]string, 0, len(table.Rows))
	for _, row := range table.Rows {
		hashes = append(hashes, row[len(row)-1])
	}
	fmt.Printf("trace-identity: %s\n", strings.Join(hashes, " "))
	return 0
}

// runRaftBench drives the raft hot-path leg (E15).
func runRaftBench(clients, stores, mixes string, duration time.Duration, valueSize int) int {
	opts := experiments.RaftBenchOptions{
		Duration:  duration,
		ValueSize: valueSize,
	}
	var err error
	if opts.Clients, err = parseIntList("raft-clients", clients); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	for _, part := range strings.Split(stores, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if part != "file" && part != "mem" {
			fmt.Fprintf(os.Stderr, "bad -raft-stores entry %q (want file or mem)\n", part)
			return 2
		}
		opts.Stores = append(opts.Stores, part)
	}
	for _, part := range strings.Split(mixes, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || f < 0 || f > 1 {
			fmt.Fprintf(os.Stderr, "bad -raft-mixes entry %q\n", part)
			return 2
		}
		opts.ReadFracs = append(opts.ReadFracs, f)
	}
	table, err := experiments.RunRaftBench(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "raft sweep FAILED: %v\n", err)
		return 1
	}
	table.Render(os.Stdout)
	return 0
}

// runC10K drives the transport-scaling leg (E12).
func runC10K(conns string, workers int, pools, gomaxprocs string, duration time.Duration, payload int) int {
	opts := experiments.C10KOptions{
		Workers:     workers,
		Duration:    duration,
		PayloadSize: payload,
	}
	var err error
	if opts.Conns, err = parseIntList("conns", conns); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if opts.Pools, err = parseIntList("pools", pools); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if gomaxprocs != "" {
		if opts.GOMAXPROCS, err = parseIntList("gomaxprocs", gomaxprocs); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	table, err := experiments.RunC10K(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "c10k sweep FAILED: %v\n", err)
		return 1
	}
	table.Render(os.Stdout)
	return 0
}

// runReshard drives the online-resharding leg: live traffic against a
// sharded 3-node deployment with a mid-run migration. The first entry
// of -workers picks the client goroutine count.
func runReshard(workers string, readFrac float64, valueSize int, duration time.Duration, shards int, reshardAt time.Duration) int {
	opts := experiments.ReshardOptions{
		ReadFraction: readFrac,
		ValueSize:    valueSize,
		Duration:     duration,
		ReshardAt:    reshardAt,
		Shards:       shards,
	}
	// Only honor an explicit -workers; the sweep's default list is for
	// the engine sweep, not this leg (ReshardOptions defaults to 4).
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "workers" {
			set = true
		}
	})
	if w := strings.Split(workers, ","); set && len(w) > 0 {
		if n, err := strconv.Atoi(strings.TrimSpace(w[0])); err == nil && n > 0 {
			opts.Workers = n
		}
	}
	table, err := experiments.RunReshardThroughput(opts)
	if table != nil {
		table.Render(os.Stdout)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "reshard leg FAILED: %v\n", err)
		return 1
	}
	return 0
}
