// Command mochi-bench runs the evaluation suite (EXPERIMENTS.md,
// E1–E10) and prints one table per experiment.
//
// Usage:
//
//	mochi-bench [-quick] [-only E3,E5]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mochi/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced sweeps (CI mode)")
	only := flag.String("only", "", "comma-separated experiment IDs to run (default: all)")
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	failed := 0
	for _, r := range experiments.All() {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		fmt.Printf("running %s: %s ...\n", r.ID, r.Name)
		start := time.Now()
		table, err := r.Run(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s FAILED: %v\n\n", r.ID, err)
			failed++
			continue
		}
		table.Render(os.Stdout)
		fmt.Printf("(%s completed in %s)\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
	if failed > 0 {
		os.Exit(1)
	}
}
