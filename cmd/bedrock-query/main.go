// Command bedrock-query sends a Jx9 query (paper Listing 4) or a
// configuration request to a running bedrock process and prints the
// result.
//
// Usage:
//
//	bedrock-query -addr tcp://127.0.0.1:4242                        # full config
//	bedrock-query -addr tcp://... -script 'return count($__config__.providers);'
//	echo '<script>' | bedrock-query -addr tcp://... -script -
//	bedrock-query -addr tcp://... -stats                            # Listing-1 JSON
//	bedrock-query -addr tcp://... -metrics                          # Prometheus text
//	bedrock-query -addr tcp://... -traces                           # Chrome trace JSON
//	bedrock-query -addr tcp://... -shutdown
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"mochi/internal/bedrock"
	"mochi/internal/margo"
	"mochi/internal/mercury"
	"mochi/internal/trace"
)

func main() {
	addr := flag.String("addr", "", "address of the bedrock process (tcp://host:port)")
	script := flag.String("script", "", "Jx9 query to run ('-' reads stdin); empty prints the full config")
	stats := flag.Bool("stats", false, "print the process's monitoring statistics (Listing 1 JSON)")
	metricsFlag := flag.Bool("metrics", false, "print the process's metrics in Prometheus text format")
	tracesFlag := flag.Bool("traces", false, "print the process's buffered trace spans as a Chrome trace-event document")
	shutdown := flag.Bool("shutdown", false, "ask the process to shut down")
	token := flag.String("token", "", "authentication token, for processes configured with auth_secret")
	timeout := flag.Duration("timeout", 10*time.Second, "RPC timeout, including connection establishment")
	flag.Parse()
	if *addr == "" {
		log.Fatal("bedrock-query: -addr is required")
	}
	// The mode flags each claim stdout for a different document, and
	// -shutdown would race any read (the process may be gone before the
	// other RPC lands). Refuse ambiguous combinations, naming them.
	var modes []string
	for name, set := range map[string]bool{
		"-stats":    *stats,
		"-metrics":  *metricsFlag,
		"-traces":   *tracesFlag,
		"-shutdown": *shutdown,
	} {
		if set {
			modes = append(modes, name)
		}
	}
	if len(modes) > 1 {
		sort.Strings(modes)
		fmt.Fprintf(os.Stderr, "bedrock-query: %s are mutually exclusive; pick one (read before shutting down)\n", strings.Join(modes, ", "))
		os.Exit(2)
	}

	class, err := mercury.NewTCPClass("127.0.0.1:0")
	if err != nil {
		log.Fatalf("bedrock-query: %v", err)
	}
	if *token != "" {
		class.SetAuthToken(*token)
	}
	inst, err := margo.New(class, nil)
	if err != nil {
		log.Fatalf("bedrock-query: %v", err)
	}
	defer inst.Finalize()

	sh := bedrock.NewClient(inst).MakeServiceHandle(*addr)
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	switch {
	case *stats:
		_, raw, err := sh.GetStats(ctx)
		if err != nil {
			log.Fatalf("bedrock-query: %v", err)
		}
		fmt.Println(string(raw))
	case *metricsFlag:
		// ctx carries -timeout, so the metrics RPC honors it like every
		// other path.
		text, err := sh.GetMetrics(ctx)
		if err != nil {
			log.Fatalf("bedrock-query: %v", err)
		}
		fmt.Print(text)
	case *tracesFlag:
		spans, _, err := sh.GetTraces(ctx)
		if err != nil {
			log.Fatalf("bedrock-query: %v", err)
		}
		if err := trace.WriteChrome(os.Stdout, spans); err != nil {
			log.Fatalf("bedrock-query: %v", err)
		}
		fmt.Println()
	case *shutdown:
		if err := sh.Shutdown(ctx); err != nil {
			log.Fatalf("bedrock-query: %v", err)
		}
		fmt.Println("shutdown requested")
	case *script != "":
		src := *script
		if src == "-" {
			raw, err := io.ReadAll(os.Stdin)
			if err != nil {
				log.Fatalf("bedrock-query: reading stdin: %v", err)
			}
			src = string(raw)
		}
		out, err := sh.QueryConfig(ctx, src)
		if err != nil {
			log.Fatalf("bedrock-query: %v", err)
		}
		fmt.Println(string(out))
	default:
		_, raw, err := sh.GetConfig(ctx)
		if err != nil {
			log.Fatalf("bedrock-query: %v", err)
		}
		fmt.Println(string(raw))
	}
}
