// Command bedrock-query sends a Jx9 query (paper Listing 4) or a
// configuration request to a running bedrock process and prints the
// result.
//
// Usage:
//
//	bedrock-query -addr tcp://127.0.0.1:4242                        # full config
//	bedrock-query -addr tcp://... -script 'return count($__config__.providers);'
//	echo '<script>' | bedrock-query -addr tcp://... -script -
//	bedrock-query -addr tcp://... -stats                            # Listing-1 JSON
//	bedrock-query -addr tcp://... -metrics                          # Prometheus text
//	bedrock-query -addr tcp://... -cluster-metrics                  # federated view, node-labelled
//	bedrock-query -addr tcp://... -profile heap > heap.pprof        # pprof protobuf
//	bedrock-query -addr tcp://... -profile cpu -profile-seconds 10
//	bedrock-query -addr tcp://... -traces                           # Chrome trace JSON
//	bedrock-query -addr tcp://... -shutdown
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"mochi/internal/bedrock"
	"mochi/internal/margo"
	"mochi/internal/mercury"
	"mochi/internal/metrics"
	"mochi/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is main with the process edges (args, stdio, exit code) made
// explicit so tests can drive the tool in-process.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bedrock-query", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "", "address of the bedrock process (tcp://host:port)")
	script := fs.String("script", "", "Jx9 query to run ('-' reads stdin); empty prints the full config")
	stats := fs.Bool("stats", false, "print the process's monitoring statistics (Listing 1 JSON)")
	metricsFlag := fs.Bool("metrics", false, "print the process's metrics in Prometheus text format")
	clusterFlag := fs.Bool("cluster-metrics", false, "print the federated cluster metrics view (every member, node-labelled) in Prometheus text format")
	profileFlag := fs.String("profile", "", "fetch a pprof profile (cpu, heap, goroutine, ...) and write the binary protobuf to stdout")
	profileSeconds := fs.Int("profile-seconds", 0, "CPU profile duration in seconds (0 uses the server default)")
	tracesFlag := fs.Bool("traces", false, "print the process's buffered trace spans as a Chrome trace-event document")
	shutdown := fs.Bool("shutdown", false, "ask the process to shut down")
	token := fs.String("token", "", "authentication token, for processes configured with auth_secret")
	timeout := fs.Duration("timeout", 10*time.Second, "RPC timeout, including connection establishment")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "bedrock-query: "+format+"\n", a...)
		return 1
	}
	if *addr == "" {
		return fail("-addr is required")
	}
	// The mode flags each claim stdout for a different document, and
	// -shutdown would race any read (the process may be gone before the
	// other RPC lands). Refuse ambiguous combinations, naming them.
	var modes []string
	for name, set := range map[string]bool{
		"-stats":           *stats,
		"-metrics":         *metricsFlag,
		"-cluster-metrics": *clusterFlag,
		"-profile":         *profileFlag != "",
		"-traces":          *tracesFlag,
		"-shutdown":        *shutdown,
	} {
		if set {
			modes = append(modes, name)
		}
	}
	if len(modes) > 1 {
		sort.Strings(modes)
		fmt.Fprintf(stderr, "bedrock-query: %s are mutually exclusive; pick one (read before shutting down)\n", strings.Join(modes, ", "))
		return 2
	}
	if *profileSeconds != 0 && *profileFlag == "" {
		fmt.Fprintln(stderr, "bedrock-query: -profile-seconds only makes sense with -profile")
		return 2
	}

	class, err := mercury.NewTCPClass("127.0.0.1:0")
	if err != nil {
		return fail("%v", err)
	}
	if *token != "" {
		class.SetAuthToken(*token)
	}
	inst, err := margo.New(class, nil)
	if err != nil {
		return fail("%v", err)
	}
	defer inst.Finalize()

	sh := bedrock.NewClient(inst).MakeServiceHandle(*addr)
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	switch {
	case *stats:
		_, raw, err := sh.GetStats(ctx)
		if err != nil {
			return fail("%v", err)
		}
		fmt.Fprintln(stdout, string(raw))
	case *metricsFlag:
		// ctx carries -timeout, so the metrics RPC honors it like every
		// other path.
		text, err := sh.GetMetrics(ctx)
		if err != nil {
			return fail("%v", err)
		}
		fmt.Fprint(stdout, text)
	case *clusterFlag:
		fams, err := sh.GetClusterMetrics(ctx)
		if err != nil {
			return fail("%v", err)
		}
		if err := metrics.WriteText(stdout, fams); err != nil {
			return fail("%v", err)
		}
	case *profileFlag != "":
		data, err := sh.GetProfile(ctx, *profileFlag, *profileSeconds)
		if err != nil {
			return fail("%v", err)
		}
		if _, err := stdout.Write(data); err != nil {
			return fail("writing profile: %v", err)
		}
	case *tracesFlag:
		spans, _, err := sh.GetTraces(ctx)
		if err != nil {
			return fail("%v", err)
		}
		if err := trace.WriteChrome(stdout, spans); err != nil {
			return fail("%v", err)
		}
		fmt.Fprintln(stdout)
	case *shutdown:
		if err := sh.Shutdown(ctx); err != nil {
			return fail("%v", err)
		}
		fmt.Fprintln(stdout, "shutdown requested")
	case *script != "":
		src := *script
		if src == "-" {
			raw, err := io.ReadAll(stdin)
			if err != nil {
				return fail("reading stdin: %v", err)
			}
			src = string(raw)
		}
		out, err := sh.QueryConfig(ctx, src)
		if err != nil {
			return fail("%v", err)
		}
		fmt.Fprintln(stdout, string(out))
	default:
		_, raw, err := sh.GetConfig(ctx)
		if err != nil {
			return fail("%v", err)
		}
		fmt.Fprintln(stdout, string(raw))
	}
	return 0
}
