package main

import (
	"bytes"
	"strings"
	"testing"

	"mochi/internal/bedrock"
	"mochi/internal/mercury"
	"mochi/internal/metrics"
)

// startServer brings up a real bedrock process over TCP — the same
// path the binary exercises — and returns its address.
func startServer(t *testing.T, cfg string) string {
	t.Helper()
	cls, err := mercury.NewTCPClass("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := bedrock.NewServer(cls, []byte(cfg))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Shutdown)
	return srv.Addr()
}

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, strings.NewReader(""), &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestModeFlagsMutuallyExclusive(t *testing.T) {
	cases := [][]string{
		{"-addr", "x", "-metrics", "-cluster-metrics"},
		{"-addr", "x", "-profile", "heap", "-shutdown"},
		{"-addr", "x", "-stats", "-traces", "-cluster-metrics"},
	}
	for _, args := range cases {
		code, _, stderr := runCLI(t, args...)
		if code != 2 {
			t.Fatalf("%v: want exit 2, got %d (stderr: %s)", args, code, stderr)
		}
		if !strings.Contains(stderr, "mutually exclusive") {
			t.Fatalf("%v: stderr should explain exclusivity: %s", args, stderr)
		}
		// Every conflicting flag is named so the user can pick.
		for _, a := range args[2:] {
			if strings.HasPrefix(a, "-") && !strings.Contains(stderr, a) {
				t.Fatalf("%v: stderr does not name %s: %s", args, a, stderr)
			}
		}
	}
}

func TestProfileSecondsRequiresProfile(t *testing.T) {
	code, _, stderr := runCLI(t, "-addr", "x", "-profile-seconds", "5", "-metrics")
	if code != 2 || !strings.Contains(stderr, "-profile-seconds") {
		t.Fatalf("want exit 2 naming -profile-seconds, got %d: %s", code, stderr)
	}
}

func TestMissingAddr(t *testing.T) {
	code, _, stderr := runCLI(t, "-metrics")
	if code != 1 || !strings.Contains(stderr, "-addr is required") {
		t.Fatalf("want exit 1 about -addr, got %d: %s", code, stderr)
	}
}

func TestClusterMetricsFlag(t *testing.T) {
	addr := startServer(t, `{}`)
	code, stdout, stderr := runCLI(t, "-addr", addr, "-cluster-metrics")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	samples, err := metrics.ParseExposition([]byte(stdout))
	if err != nil {
		t.Fatalf("-cluster-metrics output does not parse: %v", err)
	}
	if len(samples) == 0 {
		t.Fatal("-cluster-metrics printed no series")
	}
	for _, s := range samples {
		found := false
		for _, l := range s.Labels {
			if l.Name == "node" && l.Value == addr {
				found = true
			}
		}
		if !found {
			t.Fatalf("series %s lacks node=%q label", s.Name, addr)
		}
	}
}

func TestProfileFlag(t *testing.T) {
	addr := startServer(t, `{"monitoring": {"profiling": {"pprof": true}}}`)
	code, stdout, stderr := runCLI(t, "-addr", addr, "-profile", "heap")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	if len(stdout) < 2 || stdout[0] != 0x1f || byte(stdout[1]) != 0x8b {
		t.Fatalf("-profile heap did not emit gzip pprof bytes (got %d bytes)", len(stdout))
	}

	// Gated off on the server → clean failure, no partial stdout.
	addrOff := startServer(t, `{}`)
	code, stdout, stderr = runCLI(t, "-addr", addrOff, "-profile", "heap")
	if code != 1 || !strings.Contains(stderr, "profiling disabled") {
		t.Fatalf("want exit 1 'profiling disabled', got %d: %s", code, stderr)
	}
	if stdout != "" {
		t.Fatalf("failed profile fetch wrote to stdout: %q", stdout)
	}
}

func TestMetricsFlagStillWorks(t *testing.T) {
	addr := startServer(t, `{}`)
	code, stdout, stderr := runCLI(t, "-addr", addr, "-metrics")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	if !strings.Contains(stdout, "# TYPE mochi_rpc_forward_latency_seconds histogram") {
		t.Fatalf("-metrics output missing families:\n%s", stdout)
	}
}
