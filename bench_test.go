// Package main_test holds the repository-level benchmark harness: one
// testing.B benchmark per experiment in EXPERIMENTS.md (E1–E10). Each
// benchmark runs the corresponding experiment harness and reports its
// table through the benchmark log, so
//
//	go test -bench=. -benchmem
//
// regenerates the full evaluation. cmd/mochi-bench runs the same
// harnesses in full (non-quick) mode with nicer output.
package main_test

import (
	"strings"
	"testing"

	"mochi/internal/experiments"
)

func runExperiment(b *testing.B, id string) {
	b.Helper()
	for _, r := range experiments.All() {
		if r.ID != id {
			continue
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tb, err := r.Run(true)
			if err != nil {
				b.Fatalf("%s: %v", id, err)
			}
			if i == 0 {
				var sb strings.Builder
				tb.Render(&sb)
				b.Logf("\n%s", sb.String())
			}
		}
		return
	}
	b.Fatalf("unknown experiment %s", id)
}

func BenchmarkE1_MonitoringOverhead(b *testing.B)   { runExperiment(b, "E1") }
func BenchmarkE2_ReconfigLatency(b *testing.B)      { runExperiment(b, "E2") }
func BenchmarkE3_RemiCrossover(b *testing.B)        { runExperiment(b, "E3") }
func BenchmarkE4_SwimDetection(b *testing.B)        { runExperiment(b, "E4") }
func BenchmarkE5_RaftFailover(b *testing.B)         { runExperiment(b, "E5") }
func BenchmarkE6_PufferscaleTradeoffs(b *testing.B) { runExperiment(b, "E6") }
func BenchmarkE7_ElasticScaling(b *testing.B)       { runExperiment(b, "E7") }
func BenchmarkE8_VirtualKVOverhead(b *testing.B)    { runExperiment(b, "E8") }
func BenchmarkE9_YokanBackends(b *testing.B)        { runExperiment(b, "E9") }
func BenchmarkE10_DynamicHepnos(b *testing.B)       { runExperiment(b, "E10") }
